//! Run the full XPathMark A/B workload (Table 2 of the paper) against a
//! synthetic XMark document and print the same columns the paper reports:
//! number of sub-queries after rewriting, sub-query matches and final
//! matches.
//!
//! ```sh
//! cargo run --release --example xpathmark -- [size-mb]
//! ```

use pp_xml::datasets::{xpathmark_queries, XmarkConfig};
use pp_xml::prelude::*;

fn main() {
    let size_mb: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8.0);
    let data = XmarkConfig::with_target_size((size_mb * 1_000_000.0) as usize).generate();
    eprintln!("generated {} bytes of XMark-lite", data.len());

    let queries = xpathmark_queries();
    let engine = Engine::builder()
        .add_queries(&queries.iter().map(|(_, q)| *q).collect::<Vec<_>>())
        .expect("XPathMark queries compile")
        .build()
        .expect("engine compiles");

    let result = engine.run(&data);

    println!(
        "{:<4} {:<44} {:>12} {:>12} {:>10}",
        "Name", "XPath query", "sub-queries", "sub-matches", "matches"
    );
    for (i, (id, q)) in queries.iter().enumerate() {
        println!(
            "{:<4} {:<44} {:>12} {:>12} {:>10}",
            id,
            q,
            engine.plan().queries[i].subquery_count(),
            result.submatch_counts[i],
            result.match_count(i),
        );
    }

    let t = &result.stats.timings;
    println!(
        "\nphases: parallel {:.1} ms, join {:.1} ms, filter {:.1} ms (total {:.1} ms, {:.1} MB/s)",
        t.parallel.as_secs_f64() * 1e3,
        t.join.as_secs_f64() * 1e3,
        t.filter.as_secs_f64() * 1e3,
        t.total.as_secs_f64() * 1e3,
        result.stats.throughput_mbs()
    );
}
