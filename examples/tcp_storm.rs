//! Connection storm: hundreds of concurrent slow clients against the
//! reactor server, from one process and (almost) no client threads.
//!
//! The point being proven: with `ServerMode::Reactor`, serving N slow
//! connections costs a **fixed** number of threads — the ingest loop, the
//! join executors and the worker pool — not N of anything. The storm:
//!
//! * starts a reactor server (1 ingest thread, 2 join threads, 2 workers);
//! * connects `clients` nonblocking sockets and drives them all from the
//!   main thread in rounds, each client writing a small slice per round
//!   (deliberately slow streams) and reading whatever frames arrived;
//! * gives every client its **own** document (salted per client id), so a
//!   cross-wired frame cannot go unnoticed;
//! * samples the process thread count (`/proc/self/status` `Threads:`)
//!   every round and asserts the peak stays under a fixed ceiling that a
//!   thread-per-connection server would blow past ~16× over;
//! * verifies every client got exactly the batch engine's matches with
//!   byte-identical payloads.
//!
//! ```sh
//! cargo run --release --example tcp_storm -- [clients] [items-per-client] [shards]
//! # defaults: 256 clients, 24 items each, 1 shard
//! ```
//!
//! With `shards > 1` the same storm runs against a sharded server (each
//! shard its own runtime, connections placed by consistent hashing on their
//! stream ids): the thread ceiling grows with the *shard count* — a fixed
//! configuration choice — and stays flat in the number of connections.

use pp_xml::prelude::*;
use pp_xml::runtime::serve::TcpServer;
use pp_xml::runtime::ServerMode;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes each client writes per round — small on purpose: slow streams are
/// the scenario the reactor exists for.
const WRITE_SLICE: usize = 257;

/// The fixed thread ceiling for `shards` shards: main + 1 ingest + 1 admin
/// listener + per shard (2 join + 2 workers), plus headroom for the
/// runtime's own bookkeeping — 17 at one shard. The essential property: the
/// ceiling depends on the *configuration*, not on the connection count; a
/// thread-per-connection server would sit at ~`clients` threads during the
/// storm.
fn thread_ceiling(shards: usize) -> usize {
    13 + 4 * shards
}

/// One slow client, driven round-robin by the main thread.
struct StormClient {
    stream: TcpStream,
    to_write: Vec<u8>,
    written: usize,
    half_closed: bool,
    response: Vec<u8>,
    done: bool,
}

/// A tiny per-client document: the client id salts every payload.
fn client_doc(id: usize, items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>client {id} element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// One blocking GET against the admin listener; returns the body.
fn admin_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send admin request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read admin response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("admin response has headers");
    assert!(head.starts_with("HTTP/1.0 200"), "admin scrape not OK: {head}");
    body.to_string()
}

/// The unlabelled sample value of `name` on a metrics page.
fn metric(page: &str, name: &str) -> Option<f64> {
    page.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
}

/// Current thread count of this process; `None` off Linux.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn main() {
    let clients: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let items: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(24);
    let shards: usize = std::env::args().nth(3).and_then(|v| v.parse().ok()).unwrap_or(1);
    let thread_ceiling = thread_ceiling(shards);
    let query = "//item/k";

    // Per-client documents and their batch references.
    println!("generating {clients} client documents ({items} items each)...");
    let reference = Engine::builder().add_query(query).expect("query").build().expect("engine");
    let docs: Vec<Vec<u8>> = (0..clients).map(|id| client_doc(id, items)).collect();
    let expected: Vec<HashMap<(u64, u64), usize>> = docs
        .iter()
        .map(|doc| {
            let mut expected: HashMap<(u64, u64), usize> = HashMap::new();
            for m in &reference.run(doc).query_matches[0] {
                *expected.entry((m.start as u64, m.end as u64)).or_default() += 1;
            }
            expected
        })
        .collect();
    let total_bytes: usize = docs.iter().map(Vec::len).sum();

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .ingest_threads(1)
        .join_threads(2)
        .shards(shards)
        .shard_workers(2)
        .max_connections(clients.max(1))
        .chunk_size(512)
        .window_size(2048)
        .admin_addr("127.0.0.1:0")
        .bind("127.0.0.1:0", runtime)
        .expect("bind loopback");
    let addr = server.local_addr();
    let admin_addr = server.admin_local_addr().expect("admin listener bound");
    println!(
        "storming {addr} with {clients} slow clients over {shards} shard(s) \
         ({total_bytes} bytes total)..."
    );

    let baseline_threads = process_threads();
    let started = Instant::now();

    // Connect everyone up front (the reactor accepts while we loop), then
    // drive all sockets nonblocking from this one thread.
    let mut storm: Vec<StormClient> = (0..clients)
        .map(|id| {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nonblocking(true).expect("nonblocking client");
            let mut to_write = HandshakeRequest::new(WireFormat::JsonLines)
                .query(query)
                .retain_bytes(64 << 10)
                .stream_id(id as u64)
                .encode();
            to_write.extend_from_slice(&docs[id]);
            StormClient {
                stream,
                to_write,
                written: 0,
                half_closed: false,
                response: Vec::new(),
                done: false,
            }
        })
        .collect();

    let mut peak_threads = baseline_threads.unwrap_or(0);
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(240);
    let mut round = 0usize;
    let mut scrape: Option<String> = None;
    loop {
        round += 1;
        // Scrape the admin endpoint *mid-storm* — round 3 is after every
        // client connected but before any finished writing its document, so
        // the page must show a live, fully-loaded server.
        if round == 3 {
            let page = admin_get(admin_addr, "/metrics");
            let accepted = metric(&page, "ppt_accepted_total").expect("accepted on page");
            let active = metric(&page, "ppt_active_connections").expect("active on page");
            let failed = metric(&page, "ppt_sessions_failed_total").expect("failed on page");
            println!(
                "mid-storm scrape: accepted {accepted}, active {active}, failed {failed} \
                 ({} clients live driver-side)",
                storm.iter().filter(|c| !c.done).count()
            );
            // Liveness invariants under load: the registered-connection
            // gauge is consistent with the driver's view, nothing has been
            // poisoned, and handshake latency is being measured. The gauge
            // checks only hold while no client has half-closed (tiny custom
            // documents can finish before round 3 — then they are vacuous).
            if storm.iter().all(|c| !c.half_closed) {
                assert!(active <= accepted, "more registered conns than accepts: {page}");
                assert!(accepted as usize <= clients);
                assert!(active >= 1.0, "a loaded server must show registered connections");
            }
            assert_eq!(failed, 0.0, "no session may fail mid-storm");
            let p99 = metric(&page, "ppt_handshake_seconds_p99").expect("handshake p99 on page");
            assert!(p99.is_finite() && p99 > 0.0, "p99 handshake latency must be finite: {p99}");
            scrape = Some(page);
        }
        let mut all_done = true;
        for client in storm.iter_mut() {
            if client.done {
                continue;
            }
            all_done = false;
            // Read whatever frames arrived.
            loop {
                match client.stream.read(&mut buf) {
                    Ok(0) => {
                        client.done = true;
                        break;
                    }
                    Ok(n) => client.response.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("client read failed: {e}"),
                }
            }
            // Write one small slice — a deliberately slow stream.
            if client.written < client.to_write.len() {
                let end = (client.written + WRITE_SLICE).min(client.to_write.len());
                match client.stream.write(&client.to_write[client.written..end]) {
                    Ok(n) => client.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => panic!("client write failed: {e}"),
                }
            } else if !client.half_closed {
                client.stream.shutdown(Shutdown::Write).expect("half-close");
                client.half_closed = true;
            }
        }
        if let Some(threads) = process_threads() {
            peak_threads = peak_threads.max(threads);
        }
        if all_done {
            break;
        }
        assert!(Instant::now() < deadline, "storm did not drain in time");
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = started.elapsed();

    // A very small storm can drain before round 3 — scrape now so the
    // artifact exists either way, and persist it when CI asks for it.
    let scrape = scrape.unwrap_or_else(|| admin_get(admin_addr, "/metrics"));
    if let Ok(path) = std::env::var("STORM_SCRAPE") {
        let journal = admin_get(admin_addr, "/journal");
        std::fs::write(&path, format!("{scrape}\n{journal}")).expect("write scrape artifact");
        println!("scrape + journal written to {path}");
    }

    // Byte-correctness: every client got exactly its own document's batch
    // matches, payloads byte-identical, stream ids un-crossed.
    for (id, client) in storm.iter().enumerate() {
        let newline = client
            .response
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or_else(|| panic!("client {id}: no reply line"));
        let reply = std::str::from_utf8(&client.response[..newline]).expect("ASCII reply");
        assert_eq!(
            reply,
            format!("OK STREAM {id} 0"),
            "client {id}: handshake accepted with its requested stream id"
        );
        let body = std::str::from_utf8(&client.response[newline + 1..]).expect("ASCII frames");
        let mut remaining = expected[id].clone();
        for line in body.lines() {
            let frame = Frame::decode_json(line).expect("well-formed frame");
            assert_eq!(frame.stream, id as u64, "client {id}: stream id un-crossed");
            assert_eq!(frame.query, 0);
            let key = (frame.start, frame.end);
            let n = remaining
                .get_mut(&key)
                .unwrap_or_else(|| panic!("client {id}: unexpected frame {key:?}"));
            *n -= 1;
            if *n == 0 {
                remaining.remove(&key);
            }
            let payload = frame.payload.as_ref().expect("payload under budget");
            assert_eq!(
                payload.as_slice(),
                &docs[id][frame.start as usize..frame.end as usize],
                "client {id}: payload byte-identical to its own stream"
            );
        }
        assert!(remaining.is_empty(), "client {id}: matches never served: {remaining:?}");
    }

    let stats = server.shutdown();
    println!(
        "served {clients} clients in {:.1}s: {} frames, {:.1} KB on the wire",
        elapsed.as_secs_f64(),
        stats.frames_out,
        stats.bytes_out as f64 / 1e3,
    );
    let reactor = stats.reactor.expect("reactor stats");
    println!(
        "reactor: {} polls, {} wakeups, {} dispatches, peak {} fds, peak outbox {} B",
        reactor.polls,
        reactor.wakeups,
        reactor.readiness_dispatches,
        reactor.peak_registered_fds,
        reactor.peak_outbox_bytes,
    );
    assert_eq!(stats.accepted as usize, clients);
    assert_eq!(stats.sessions_completed as usize, clients, "every client served cleanly");
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.active, 0);
    assert!(
        reactor.peak_registered_fds >= clients.min(64),
        "the poll set actually carried the storm: {reactor:?}"
    );

    // Sharded runs surface the placement spread alongside the totals.
    if shards > 1 {
        assert_eq!(stats.shards.len(), shards);
        assert_eq!(stats.router.placements as usize, clients);
        let spread: Vec<u64> = stats.router.per_shard_placements.clone();
        println!(
            "router: {} placements over {shards} shards {spread:?}, imbalance {:.2}",
            stats.router.placements, stats.router.imbalance
        );
        assert!(
            stats.shards.iter().all(|s| s.sessions > 0),
            "every shard served someone: {spread:?}"
        );
    }

    // The tentpole claim: thread count is flat in the number of connections.
    match baseline_threads {
        Some(_) => {
            println!("peak process threads during the storm: {peak_threads}");
            assert!(
                peak_threads <= thread_ceiling,
                "thread count must not scale with connections: {peak_threads} > {thread_ceiling}"
            );
        }
        None => println!("(/proc/self/status unavailable: thread ceiling not checked)"),
    }
    println!(
        "OK: {clients} concurrent slow clients, byte-identical results, ≤ {thread_ceiling} threads"
    );
}
