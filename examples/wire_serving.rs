//! Wire serving: stream a large XMark document through the online runtime
//! with payload retention on, emit JSON-lines frames, and verify the served
//! payload bytes are **byte-identical** to what the batch engine selects —
//! with the retention ring's memory bounded by its configured budget.
//!
//! ```sh
//! cargo run --release --example wire_serving -- [size-mb] [budget-mb]
//! # defaults: 64 MB document, 16 MiB retention budget
//! ```

use pp_xml::datasets::XmarkConfig;
use pp_xml::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Peak resident set size in bytes (`VmHWM`), Linux only.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.strip_prefix("VmHWM:")?.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let size_mb: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(64.0);
    let budget_mb: f64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(16.0);
    let budget = (budget_mb * 1024.0 * 1024.0) as usize;

    println!("generating a ~{size_mb} MB xmark document...");
    let doc = XmarkConfig::with_target_size((size_mb * 1_000_000.0) as usize).generate();
    println!("  {} bytes", doc.len());

    let queries = ["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c[a/d/t/k]/d"];
    let engine = Arc::new(
        Engine::builder()
            .add_queries(&queries)
            .expect("valid queries")
            .chunk_size(256 << 10)
            .window_size(1 << 20)
            .build()
            .expect("engine compiles"),
    );

    // The batch reference: the exact spans (hence bytes) the paper's offline
    // pipeline selects on the same document.
    println!("batch reference run (Engine::run)...");
    let batch = engine.run(&doc);
    let mut expected: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for (qi, ms) in batch.query_matches.iter().enumerate() {
        for m in ms {
            *expected.entry((qi, m.start, m.end)).or_default() += 1;
        }
    }
    println!("  {} matches across {} queries", batch.total_matches(), queries.len());

    // Serve the same stream over the wire: JSON-lines frames with payloads
    // sliced from the retention ring. The ring must cover the pipeline's
    // in-flight span (inflight_chunks × chunk_size, plus a window) — cap the
    // in-flight window so a small budget still serves every payload.
    let runtime = Runtime::builder().workers(4).inflight_chunks(8).build();
    let opts = SessionOptions::new().stream_id(1).retain_bytes(budget);
    println!("serving over JSON-lines wire (retention budget {budget_mb} MiB)...");
    let start = Instant::now();
    let served = runtime
        .serve_reader(Arc::clone(&engine), &opts, &doc[..], Vec::new(), WireFormat::JsonLines)
        .expect("in-memory serving cannot fail");
    let serve_secs = start.elapsed().as_secs_f64();
    assert!(served.write_error.is_none(), "a Vec writer cannot fail");
    let (report, out) = (served.report, served.writer);

    // Decode every frame and verify payload bytes against the document.
    let text = std::str::from_utf8(&out).expect("wire JSON is ASCII");
    let mut frames = 0u64;
    for line in text.lines() {
        let frame = Frame::decode_json(line).expect("every line parses");
        let (start, end) = (frame.start as usize, frame.end as usize);
        let payload = frame.payload.as_ref().expect("no span outlives this budget");
        assert_eq!(
            payload.as_slice(),
            &doc[start..end],
            "payload must be byte-identical to the stream slice"
        );
        let n = expected
            .get_mut(&(frame.query as usize, start, end))
            .expect("every frame matches a batch result");
        *n -= 1;
        if *n == 0 {
            expected.remove(&(frame.query as usize, start, end));
        }
        frames += 1;
    }
    assert!(expected.is_empty(), "every batch result was served: {} missing", expected.len());
    assert_eq!(report.stats.payload_misses, 0, "no payload was evicted before delivery");
    assert!(
        report.stats.peak_retained_bytes <= budget,
        "retention ring exceeded its budget: {} > {budget}",
        report.stats.peak_retained_bytes
    );

    println!(
        "  {frames} frames, {:.1} MB on the wire, {:.1} MiB/s sustained ingest",
        out.len() as f64 / 1e6,
        (doc.len() as f64 / (1024.0 * 1024.0)) / serve_secs
    );
    println!(
        "  retention: peak {:.2} MiB of {budget_mb} MiB budget, {} windows evicted, {} misses",
        report.stats.peak_retained_bytes as f64 / (1024.0 * 1024.0),
        report.stats.windows_evicted,
        report.stats.payload_misses
    );
    if let Some(rss) = peak_rss_bytes() {
        println!("  process peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    println!("OK: all {frames} served payloads byte-identical to Engine::run results");
}
