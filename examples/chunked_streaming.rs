//! Out-of-order chunk processing, shown one level below the `Engine` façade:
//! the stream is split into arbitrary chunks, each chunk produces a state
//! mapping, the mappings are unified, and the result equals a sequential run
//! — the core mechanism of the paper made visible.
//!
//! ```sh
//! cargo run --release --example chunked_streaming
//! ```

use pp_xml::automaton::Transducer;
use pp_xml::core::chunk::{process_chunk, EngineKind};
use pp_xml::core::join::unify_mappings;
use pp_xml::core::{Engine, ParallelConfig, StreamProcessor};
use pp_xml::datasets::TreebankConfig;
use pp_xml::xmlstream::split_chunks;

fn main() {
    let data = TreebankConfig { sentences: 500, max_depth: 20, seed: 11 }.generate();
    let queries = ["//np/nn", "//vp//vbd"];

    // --- Level 1: manual chunk processing -------------------------------
    let transducer = Transducer::from_queries(&queries).expect("queries compile");
    let chunks = split_chunks(&data, 16 * 1024);
    println!("split {} bytes into {} chunks", data.len(), chunks.len());

    let outputs: Vec<_> = chunks
        .iter()
        .map(|c| {
            process_chunk(
                &transducer,
                &data[c.range.clone()],
                c.range.start,
                c.index,
                c.index == 0,
                EngineKind::Tree,
                false,
            )
        })
        .collect();

    // Each out-of-order chunk keeps a mapping from every possible starting
    // state; show how quickly those converge.
    for out in outputs.iter().take(3) {
        println!(
            "chunk {}: {} map entries, {} distinct finishing states, {} transitions",
            out.index,
            out.mapping.len(),
            out.mapping.distinct_finish_states(),
            out.stats.transitions
        );
    }

    // Join phase: fold the mappings in document order.
    let mut acc = outputs[0].mapping.clone();
    for out in &outputs[1..] {
        acc = unify_mappings(&acc, &out.mapping);
    }
    let entry = acc
        .entries
        .iter()
        .find(|e| e.start_state == transducer.initial() && e.start_stack.is_empty())
        .expect("one execution path survives for well-formed input");
    println!("joined mapping: {} sub-query matches survive", entry.outputs.len());

    // --- Level 2: the StreamProcessor does the same thing windowed -------
    let mut proc = StreamProcessor::new(&transducer, ParallelConfig::default());
    // Windows must be cut at tag boundaries (Engine::run_reader does this
    // automatically); reuse the splitter to get '<'-aligned window ranges.
    for window in split_chunks(&data, 64 * 1024) {
        proc.feed(&data[window.range]);
    }
    let (matches, stats) = proc.finish();
    println!(
        "stream processor: {} matches, overhead {:.2}x, {} chunks",
        matches.len(),
        stats.overhead_factor(),
        stats.chunks
    );

    // --- Level 3: sanity-check against the engine façade -----------------
    let engine = Engine::from_queries(&queries).expect("engine compiles");
    let reference = engine.run(&data);
    assert_eq!(entry.outputs.len(), reference.stats.subquery_matches);
    assert_eq!(matches.len(), reference.stats.subquery_matches);
    println!("all three levels agree with the sequential reference ✓");
}
