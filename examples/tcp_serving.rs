//! TCP serving: a real socket front-end over the online runtime.
//!
//! One process hosts a [`TcpServer`] on loopback and throws four clients at
//! it concurrently:
//!
//! * two well-behaved clients (one JSON-lines, one binary) that register
//!   queries through the handshake, stream a large XMark document, and
//!   verify every served payload is **byte-identical** to what the batch
//!   engine (`Engine::run`) selects;
//! * one vandal that dies mid-handshake;
//! * one vandal that registers, streams half the document, and vanishes
//!   without reading a single frame.
//!
//! The acceptance claim: the vandals poison *their own* sessions only — both
//! honest clients finish with exact match counts, and the server's stats
//! account for everyone.
//!
//! ```sh
//! cargo run --release --example tcp_serving -- [size-mb] [budget-mb]
//! # defaults: 64 MB document, 16 MiB retention budget per client
//! ```

use pp_xml::datasets::XmarkConfig;
use pp_xml::prelude::*;
use pp_xml::runtime::serve::{register, TcpServer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Expected = HashMap<(u32, u64, u64), usize>;

/// Streams `doc` to a registered session and collects every frame until the
/// server closes, verifying payload bytes against the document.
fn honest_client(
    addr: SocketAddr,
    format: WireFormat,
    stream_id: u64,
    queries: &[&str],
    retain: u64,
    doc: Arc<Vec<u8>>,
    mut expected: Expected,
) -> (u64, f64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut request = HandshakeRequest::new(format).retain_bytes(retain).stream_id(stream_id);
    for q in queries {
        request = request.query(*q);
    }
    let reg = register(&mut stream, &request).expect("handshake accepted");
    assert_eq!(reg.stream_id, stream_id, "the OK line echoes the requested stream id");
    assert_eq!(reg.query_ids, (0..queries.len() as u32).collect::<Vec<u32>>());

    let writer_doc = Arc::clone(&doc);
    let writer_stream = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        for piece in writer_doc.chunks(64 << 10) {
            if writer_stream.write_all(piece).is_err() {
                return;
            }
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });

    let started = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read frames to EOF");
    writer.join().expect("writer thread");
    let elapsed = started.elapsed().as_secs_f64();

    let mut check = |frame: Frame| {
        assert_eq!(frame.stream, stream_id);
        let (start, end) = (frame.start as usize, frame.end as usize);
        let payload = frame.payload.as_ref().expect("no span outlives this budget");
        assert_eq!(
            payload.as_slice(),
            &doc[start..end],
            "payload must be byte-identical to the stream slice"
        );
        let key = (frame.query, frame.start, frame.end);
        let n = expected.get_mut(&key).expect("every frame matches a batch result");
        *n -= 1;
        if *n == 0 {
            expected.remove(&key);
        }
    };
    let mut frames = 0u64;
    match format {
        WireFormat::JsonLines => {
            let text = std::str::from_utf8(&raw).expect("wire JSON is ASCII");
            for line in text.lines() {
                check(Frame::decode_json(line).expect("every line parses"));
                frames += 1;
            }
        }
        WireFormat::Binary => {
            let mut decoder = FrameDecoder::new();
            decoder.push(&raw);
            while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                check(frame);
                frames += 1;
            }
            // Clean-close proof: EOF must not hide a half-written frame.
            decoder.finish().expect("no truncated final frame");
        }
    }
    assert!(expected.is_empty(), "batch results never served: {} missing", expected.len());
    (frames, elapsed)
}

fn main() {
    let size_mb: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(64.0);
    let budget_mb: f64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(16.0);
    let budget = (budget_mb * 1024.0 * 1024.0) as u64;

    println!("generating a ~{size_mb} MB xmark document...");
    let doc = Arc::new(XmarkConfig::with_target_size((size_mb * 1_000_000.0) as usize).generate());
    println!("  {} bytes", doc.len());

    let queries = ["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c[a/d/t/k]/d"];

    // The batch reference: the exact spans the paper's offline pipeline
    // selects on the same document.
    println!("batch reference run (Engine::run)...");
    let reference = Engine::builder()
        .add_queries(&queries)
        .expect("valid queries")
        .build()
        .expect("engine compiles");
    let batch = reference.run(&doc);
    let mut expected: Expected = HashMap::new();
    for (qi, ms) in batch.query_matches.iter().enumerate() {
        for m in ms {
            *expected.entry((qi as u32, m.start as u64, m.end as u64)).or_default() += 1;
        }
    }
    println!("  {} matches across {} queries", batch.total_matches(), queries.len());

    let runtime = Arc::new(Runtime::builder().workers(4).inflight_chunks(8).build());
    let server = TcpServer::builder()
        .max_connections(4)
        .chunk_size(256 << 10)
        .window_size(1 << 20)
        .bind("127.0.0.1:0", runtime)
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr} (retention budget {budget_mb} MiB per client)");

    std::thread::scope(|scope| {
        // Vandal 1: dies mid-handshake.
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("vandal connect");
            let _ = stream.write_all(b"PPT/1 json\nQUERY //c//k\n"); // no GO
            std::thread::sleep(Duration::from_millis(50));
            drop(stream);
        });
        // Vandal 2: registers, streams half the document, reads nothing,
        // vanishes. The server must absorb the reset.
        let vandal_doc = Arc::clone(&doc);
        scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("vandal connect");
            let request = HandshakeRequest::new(WireFormat::JsonLines).query("//c//k");
            register(&mut stream, &request).expect("handshake accepted");
            let _ = stream.write_all(&vandal_doc[..vandal_doc.len() / 2]);
            std::thread::sleep(Duration::from_millis(100));
            drop(stream);
        });
        // The honest clients, concurrently with the vandals.
        for (stream_id, format) in [(1u64, WireFormat::JsonLines), (2, WireFormat::Binary)] {
            let doc = Arc::clone(&doc);
            let expected = expected.clone();
            scope.spawn(move || {
                let (frames, secs) =
                    honest_client(addr, format, stream_id, &queries, budget, doc.clone(), expected);
                println!(
                    "  client {stream_id} ({format:?}): {frames} frames, {:.1} MiB/s sustained",
                    (doc.len() as f64 / (1024.0 * 1024.0)) / secs
                );
            });
        }
    });

    let stats = server.shutdown();
    println!(
        "server: {} accepted, {} completed, {} failed, {} handshake rejects, {:.1} MB on the wire",
        stats.accepted,
        stats.sessions_completed,
        stats.sessions_failed,
        stats.handshake_rejects,
        stats.bytes_out as f64 / 1e6
    );
    for conn in &stats.connections {
        if let Some(report) = &conn.report {
            println!(
                "  {} stream {}: {} frames, peak retained {:.2} MiB, {} misses",
                conn.peer,
                conn.stream_id,
                conn.frames,
                report.stats.peak_retained_bytes as f64 / (1024.0 * 1024.0),
                report.stats.payload_misses
            );
        } else {
            println!(
                "  {} stream {}: died mid-stream ({})",
                conn.peer,
                conn.stream_id,
                conn.read_error.as_deref().unwrap_or("unknown")
            );
        }
    }

    assert_eq!(stats.sessions_completed, 2, "both honest sessions completed");
    assert!(stats.handshake_rejects >= 1, "the mid-handshake vandal was counted");
    assert_eq!(stats.active, 0);
    println!("OK: honest clients served byte-identical payloads; vandals poisoned only themselves");
}
