//! Sharded serving: the consistent-hash shard router, demonstrated in both
//! topologies and verified byte-identical to the batch engine.
//!
//! 1. **In-process sharding**: one `TcpServer` over four shards (four
//!    independent runtimes); five concurrent clients — four with explicit
//!    stream ids, one default-handshake client that learns its
//!    server-assigned id from the `OK` line — each stream the same XMark
//!    document and verify every served payload is byte-identical to what
//!    `Engine::run` selects. Per-shard stats and the router's placement
//!    spread are printed from `ServerStats`.
//! 2. **2-process forwarded topology**: this binary re-execs itself as a
//!    backend server in a *child process*; the parent then uses the same
//!    `HashRing` over the two sites, serving ring-local streams against its
//!    own server and `shard::forward`-ing the others to the child over the
//!    ordinary wire handshake. Both routes must produce byte-identical
//!    frames.
//!
//! ```sh
//! cargo run --release --example sharded_serving -- [size-mb] [budget-mb]
//! # defaults: 8 MB document, 16 MiB retention budget per client
//! ```

use pp_xml::datasets::XmarkConfig;
use pp_xml::prelude::*;
use pp_xml::runtime::serve::{register, TcpServer};
use pp_xml::runtime::shard::forward;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

type Expected = HashMap<(u32, u64, u64, Vec<u8>), usize>;

const QUERIES: [&str; 3] = ["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c[a/d/t/k]/d"];

fn build_server(runtime: Arc<Runtime>, shards: usize) -> TcpServer {
    let mut builder = TcpServer::builder().chunk_size(256 << 10).window_size(1 << 20);
    if shards > 1 {
        builder = builder.shards(shards).shard_workers(2);
    }
    builder.bind("127.0.0.1:0", runtime).expect("bind loopback")
}

/// The backend child process: serves until the parent closes its stdin.
fn run_backend() {
    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = build_server(runtime, 1);
    // The parent parses this line to learn where to forward.
    println!("ADDR {}", server.local_addr());
    std::io::stdout().flush().expect("flush addr line");
    // Serve until the parent hangs up.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let stats = server.shutdown();
    eprintln!(
        "backend: {} sessions, {} frames, {:.1} KB on the wire",
        stats.sessions_completed,
        stats.frames_out,
        stats.bytes_out as f64 / 1e3
    );
    assert_eq!(stats.sessions_failed, 0, "backend served every forwarded stream cleanly");
}

/// Streams `doc` through one registered connection, returning the confirmed
/// stream id and the decoded frames.
fn run_client(
    addr: SocketAddr,
    request: HandshakeRequest,
    doc: &Arc<Vec<u8>>,
) -> (u64, Vec<Frame>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let reg = register(&mut stream, &request).expect("handshake accepted");
    let writer_doc = Arc::clone(doc);
    let writer_stream = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        for piece in writer_doc.chunks(64 << 10) {
            if writer_stream.write_all(piece).is_err() {
                return;
            }
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read frames to EOF");
    writer.join().expect("writer thread");
    (reg.stream_id, decode_binary(&raw))
}

fn decode_binary(raw: &[u8]) -> Vec<Frame> {
    let mut decoder = FrameDecoder::new();
    decoder.push(raw);
    let mut frames = Vec::new();
    while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
        frames.push(frame);
    }
    decoder.finish().expect("no truncated tail on a clean close");
    frames
}

/// Checks one stream's frames off against the batch reference: every frame
/// must match a batch result with byte-identical payload, every batch
/// result must be served, and every frame must carry `stream_id`.
fn verify(frames: &[Frame], stream_id: u64, expected: &Expected, label: &str) {
    let mut remaining = expected.clone();
    for f in frames {
        assert_eq!(f.stream, stream_id, "{label}: frames carry the session's stream id");
        let payload = f.payload.clone().expect("retention on: payload present");
        let key = (f.query, f.start, f.end, payload);
        let n = remaining
            .get_mut(&key)
            .unwrap_or_else(|| panic!("{label}: frame has no batch counterpart"));
        *n -= 1;
        if *n == 0 {
            remaining.remove(&key);
        }
    }
    assert!(remaining.is_empty(), "{label}: {} batch results never served", remaining.len());
}

fn main() {
    if std::env::args().any(|a| a == "--backend") {
        run_backend();
        return;
    }
    let size_mb: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(8.0);
    let budget_mb: f64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(16.0);
    let budget = (budget_mb * 1024.0 * 1024.0) as u64;

    println!("generating a ~{size_mb} MB xmark document...");
    let doc = Arc::new(XmarkConfig::with_target_size((size_mb * 1_000_000.0) as usize).generate());
    println!("  {} bytes", doc.len());

    println!("batch reference run (Engine::run)...");
    let reference = Engine::builder()
        .add_queries(&QUERIES)
        .expect("valid queries")
        .build()
        .expect("engine compiles");
    let batch = reference.run(&doc);
    let mut expected: Expected = HashMap::new();
    for (qi, ms) in batch.query_matches.iter().enumerate() {
        for m in ms {
            let payload = doc[m.start..m.end].to_vec();
            *expected.entry((qi as u32, m.start as u64, m.end as u64, payload)).or_default() += 1;
        }
    }
    println!("  {} matches across {} queries", batch.total_matches(), QUERIES.len());

    let request_for = |stream_id: Option<u64>| {
        let mut request = HandshakeRequest::new(WireFormat::Binary).retain_bytes(budget);
        for q in QUERIES {
            request = request.query(q);
        }
        if let Some(id) = stream_id {
            request = request.stream_id(id);
        }
        request
    };

    // --- Topology 1: in-process, four shards --------------------------------
    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = build_server(runtime, 4);
    let addr = server.local_addr();
    println!("\n[1/2] in-process 4-shard server on {addr}");
    let started = Instant::now();
    std::thread::scope(|scope| {
        // Four explicit stream ids spread over the ring, plus one default
        // handshake whose unique id the server assigns and echoes.
        for stream_id in [Some(2u64), Some(5), Some(11), Some(17), None] {
            let doc = &doc;
            let expected = &expected;
            let request = request_for(stream_id);
            scope.spawn(move || {
                let (confirmed, frames) = run_client(addr, request, doc);
                match stream_id {
                    Some(id) => assert_eq!(confirmed, id, "requested ids are honored"),
                    None => assert_ne!(confirmed, 0, "assigned ids are never 0"),
                }
                verify(&frames, confirmed, expected, "sharded client");
                println!("  stream {confirmed}: {} frames byte-identical to batch", frames.len());
            });
        }
    });
    println!("  served 5 concurrent streams in {:.1}s", started.elapsed().as_secs_f64());

    let stats = server.shutdown();
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.router.placements, 5);
    assert_eq!(stats.sessions_completed, 5);
    println!(
        "  router: {} placements, {} ring lookups, imbalance {:.2}",
        stats.router.placements, stats.router.ring_lookups, stats.router.imbalance
    );
    for shard in &stats.shards {
        println!(
            "  shard {}: {} sessions, {} matches, {} frames, peak retained {:.2} MiB, \
             peak queue {}",
            shard.shard,
            shard.sessions,
            shard.matches,
            shard.frames_out,
            shard.peak_retained_bytes as f64 / (1024.0 * 1024.0),
            shard.peak_queue_depth
        );
    }

    // --- Topology 2: two processes, ring-routed forwarding ------------------
    println!("\n[2/2] 2-process topology: local site + forwarded backend");
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("--backend")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn backend process");
    let child_stdout = child.stdout.take().expect("child stdout");
    let mut addr_line = String::new();
    BufReader::new(child_stdout).read_line(&mut addr_line).expect("backend addr line");
    let backend_addr: SocketAddr = addr_line
        .trim()
        .strip_prefix("ADDR ")
        .expect("ADDR line")
        .parse()
        .expect("backend address");
    println!("  backend process listening on {backend_addr}");

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let local = build_server(runtime, 1);
    // The same ring both processes could compute independently: site 0 is
    // the local server, site 1 the backend process.
    let ring = HashRing::new(2, 64);
    let mut served_local = 0usize;
    let mut served_remote = 0usize;
    for stream_id in 100u64.. {
        if served_local >= 2 && served_remote >= 2 {
            break;
        }
        let site = ring.route(stream_id);
        if site == 0 {
            if served_local >= 2 {
                continue;
            }
            served_local += 1;
            let (confirmed, frames) =
                run_client(local.local_addr(), request_for(Some(stream_id)), &doc);
            verify(&frames, confirmed, &expected, "local site");
            println!("  stream {stream_id} → site 0 (local): {} frames", frames.len());
        } else {
            if served_remote >= 2 {
                continue;
            }
            served_remote += 1;
            let mut relayed = Vec::new();
            let report =
                forward(backend_addr, &request_for(Some(stream_id)), &doc[..], &mut relayed)
                    .expect("forward to the backend");
            assert_eq!(report.stream_id, stream_id);
            assert_eq!(report.bytes_up, doc.len() as u64);
            let frames = decode_binary(&relayed);
            verify(&frames, stream_id, &expected, "forwarded site");
            println!(
                "  stream {stream_id} → site 1 (forwarded): {} frames, {:.1} KB relayed",
                frames.len(),
                report.bytes_down as f64 / 1e3
            );
        }
    }
    let local_stats = local.shutdown();
    assert_eq!(local_stats.sessions_completed, served_local as u64);

    // Hang up on the backend; it drains and exits.
    drop(child.stdin.take());
    let status = child.wait().expect("backend exit");
    assert!(status.success(), "backend process exited cleanly");

    println!(
        "\nOK: 4-shard and 2-process topologies byte-identical to Engine::run \
         ({} matches per stream)",
        batch.total_matches()
    );
}
