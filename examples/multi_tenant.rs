//! Multi-tenancy through the subscription layer: many tenants with
//! overlapping query sets share **one** stream — one split/transduce/join
//! pass serves all of them.
//!
//! What it demonstrates (and asserts):
//!
//! * [`Runtime::open_shared_stream`] opening the stream with the first
//!   tenant's queries and [`StreamControl::attach`] merging every later
//!   tenant into the same transducer (queries already covered by the merged
//!   automaton attach without recompiling anything);
//! * per-tenant attribution: every tenant sees exactly the matches of *its*
//!   queries, numbered in *its* registration order, byte-identical (spans
//!   and retained payload bytes) to a private [`Engine`] run per tenant;
//! * flat resource usage: one shared automaton far smaller than the sum of
//!   per-tenant automata, and no extra threads per tenant — attaching 63
//!   more tenants spawns nothing.
//!
//! ```sh
//! cargo run --release --example multi_tenant -- [tenants]
//! # default: 64 tenants
//! ```

use pp_xml::prelude::*;

/// The document every tenant watches: one stream of `<item>` elements.
fn doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>tenant demo element {i}</k><tag>t{}</tag></item>", i % 7)
                .as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// The query pool tenants draw from — deliberately small so tenants overlap
/// heavily and most attaches are covered by the already-merged automaton.
const POOL: &[&str] =
    &["//item/k", "/stream/item/id", "//item[id]/tag", "//item//k", "/stream/item", "//tag"];

/// Tenant `t` registers 2–4 pool queries, rotated so neighbours overlap but
/// rarely coincide.
fn tenant_queries(t: usize) -> Vec<&'static str> {
    let n = 2 + t % 3;
    (0..n).map(|i| POOL[(t + i * 2) % POOL.len()]).collect()
}

/// Thread count of this process (Linux; examples run on the CI runner).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// The reference: a private engine per tenant, batch mode.
fn private_reference(queries: &[&str], doc: &[u8]) -> Vec<Vec<(usize, usize)>> {
    let engine = Engine::builder().add_queries(queries).unwrap().build().unwrap();
    let result = engine.run(doc);
    result
        .query_matches
        .iter()
        .map(|ms| {
            let mut spans: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
            spans.sort_unstable();
            spans
        })
        .collect()
}

fn main() {
    let tenants: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(64);
    let data = doc(400);

    let runtime = Runtime::builder().workers(4).build();
    let opts = SessionOptions::new().stream_id(1).retain_bytes(8 << 20);
    let config = EngineConfig { chunk_size: 16 << 10, ..EngineConfig::default() };

    // Tenant 0 opens the stream; its collector rides the joiner directly.
    let first = CollectSubscriber::new();
    let (first_matches, first_report) = first.handles();
    let mut handle = runtime
        .open_shared_stream(&opts, config, 1 << 16, &tenant_queries(0), Box::new(first))
        .expect("tenant 0 queries compile");
    let control = handle.control();
    let threads_before = thread_count();

    // Tenants 1..N attach to the live stream. Each gets its own local query
    // numbering; the stream recompiles only when a query is genuinely new.
    let mut collectors = vec![(first_matches, first_report)];
    for t in 1..tenants {
        let sub = CollectSubscriber::new();
        collectors.push(sub.handles());
        control.attach(&tenant_queries(t), Box::new(sub)).expect("attach");
    }
    let threads_after = thread_count();

    let merged = control.merged_query_count();
    let registered: usize = (0..tenants).map(|t| tenant_queries(t).len()).sum();
    println!(
        "{tenants} tenants, {registered} registered queries -> {merged} merged \
         (automaton: {} states)",
        control.automaton_states()
    );
    assert_eq!(control.subscriber_count(), tenants);
    assert!(merged <= POOL.len(), "the merged set never exceeds the pool");
    if threads_before > 0 {
        assert_eq!(
            threads_before,
            threads_after,
            "attaching {} tenants must not spawn threads",
            tenants - 1
        );
        println!("threads: {threads_before} before attaches, {threads_after} after (flat)");
    }

    // One pass over the stream serves everyone.
    for piece in data.chunks(4 << 10) {
        handle.feed(piece);
    }
    let report = handle.finish();
    assert!(report.error.is_none(), "stream failed: {:?}", report.error);

    // Every tenant's matches equal its private engine, byte for byte.
    let mut total = 0usize;
    for (t, (matches, report)) in collectors.iter().enumerate() {
        let queries = tenant_queries(t);
        let expected = private_reference(&queries, &data);
        let got = matches.lock().unwrap();
        let mut per_query: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
        for m in got.iter() {
            per_query[m.m.query].push((m.m.start, m.m.end));
            let payload = m.payload.as_ref().expect("retention on: payload present");
            assert_eq!(
                payload.as_slice(),
                &data[m.m.start..m.m.end],
                "tenant {t}: payload bytes must equal the stream slice"
            );
        }
        for spans in &mut per_query {
            spans.sort_unstable();
        }
        assert_eq!(per_query, expected, "tenant {t}: spans diverge from a private engine");
        let r = report.lock().unwrap();
        let r = r.as_ref().expect("stream ended: report delivered");
        assert!(r.error.is_none());
        assert_eq!(r.dropped, 0);
        total += got.len();
    }
    println!(
        "one pass over {} KiB served {total} matches across {tenants} tenants — every tenant \
         byte-identical to its private engine",
        data.len() / 1024
    );
}
