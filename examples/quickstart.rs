//! Quickstart: compile a couple of XPath queries and run them over an XML
//! byte slice with the parallel pushdown transducer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pp_xml::prelude::*;

fn main() {
    // The running example of the paper (Fig 1a) plus a predicated query.
    let xml = br#"
        <a>
            <b><d>first branch</d></b>
            <b><c>the match</c></b>
        </a>"#;

    let engine = Engine::builder()
        .add_query("/a/b/c")
        .expect("valid query")
        .add_query("//d")
        .expect("valid query")
        .add_query("/a/b[d]")
        .expect("valid query")
        .chunk_size(16) // absurdly small, to show chunking on a tiny input
        .threads(2)
        .build()
        .expect("engine compiles");

    let result = engine.run(xml);

    for (i, query) in ["/a/b/c", "//d", "/a/b[d]"].iter().enumerate() {
        println!("{query}: {} match(es)", result.match_count(i));
        for m in result.matches(i) {
            let text = String::from_utf8_lossy(&xml[m.start..m.end]);
            println!("    depth {} span {}..{}: {}", m.depth, m.start, m.end, text.trim());
        }
    }

    let stats = &result.stats;
    println!(
        "\nprocessed {} bytes in {} chunks on {} threads ({:.2}x transition overhead)",
        stats.bytes,
        stats.chunks,
        stats.threads,
        stats.overhead_factor()
    );
}
