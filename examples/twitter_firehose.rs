//! Streaming a Twitter-style firehose: generate a synthetic status stream and
//! filter geotagged tweets with a single XPath query, processing the stream
//! through the bounded-memory reader API.
//!
//! ```sh
//! cargo run --release --example twitter_firehose -- [size-mb]
//! ```

use pp_xml::datasets::TwitterConfig;
use pp_xml::prelude::*;
use std::io::Cursor;
use std::time::Instant;

fn main() {
    let size_mb: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16.0);
    let bytes = (size_mb * 1_000_000.0) as usize;

    eprintln!("generating ~{size_mb:.0} MB of synthetic Twitter XML ...");
    let data = TwitterConfig::with_target_size(bytes).generate();
    eprintln!("generated {} bytes", data.len());

    // The query the paper uses on the Twitter dataset: tweets that carry
    // embedded coordinates.
    let engine = Engine::builder()
        .add_query("//status/coordinates/coordinates")
        .expect("valid query")
        .chunk_size(1 << 20)
        .window_size(8 << 20)
        .build()
        .expect("engine compiles");

    // Process through the reader API: the stream is consumed window by
    // window, so memory stays bounded no matter how long the firehose is.
    let start = Instant::now();
    let result = engine.run_reader(Cursor::new(&data)).expect("in-memory reader cannot fail");
    let elapsed = start.elapsed();

    println!("geotagged tweets: {} (of {} bytes of stream)", result.match_count(0), data.len());
    println!(
        "throughput: {:.1} MB/s on {} worker thread(s), {} chunks, {:.1}% worker idle time",
        data.len() as f64 / 1_000_000.0 / elapsed.as_secs_f64(),
        result.stats.threads,
        result.stats.chunks,
        result.stats.idle_fraction * 100.0
    );

    // Show the first few matched elements.
    for m in result.matches(0).iter().take(3) {
        let snippet = String::from_utf8_lossy(&data[m.start..m.end.min(m.start + 120)]);
        println!("  e.g. {snippet}...");
    }
}
