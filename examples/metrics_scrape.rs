//! Live observability walk-through: a sharded server under load, scraped
//! twice, and the movement between the scrapes printed as a delta table.
//!
//! What it demonstrates (and asserts):
//!
//! * the **admin endpoint** (`TcpServerBuilder::admin_addr`) serving the
//!   Prometheus-style text exposition over plain HTTP;
//! * the **in-band `STATS` verb** (`serve::scrape`) returning the same
//!   page shape through the ordinary `PPT/1` handshake port;
//! * per-shard labels reconciling with the router totals and with
//!   `TcpServer::stats()` — one registry, three surfaces;
//! * counters moving between scrapes exactly as much as the load applied
//!   between them, and the event journal narrating the session lifecycle.
//!
//! ```sh
//! cargo run --release --example metrics_scrape -- [shards] [sessions-per-wave]
//! # defaults: 4 shards, 8 sessions per wave
//! ```

use pp_xml::prelude::*;
use pp_xml::runtime::serve::{register, scrape};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>scrape demo element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// One complete session: handshake, stream the document, drain the frames.
fn run_session(addr: SocketAddr, stream_id: u64, doc: &[u8]) -> usize {
    let request =
        HandshakeRequest::new(WireFormat::JsonLines).query("//item/k").stream_id(stream_id);
    let mut stream = TcpStream::connect(addr).expect("connect");
    register(&mut stream, &request).expect("handshake accepted");
    stream.write_all(doc).expect("stream document");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("drain frames");
    raw.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count()
}

/// One blocking GET against the admin listener; returns the body.
fn admin_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("headers present");
    assert!(head.starts_with("HTTP/1.0 200"), "admin scrape not OK: {head}");
    body.to_string()
}

/// Every sample on a metrics page: `"family{labels}"` → value. Histogram
/// series keep their `_bucket`/`_sum`/`_count`/quantile suffixes as-is.
fn samples(page: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in page.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some(space) = line.rfind(' ') else { continue };
        if let Ok(value) = line[space + 1..].parse::<f64>() {
            out.insert(line[..space].to_string(), value);
        }
    }
    out
}

fn main() {
    let shards: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(4);
    let wave: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(8);
    let items = 64;

    let runtime = Arc::new(Runtime::builder().workers(2).build());
    let server = TcpServer::builder()
        .shards(shards)
        .shard_workers(2)
        .chunk_size(512)
        .admin_addr("127.0.0.1:0")
        .bind("127.0.0.1:0", runtime)
        .expect("bind loopback");
    let addr = server.local_addr();
    let admin = server.admin_local_addr().expect("admin listener bound");
    let document = doc(items);
    println!("serving on {addr}, admin on {admin} ({shards} shard(s))");

    // Wave 1, then the first scrape (admin endpoint).
    for id in 0..wave {
        run_session(addr, id as u64 * 31 + 1, &document);
    }
    let first = samples(&admin_get(admin, "/metrics"));

    // Wave 2, then the second scrape — this time through the in-band
    // STATS verb, proving both surfaces serve the same registry.
    for id in 0..wave {
        run_session(addr, (wave + id) as u64 * 31 + 1, &document);
    }
    let second_page = scrape(addr).expect("STATS scrape");
    let second = samples(&second_page);

    // Delta table: every counter that moved between the scrapes.
    println!("\n{:<44} {:>12} {:>12} {:>8}", "series", "scrape 1", "scrape 2", "delta");
    let mut moved = 0usize;
    for (series, after) in &second {
        let before = first.get(series).copied().unwrap_or(0.0);
        let delta = after - before;
        if delta.abs() > f64::EPSILON && !series.contains("_bucket") {
            println!("{series:<44} {before:>12.3} {after:>12.3} {delta:>+8.3}");
            moved += 1;
        }
    }
    println!("({moved} series moved; histogram buckets elided)\n");

    // The second wave must be exactly accounted: sessions, placements and
    // per-shard label sums all advanced by `wave`.
    let get = |m: &BTreeMap<String, f64>, k: &str| m.get(k).copied().unwrap_or(0.0);
    let sessions_delta =
        get(&second, "ppt_sessions_completed_total") - get(&first, "ppt_sessions_completed_total");
    assert_eq!(sessions_delta as usize, wave, "second wave exactly accounted");
    let placements_delta =
        get(&second, "ppt_router_placements_total") - get(&first, "ppt_router_placements_total");
    assert_eq!(placements_delta as usize, wave);
    let shard_sessions: f64 = second
        .iter()
        .filter(|(k, _)| k.starts_with("ppt_shard_sessions_total{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(shard_sessions as usize, 2 * wave, "per-shard labels sum to the total");

    // And both reconcile with the stats snapshot — one source of truth.
    let stats = server.stats();
    assert_eq!(stats.sessions_completed as usize, 2 * wave);
    assert_eq!(stats.router.placements as usize, 2 * wave);
    assert_eq!(
        get(&second, "ppt_frames_out_total") as u64,
        stats.frames_out,
        "exposition agrees with ServerStats"
    );

    // The journal narrates the lifecycle of every session.
    let journal = admin_get(admin, "/journal");
    let drained = journal.lines().filter(|l| l.contains(" drained ")).count();
    assert_eq!(drained, 2 * wave, "every session journaled as drained:\n{journal}");

    server.shutdown();
    println!("OK: {} sessions over {shards} shard(s), both scrape surfaces reconciled", 2 * wave);
}
