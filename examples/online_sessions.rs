//! The online streaming runtime: several concurrent query sessions — each
//! with its own queries and its own stream — multiplexed over one shared
//! worker pool, with matches delivered while the streams flow.
//!
//! ```sh
//! cargo run --release --example online_sessions -- [size-mb]
//! ```

use pp_xml::datasets::{twitter_query, TwitterConfig, XmarkConfig};
use pp_xml::prelude::*;
use std::sync::Arc;

fn main() {
    let size_mb: f64 = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(4.0);
    let bytes = (size_mb * 1_000_000.0) as usize;

    println!("generating two ~{size_mb} MB streams (twitter firehose + xmark auctions)...");
    let twitter = TwitterConfig::with_target_size(bytes).generate();
    let xmark = XmarkConfig::with_target_size(bytes).generate();

    // One runtime; every session shares its workers.
    let runtime = Runtime::builder().workers(4).build();

    let sessions: Vec<(&str, Vec<u8>, Vec<String>)> = vec![
        ("twitter", twitter, vec![twitter_query().to_string(), "//retweeted_status".to_string()]),
        ("xmark", xmark, vec!["//k".to_string(), "/s/cs/c/a/d/t/k".to_string()]),
    ];

    std::thread::scope(|scope| {
        let runtime = &runtime;
        for (name, data, queries) in &sessions {
            scope.spawn(move || {
                let engine = Arc::new(
                    Engine::builder()
                        .add_queries(queries)
                        .expect("valid queries")
                        .chunk_size(256 * 1024)
                        .window_size(1 << 20)
                        .build()
                        .expect("engine compiles"),
                );
                // Iterator API: matches arrive while the stream is read.
                let stream =
                    runtime.stream_reader(Arc::clone(&engine), std::io::Cursor::new(data.clone()));
                let mut first_match_at: Option<usize> = None;
                let mut count = 0usize;
                for m in stream {
                    if first_match_at.is_none() {
                        first_match_at = Some(m.start);
                    }
                    count += 1;
                }
                println!(
                    "[{name}] {count} matches; first at byte {:?} — emitted long before the \
                     stream ended",
                    first_match_at
                );
            });
        }
    });

    // Callback API with a final report.
    let (name, data, queries) = &sessions[0];
    let engine = Arc::new(Engine::builder().add_queries(queries).unwrap().build().unwrap());
    let mut seen = 0usize;
    let mut sink = |_m: OnlineMatch| seen += 1;
    let report = runtime
        .process_reader(Arc::clone(&engine), &data[..], &mut sink)
        .expect("in-memory reader cannot fail");
    println!(
        "[{name}] report: {} matches over {} windows / {} chunks, {:.1} MiB/s sustained, \
         peak reorder {} chunks, backpressure wait {:?}",
        seen,
        report.stats.windows,
        report.stats.chunks,
        report.stats.throughput_mib_s(),
        report.stats.peak_reorder_depth,
        report.stats.backpressure_wait,
    );
    println!("shared pool peak queue depth: {}", runtime.peak_queue_depth());
}
