//! Non-deterministic finite automaton built from basic sub-queries.
//!
//! The construction follows Green et al. (§2.2): every sub-query contributes a
//! chain of states starting from the shared root state. A child step adds a
//! single labelled edge; a descendant step adds a *skip* state with a
//! wildcard self-loop so that any number of intermediate elements may be
//! traversed before the step's test matches.

use ppt_xmlstream::{Symbol, SymbolTable, OTHER_SYMBOL};
use ppt_xpath::{BasicAxis, BasicTest, QueryPlan};
use std::collections::HashMap;
use std::ops::Range;

/// Edge label: a concrete symbol or "any element".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Matches exactly one interned symbol.
    Symbol(Symbol),
    /// Matches every *element* symbol (wildcard steps and descendant skips).
    /// Synthetic attribute/text symbols are not matched by `Any`.
    AnyElement,
}

/// One NFA transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfaEdge {
    /// Source state.
    pub from: u32,
    /// Edge label.
    pub label: Label,
    /// Destination state.
    pub to: u32,
}

/// The query NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Number of states; state `0` is the shared root-context state.
    pub num_states: u32,
    /// All edges.
    pub edges: Vec<NfaEdge>,
    /// Accepting states: `accepts[i] = (state, sub-query id)`.
    pub accepts: Vec<(u32, u32)>,
    /// Symbol table for every name, attribute and text test in the plan.
    pub symbols: SymbolTable,
    /// Symbols that stand for attribute tests, keyed by attribute name.
    pub attr_symbols: HashMap<Vec<u8>, Symbol>,
    /// Symbols that stand for `text(S)` tests, keyed by the exact string `S`.
    pub text_symbols: HashMap<Vec<u8>, Symbol>,
    /// Per symbol: `true` when the symbol denotes a real element name (or the
    /// catch-all), `false` for synthetic attribute/text symbols.
    pub element_symbol: Vec<bool>,
}

impl Nfa {
    /// Builds the NFA for every sub-query in `plan`.
    pub fn from_plan(plan: &QueryPlan) -> Nfa {
        Self::from_plan_range(plan, 0..plan.subqueries.len())
    }

    /// Builds the NFA for the sub-queries `range` of `plan` only, with accept
    /// labels carrying the sub-queries' *plan-global* indices.
    ///
    /// This is the incremental half of [`Nfa::union`]: when a merged plan
    /// grows append-only (old sub-queries keep their indices, new ones are
    /// appended), `old.union(&Nfa::from_plan_range(&new_plan, old_len..new_len))`
    /// reproduces `Nfa::from_plan(&new_plan)` exactly — states, symbols and
    /// accepts — without re-walking the old sub-queries.
    pub fn from_plan_range(plan: &QueryPlan, range: Range<usize>) -> Nfa {
        let mut symbols = SymbolTable::new();
        let mut attr_symbols = HashMap::new();
        let mut text_symbols = HashMap::new();
        let mut element_symbol = vec![true]; // OTHER_SYMBOL is an element symbol

        let intern_element =
            |symbols: &mut SymbolTable, element_symbol: &mut Vec<bool>, name: &str| -> Symbol {
                let before = symbols.len();
                let sym = symbols.intern(name.as_bytes());
                if symbols.len() > before {
                    element_symbol.push(true);
                }
                sym
            };

        // First pass: intern all symbols so that the table is stable.
        for sq in &plan.subqueries[range.clone()] {
            for step in &sq.steps {
                match &step.test {
                    BasicTest::Name(n) => {
                        intern_element(&mut symbols, &mut element_symbol, n);
                    }
                    BasicTest::Wildcard => {}
                    BasicTest::Attribute(n) => {
                        let key = format!("@{n}");
                        let before = symbols.len();
                        let sym = symbols.intern(key.as_bytes());
                        if symbols.len() > before {
                            element_symbol.push(false);
                        }
                        attr_symbols.insert(n.as_bytes().to_vec(), sym);
                    }
                    BasicTest::Text(s) => {
                        let key = format!("text={s}");
                        let before = symbols.len();
                        let sym = symbols.intern(key.as_bytes());
                        if symbols.len() > before {
                            element_symbol.push(false);
                        }
                        text_symbols.insert(s.as_bytes().to_vec(), sym);
                    }
                }
            }
        }

        let mut nfa = Nfa {
            num_states: 1,
            edges: Vec::new(),
            accepts: Vec::new(),
            symbols,
            attr_symbols,
            text_symbols,
            element_symbol,
        };

        for (qid, sq) in
            plan.subqueries[range.clone()].iter().enumerate().map(|(i, sq)| (range.start + i, sq))
        {
            let mut current = 0u32; // shared root-context state
            for step in &sq.steps {
                let label = match &step.test {
                    BasicTest::Name(n) => Label::Symbol(nfa.symbols.lookup(n.as_bytes())),
                    BasicTest::Wildcard => Label::AnyElement,
                    BasicTest::Attribute(n) => Label::Symbol(nfa.attr_symbols[n.as_bytes()]),
                    BasicTest::Text(s) => Label::Symbol(nfa.text_symbols[s.as_bytes()]),
                };
                let next = nfa.new_state();
                match step.axis {
                    BasicAxis::Child => {
                        nfa.edges.push(NfaEdge { from: current, label, to: next });
                    }
                    BasicAxis::Descendant => {
                        // current --any--> skip --any--> skip
                        //        \--label--> next   skip --label--> next
                        let skip = nfa.new_state();
                        nfa.edges.push(NfaEdge {
                            from: current,
                            label: Label::AnyElement,
                            to: skip,
                        });
                        nfa.edges.push(NfaEdge { from: skip, label: Label::AnyElement, to: skip });
                        nfa.edges.push(NfaEdge { from: skip, label, to: next });
                        nfa.edges.push(NfaEdge { from: current, label, to: next });
                    }
                }
                current = next;
            }
            nfa.accepts.push((current, qid as u32));
        }
        nfa
    }

    /// Unions two NFAs into one automaton sharing the root-context state.
    ///
    /// Append-stable by construction: `self`'s state numbers, symbol ids and
    /// accept labels are unchanged in the result; `other`'s symbols are
    /// re-interned by name (equal names collapse onto `self`'s ids, new names
    /// are appended in `other`'s order) and `other`'s non-root states are
    /// renumbered to follow `self`'s.
    ///
    /// Sub-query ids on `other`'s accepting states are preserved **verbatim**
    /// — the caller owns the id space. Build `other` with
    /// [`Nfa::from_plan_range`] over the appended tail of a merged
    /// [`QueryPlan`] and the union equals `Nfa::from_plan` of the whole plan.
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut merged = self.clone();

        // Re-intern `other`'s symbols by name; the table iterates in id order
        // (excluding the catch-all) so new names append in `other`'s original
        // interning order.
        let mut sym_map: Vec<Symbol> = Vec::with_capacity(other.symbols.len());
        sym_map.push(OTHER_SYMBOL);
        for (sym, name) in other.symbols.iter() {
            let before = merged.symbols.len();
            let mapped = merged.symbols.intern(name);
            if merged.symbols.len() > before {
                merged
                    .element_symbol
                    .push(other.element_symbol.get(sym.index()).copied().unwrap_or(true));
            }
            sym_map.push(mapped);
        }
        for (name, sym) in &other.attr_symbols {
            merged.attr_symbols.insert(name.clone(), sym_map[sym.index()]);
        }
        for (name, sym) in &other.text_symbols {
            merged.text_symbols.insert(name.clone(), sym_map[sym.index()]);
        }

        // State 0 is the shared root context; every other state shifts up.
        let state_base = merged.num_states;
        let map_state = |s: u32| if s == 0 { 0 } else { state_base + s - 1 };
        merged.num_states += other.num_states.saturating_sub(1);
        for e in &other.edges {
            let label = match e.label {
                Label::Symbol(s) => Label::Symbol(sym_map[s.index()]),
                Label::AnyElement => Label::AnyElement,
            };
            merged.edges.push(NfaEdge { from: map_state(e.from), label, to: map_state(e.to) });
        }
        for &(state, subquery) in &other.accepts {
            merged.accepts.push((map_state(state), subquery));
        }
        merged
    }

    fn new_state(&mut self) -> u32 {
        let s = self.num_states;
        self.num_states += 1;
        s
    }

    /// States reachable from `state` on input `sym` (`is_element` controls
    /// whether wildcard edges apply).
    pub fn moves(&self, state: u32, sym: Symbol, is_element: bool) -> Vec<u32> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.from != state {
                continue;
            }
            let fires = match e.label {
                Label::Symbol(s) => s == sym,
                Label::AnyElement => is_element,
            };
            if fires && !out.contains(&e.to) {
                out.push(e.to);
            }
        }
        out
    }

    /// Sub-queries accepted at `state`.
    pub fn accepted(&self, state: u32) -> Vec<u32> {
        self.accepts.iter().filter(|(s, _)| *s == state).map(|(_, q)| *q).collect()
    }

    /// `true` when `sym` denotes an element name (or the catch-all) rather
    /// than a synthetic attribute/text symbol.
    pub fn is_element_symbol(&self, sym: Symbol) -> bool {
        self.element_symbol.get(sym.index()).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppt_xpath::compile_queries;

    fn build(queries: &[&str]) -> Nfa {
        Nfa::from_plan(&compile_queries(queries).unwrap())
    }

    #[test]
    fn child_chain_has_one_state_per_step() {
        let nfa = build(&["/a/b/c"]);
        // root + 3 chain states
        assert_eq!(nfa.num_states, 4);
        assert_eq!(nfa.edges.len(), 3);
        assert_eq!(nfa.accepts, vec![(3, 0)]);
    }

    #[test]
    fn descendant_steps_add_skip_states() {
        let nfa = build(&["//a"]);
        // root + next + skip
        assert_eq!(nfa.num_states, 3);
        // any->skip, skip->skip, skip-a->next, root-a->next
        assert_eq!(nfa.edges.len(), 4);
    }

    #[test]
    fn moves_respect_labels_and_wildcards() {
        let nfa = build(&["//a"]);
        let a = nfa.symbols.lookup(b"a");
        let other = ppt_xmlstream::OTHER_SYMBOL;
        let from_root_on_a = nfa.moves(0, a, true);
        assert!(from_root_on_a.len() >= 2, "both the skip state and the accept state");
        let from_root_on_other = nfa.moves(0, other, true);
        assert_eq!(from_root_on_other.len(), 1, "only the skip state");
    }

    #[test]
    fn accepting_states_map_to_subqueries() {
        let nfa = build(&["/a/b", "/a/c"]);
        assert_eq!(nfa.accepts.len(), 2);
        let accepted: Vec<u32> = nfa.accepts.iter().map(|(_, q)| *q).collect();
        assert_eq!(accepted, vec![0, 1]);
    }

    #[test]
    fn attribute_and_text_tests_get_synthetic_symbols() {
        let nfa = build(&["/a/@id", "/a/text(hello)"]);
        assert_eq!(nfa.attr_symbols.len(), 1);
        assert_eq!(nfa.text_symbols.len(), 1);
        let attr_sym = nfa.attr_symbols[&b"id".to_vec()];
        assert!(!nfa.is_element_symbol(attr_sym));
        // Wildcard edges must not fire on synthetic symbols.
        let wc = build(&["/a/*", "/a/@id"]);
        let attr_sym = wc.attr_symbols[&b"id".to_vec()];
        let from_a_context = wc.moves(1, attr_sym, false);
        // Only the explicit @id edge (if the context is right), never the
        // wildcard edge of /a/*.
        for s in from_a_context {
            assert!(wc.accepted(s).iter().all(|q| *q == 1));
        }
    }

    #[test]
    fn shared_symbols_are_interned_once() {
        let nfa = build(&["/a/b", "/b/a"]);
        // OTHER + a + b
        assert_eq!(nfa.symbols.len(), 3);
    }

    /// Structural equality check: same states, same symbol table, same edge
    /// set, same accepts — the renumbering-free form of NFA equivalence the
    /// union contract promises.
    fn assert_same_nfa(a: &Nfa, b: &Nfa) {
        assert_eq!(a.num_states, b.num_states, "state counts differ");
        assert_eq!(a.symbols.len(), b.symbols.len(), "symbol counts differ");
        for (sym, name) in a.symbols.iter() {
            assert_eq!(b.symbols.name(sym), name, "symbol {sym:?} renamed");
        }
        assert_eq!(a.element_symbol, b.element_symbol);
        assert_eq!(a.attr_symbols, b.attr_symbols);
        assert_eq!(a.text_symbols, b.text_symbols);
        let edge_set = |n: &Nfa| {
            let mut e = n.edges.clone();
            e.sort_by_key(|e| (e.from, e.to, format!("{:?}", e.label)));
            e
        };
        assert_eq!(edge_set(a), edge_set(b), "edge sets differ");
        let accept_set = |n: &Nfa| {
            let mut acc = n.accepts.clone();
            acc.sort_unstable();
            acc
        };
        assert_eq!(accept_set(a), accept_set(b), "accept sets differ");
    }

    #[test]
    fn union_of_plan_split_equals_full_plan() {
        // Overlapping names and shared sub-queries across the split point.
        let old: &[&str] = &["/a/b/c", "//k", "/a//d"];
        let new: &[&str] = &["//k/x", "/a/b", "/q/@id", "//m/text(t)"];
        let all: Vec<&str> = old.iter().chain(new).copied().collect();
        let full_plan = compile_queries(&all).unwrap();
        let old_plan = compile_queries(old).unwrap();
        let old_nfa = Nfa::from_plan(&old_plan);
        let tail =
            Nfa::from_plan_range(&full_plan, old_plan.subqueries.len()..full_plan.subqueries.len());
        let merged = old_nfa.union(&tail);
        assert_same_nfa(&merged, &Nfa::from_plan(&full_plan));
    }

    #[test]
    fn union_preserves_self_ids_and_remaps_other() {
        let a = build(&["/a/b"]);
        let b = build(&["/x//y"]);
        let u = a.union(&b);
        // Self's states and accepts are byte-identical prefixes.
        assert_eq!(&u.accepts[..a.accepts.len()], &a.accepts[..]);
        assert_eq!(&u.edges[..a.edges.len()], &a.edges[..]);
        for (sym, name) in a.symbols.iter() {
            assert_eq!(u.symbols.name(sym), name);
        }
        // Other's states moved past self's; the shared root stayed shared.
        assert_eq!(u.num_states, a.num_states + b.num_states - 1);
        assert!(u.edges[a.edges.len()..].iter().all(|e| e.from == 0 || e.from >= a.num_states));
        // Other's sub-query ids are preserved verbatim (caller's id space).
        assert_eq!(u.accepts[a.accepts.len()..].iter().map(|(_, q)| *q).collect::<Vec<_>>(), {
            let mut ids: Vec<u32> = b.accepts.iter().map(|(_, q)| *q).collect();
            ids.sort_unstable();
            ids
        });
    }

    #[test]
    fn union_with_empty_tail_is_identity() {
        let a = build(&["/a/b/c", "//k"]);
        let plan = compile_queries(&["/z"]).unwrap();
        let empty_tail = Nfa::from_plan_range(&plan, 1..1);
        let u = a.union(&empty_tail);
        assert_same_nfa(&u, &a);
    }
}
