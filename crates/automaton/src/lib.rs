//! XPath automata: NFA construction, DFA subset construction and the
//! pushdown transducer.
//!
//! This crate implements §2.2 and §3.1 of the paper:
//!
//! 1. [`nfa`] — a non-deterministic finite automaton is built from the basic
//!    sub-queries of a [`ppt_xpath::QueryPlan`] (one chain per sub-query,
//!    descendant steps introduce skip states with wildcard self-loops).
//! 2. [`dfa`] — the NFA is determinised by subset construction. DFA states
//!    whose subsets contain accepting NFA states are labelled with the
//!    sub-queries they match; state `0`-style sink behaviour (Fig 1b) falls
//!    out of the empty subset.
//! 3. [`transducer`] — the DFA is lifted to a deterministic pushdown
//!    transducer in nested-word form: every opening tag pushes the current
//!    state and performs a DFA transition, every closing tag pops and returns
//!    to the popped state, and transitions into accepting states emit the
//!    matched sub-query identifiers on the output tape.
//! 4. [`exec`] — in-order (sequential) execution of the transducer over a
//!    byte stream; the semantic reference that the out-of-order
//!    PP-Transducer in `ppt-core` is differentially tested against.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod dfa;
pub mod exec;
pub mod nfa;
pub mod transducer;

pub use dfa::{Dfa, StateBudgetExceeded};
pub use exec::{
    run_sequential, run_sequential_nfa, run_sequential_with_stats, Match, SequentialStats,
};
pub use nfa::Nfa;
pub use transducer::{StateId, SubQueryId, Transducer};
