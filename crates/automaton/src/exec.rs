//! In-order (sequential) execution of the pushdown transducer.
//!
//! This is the classic streaming-automaton evaluation (§2.2): one thread, one
//! pass, constant state. It serves three purposes in this workspace:
//!
//! * it is the semantic *reference* the out-of-order PP-Transducer is tested
//!   against (their match sets must be identical);
//! * it is the "PPT (1 thread)" configuration of Fig 11;
//! * its transition count is the denominator of the §3.3 convergence-overhead
//!   metric (out-of-order transitions ÷ in-order transitions).

use crate::nfa::Nfa;
use crate::transducer::{StateId, SubQueryId, Transducer};
use ppt_xmlstream::{Lexer, XmlEvent};

/// One match of a basic sub-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Byte offset of the opening tag (or attribute/text) that completed the
    /// match. Offsets are relative to the buffer that was processed; callers
    /// processing chunks rebase them to document-absolute offsets.
    pub pos: usize,
    /// Depth of the matched element (root element = 1).
    pub depth: u32,
    /// The sub-query that matched.
    pub subquery: SubQueryId,
}

/// Counters collected during sequential execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialStats {
    /// Number of transducer transitions performed (push + pop + synthetic).
    pub transitions: u64,
    /// Number of tag events consumed.
    pub tag_events: u64,
    /// Maximum stack depth reached.
    pub max_depth: u32,
}

/// Runs the transducer sequentially over `data`, returning every sub-query
/// match in document order.
pub fn run_sequential(t: &Transducer, data: &[u8]) -> Vec<Match> {
    run_sequential_with_stats(t, data).0
}

/// Runs the transducer sequentially and also returns execution counters.
pub fn run_sequential_with_stats(t: &Transducer, data: &[u8]) -> (Vec<Match>, SequentialStats) {
    let mut matches = Vec::new();
    let mut stats = SequentialStats::default();
    let mut state: StateId = t.initial();
    let mut stack: Vec<StateId> = Vec::with_capacity(64);

    fn handle_open(
        t: &Transducer,
        sym: ppt_xmlstream::Symbol,
        pos: usize,
        state: &mut StateId,
        stack: &mut Vec<StateId>,
        matches: &mut Vec<Match>,
        stats: &mut SequentialStats,
    ) {
        let next = t.step(*state, sym);
        stack.push(*state);
        *state = next;
        stats.transitions += 1;
        stats.tag_events += 1;
        stats.max_depth = stats.max_depth.max(stack.len() as u32);
        for &q in t.output(next) {
            matches.push(Match { pos, depth: stack.len() as u32, subquery: q });
        }
    }

    if t.needs_full_events() {
        for ev in Lexer::new(data) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    handle_open(
                        t,
                        t.classify_name(name),
                        pos,
                        &mut state,
                        &mut stack,
                        &mut matches,
                        &mut stats,
                    );
                }
                XmlEvent::Close { .. } => {
                    if let Some(prev) = stack.pop() {
                        state = prev;
                    }
                    stats.transitions += 1;
                    stats.tag_events += 1;
                }
                XmlEvent::Attr { name, pos, .. } => {
                    if let Some(sym) = t.classify_attr(name) {
                        // An attribute behaves like an immediately-closed
                        // child element: the state is probed but not changed.
                        let next = t.step(state, sym);
                        stats.transitions += 2;
                        for &q in t.output(next) {
                            matches.push(Match { pos, depth: stack.len() as u32 + 1, subquery: q });
                        }
                    }
                }
                XmlEvent::Text { text, pos } => {
                    let trimmed = trim_ws(text);
                    if trimmed.is_empty() {
                        continue;
                    }
                    if let Some(sym) = t.classify_text(trimmed) {
                        let next = t.step(state, sym);
                        stats.transitions += 2;
                        for &q in t.output(next) {
                            matches.push(Match { pos, depth: stack.len() as u32 + 1, subquery: q });
                        }
                    }
                }
            }
        }
    } else {
        for ev in Lexer::tags_only(data) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    handle_open(
                        t,
                        t.classify_name(name),
                        pos,
                        &mut state,
                        &mut stack,
                        &mut matches,
                        &mut stats,
                    );
                }
                XmlEvent::Close { .. } => {
                    if let Some(prev) = stack.pop() {
                        state = prev;
                    }
                    stats.transitions += 1;
                    stats.tag_events += 1;
                }
                _ => unreachable!("tags_only lexer emits only tag events"),
            }
        }
    }
    (matches, stats)
}

/// Runs the query NFA *directly* — no subset construction, no transition
/// tables — returning the same matches [`run_sequential`] produces for the
/// determinised automaton of the same plan.
///
/// This is the structured fallback behind [`crate::dfa::StateBudgetExceeded`]:
/// when determinising a (typically merged, many-query) plan would exceed the
/// DFA state budget, the stream can still be evaluated in one in-order pass by
/// simulating the NFA state *set*. Per tag event the cost is proportional to
/// the live set times the edge fan-out instead of O(1), so this path trades
/// throughput for bounded memory.
pub fn run_sequential_nfa(nfa: &Nfa, data: &[u8]) -> Vec<Match> {
    let mut matches = Vec::new();
    // The live NFA state set (sorted, deduplicated), and the per-open stack
    // of predecessor sets — the set-valued analogue of the pushdown stack.
    let mut current: Vec<u32> = vec![0];
    let mut stack: Vec<Vec<u32>> = Vec::with_capacity(64);

    let advance = |set: &[u32], sym: ppt_xmlstream::Symbol| -> Vec<u32> {
        let is_element = nfa.is_element_symbol(sym);
        let mut next: Vec<u32> = set.iter().flat_map(|&s| nfa.moves(s, sym, is_element)).collect();
        next.sort_unstable();
        next.dedup();
        next
    };
    let accepted_of = |set: &[u32]| -> Vec<u32> {
        let mut acc: Vec<u32> = set.iter().flat_map(|&s| nfa.accepted(s)).collect();
        acc.sort_unstable();
        acc.dedup();
        acc
    };
    let open = |name: &[u8],
                pos: usize,
                current: &mut Vec<u32>,
                stack: &mut Vec<Vec<u32>>,
                matches: &mut Vec<Match>| {
        let next = advance(current, nfa.symbols.lookup(name));
        stack.push(std::mem::replace(current, next));
        for q in accepted_of(current) {
            matches.push(Match { pos, depth: stack.len() as u32, subquery: q });
        }
    };

    let needs_full = !nfa.attr_symbols.is_empty() || !nfa.text_symbols.is_empty();
    if needs_full {
        for ev in Lexer::new(data) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    open(name, pos, &mut current, &mut stack, &mut matches)
                }
                XmlEvent::Close { .. } => {
                    if let Some(prev) = stack.pop() {
                        current = prev;
                    }
                }
                XmlEvent::Attr { name, pos, .. } => {
                    if let Some(&sym) = nfa.attr_symbols.get(name) {
                        for q in accepted_of(&advance(&current, sym)) {
                            matches.push(Match { pos, depth: stack.len() as u32 + 1, subquery: q });
                        }
                    }
                }
                XmlEvent::Text { text, pos } => {
                    let trimmed = trim_ws(text);
                    if trimmed.is_empty() {
                        continue;
                    }
                    if let Some(&sym) = nfa.text_symbols.get(trimmed) {
                        for q in accepted_of(&advance(&current, sym)) {
                            matches.push(Match { pos, depth: stack.len() as u32 + 1, subquery: q });
                        }
                    }
                }
            }
        }
    } else {
        for ev in Lexer::tags_only(data) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    open(name, pos, &mut current, &mut stack, &mut matches)
                }
                XmlEvent::Close { .. } => {
                    if let Some(prev) = stack.pop() {
                        current = prev;
                    }
                }
                _ => unreachable!("tags_only lexer emits only tag events"),
            }
        }
    }
    matches
}

/// Trims ASCII whitespace from both ends of a byte slice.
pub fn trim_ws(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if first.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = s {
        if last.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_DOC: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";

    #[test]
    fn paper_example_matches_once() {
        // Fig 1a + /a/b/c: exactly one match (the <c> on line 6).
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let m = run_sequential(&t, PAPER_DOC);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].subquery, 0);
        assert_eq!(m[0].depth, 3);
        assert_eq!(&PAPER_DOC[m[0].pos..m[0].pos + 3], b"<c>");
    }

    #[test]
    fn descendant_queries_match_recursively() {
        let t = Transducer::from_queries(&["//b"]).unwrap();
        let m = run_sequential(&t, b"<a><b><b></b></b><c><b/></c></a>");
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().map(|x| x.depth).collect::<Vec<_>>(), vec![2, 3, 3]);
    }

    #[test]
    fn multiple_subqueries_report_their_own_ids() {
        let t = Transducer::from_queries(&["/a/b", "/a/c", "//d"]).unwrap();
        let m = run_sequential(&t, b"<a><b><d/></b><c/><d/></a>");
        let by_query = |q: u32| m.iter().filter(|x| x.subquery == q).count();
        assert_eq!(by_query(0), 1);
        assert_eq!(by_query(1), 1);
        assert_eq!(by_query(2), 2);
    }

    #[test]
    fn matches_are_reported_in_document_order() {
        let t = Transducer::from_queries(&["//x"]).unwrap();
        let m = run_sequential(&t, b"<a><x/><b><x/></b><x/></a>");
        let positions: Vec<usize> = m.iter().map(|x| x.pos).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn recursive_elements_twitter_style() {
        // A status containing a retweeted status: //status/coordinates must
        // match both levels.
        let t = Transducer::from_queries(&["//status/coordinates"]).unwrap();
        let xml = b"<stream><status><coordinates/><retweeted_status><status><coordinates/></status></retweeted_status></status></stream>";
        let m = run_sequential(&t, xml);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn attribute_query_matches() {
        let t = Transducer::from_queries(&["/a/b/@id"]).unwrap();
        let m = run_sequential(&t, br#"<a><b id="1"/><b x="2"/><c id="3"/></a>"#);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn text_query_matches_exact_content() {
        let t = Transducer::from_queries(&["/a/b/text(hello)"]).unwrap();
        let m = run_sequential(&t, b"<a><b>hello</b><b>world</b><b> hello </b></a>");
        assert_eq!(m.len(), 2, "whitespace around text is trimmed");
    }

    #[test]
    fn stats_count_tag_events_and_depth() {
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let (_, stats) = run_sequential_with_stats(&t, PAPER_DOC);
        assert_eq!(stats.tag_events, 10);
        assert_eq!(stats.transitions, 10);
        assert_eq!(stats.max_depth, 3);
    }

    #[test]
    fn malformed_chunk_does_not_panic() {
        let t = Transducer::from_queries(&["/a/b"]).unwrap();
        // More closes than opens, then new opens.
        let m = run_sequential(&t, b"</x></y><a><b/></a>");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_input_has_no_matches() {
        let t = Transducer::from_queries(&["/a"]).unwrap();
        assert!(run_sequential(&t, b"").is_empty());
    }

    #[test]
    fn trim_ws_works() {
        assert_eq!(trim_ws(b"  x  "), b"x");
        assert_eq!(trim_ws(b"x"), b"x");
        assert_eq!(trim_ws(b"   "), b"");
        assert_eq!(trim_ws(b""), b"");
    }

    #[test]
    fn wildcard_query_counts_every_child() {
        let t = Transducer::from_queries(&["/a/*"]).unwrap();
        let m = run_sequential(&t, b"<a><x/><y/><z><w/></z></a>");
        assert_eq!(m.len(), 3, "only direct children of the root");
    }

    /// Asserts the direct-NFA fallback produces the exact match list of the
    /// determinised transducer for the same query set over `data`.
    fn assert_nfa_equals_dfa(queries: &[&str], data: &[u8]) {
        let plan = ppt_xpath::compile_queries(queries).unwrap();
        let nfa = Nfa::from_plan(&plan);
        let t = Transducer::from_plan(&plan);
        assert_eq!(
            run_sequential_nfa(&nfa, data),
            run_sequential(&t, data),
            "NFA fallback diverged from DFA execution for {queries:?}"
        );
    }

    #[test]
    fn nfa_fallback_matches_dfa_on_structural_queries() {
        let doc = b"<a><b><c/><d><c/></d></b><k><x/><k><x/></k></k><q id=\"7\"/></a>";
        assert_nfa_equals_dfa(&["/a/b/c"], doc);
        assert_nfa_equals_dfa(&["//k", "/a//c", "/a/b", "//k/x", "/a/*/c"], doc);
        assert_nfa_equals_dfa(&["//x"], doc);
    }

    #[test]
    fn nfa_fallback_matches_dfa_on_attr_and_text_queries() {
        let doc = br#"<a><b id="1">hello</b><b x="2">world</b><c id="3"> hello </c></a>"#;
        assert_nfa_equals_dfa(&["/a/b/@id", "//c/@id", "/a/b/text(hello)", "//b"], doc);
    }

    #[test]
    fn nfa_fallback_matches_dfa_on_malformed_input() {
        assert_nfa_equals_dfa(&["/a/b", "//b"], b"</x></y><a><b/></a></a></a><b/>");
        assert_nfa_equals_dfa(&["/a"], b"");
    }

    #[test]
    fn nfa_fallback_handles_plans_over_the_dfa_budget() {
        // The exact query family that trips the subset-construction budget
        // (see dfa.rs tests): the NFA path must still evaluate it, in bounded
        // memory, with the same semantics as the (expensive) full DFA.
        let queries: Vec<String> = (0..10).map(|i| format!("//a{i}//b{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let plan = ppt_xpath::compile_queries(&refs).unwrap();
        let nfa = Nfa::from_plan(&plan);
        assert!(crate::dfa::Dfa::from_nfa_bounded(&nfa, 256).is_err());

        let doc = b"<r><a0><b0/><a1><b1/><b0/></a1></a0><a9><x/><b9/></a9></r>";
        let t = Transducer::from_plan(&plan);
        assert_eq!(run_sequential_nfa(&nfa, doc), run_sequential(&t, doc));
    }
}
