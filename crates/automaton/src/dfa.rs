//! Subset construction: NFA → DFA.
//!
//! The DFA is the automaton of Fig 1b: its states are sets of NFA states, the
//! empty set plays the role of the paper's state 0 (elements not mentioned in
//! any query) and self-loops on every symbol fall out naturally. A DFA state
//! is *accepting for sub-query q* when its subset contains q's accepting NFA
//! state; the transducer construction turns entry into such a state into an
//! output symbol.

use crate::nfa::{Label, Nfa};
use ppt_xmlstream::Symbol;
use std::collections::HashMap;
use std::fmt;

/// The subset construction was abandoned because it materialised more DFA
/// states than the configured ceiling allows.
///
/// Merging hundreds of queries into one automaton can blow the subset
/// construction up (the worst case is exponential in NFA states); before this
/// ceiling existed, a hostile or merely very large query set would OOM the
/// process during compilation. Callers receiving this error fall back to
/// [`crate::exec::run_sequential_nfa`] (direct NFA execution, no table
/// materialisation) or refuse the query set with a structured error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudgetExceeded {
    /// DFA states already materialised when the construction was abandoned
    /// (always `budget + 1`: the first state past the ceiling trips it).
    pub states: usize,
    /// The configured ceiling it tripped over.
    pub budget: usize,
}

impl fmt::Display for StateBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subset construction exceeded the automaton state budget \
             ({} states materialised, budget {})",
            self.states, self.budget
        )
    }
}

impl std::error::Error for StateBudgetExceeded {}

/// Deterministic finite automaton over the interned symbol alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Number of DFA states.
    pub num_states: u32,
    /// The start state (the subset `{NFA root}`).
    pub initial: u32,
    /// Dense transition table: `delta[state as usize * num_symbols + symbol]`.
    pub delta: Vec<u32>,
    /// Number of symbols (table stride).
    pub num_symbols: usize,
    /// Sub-queries matched upon *entering* each state (sorted, deduplicated).
    pub matches: Vec<Vec<u32>>,
}

impl Dfa {
    /// Runs the subset construction over `nfa` with no state ceiling.
    ///
    /// Prefer [`Dfa::from_nfa_bounded`] anywhere the NFA comes from
    /// caller-controlled input (merged multi-query plans, the serving
    /// front-end): this unbounded form can allocate without limit.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        // UNWRAP-OK: `len() > usize::MAX` is impossible, so a `usize::MAX`
        // budget can never trip and the bounded construction is infallible.
        Self::from_nfa_bounded(nfa, usize::MAX).expect("unbounded subset construction cannot trip")
    }

    /// Runs the subset construction over `nfa`, abandoning it with
    /// [`StateBudgetExceeded`] as soon as more than `max_states` DFA states
    /// materialise — bounded memory instead of a compile-time OOM.
    pub fn from_nfa_bounded(nfa: &Nfa, max_states: usize) -> Result<Dfa, StateBudgetExceeded> {
        let num_symbols = nfa.symbols.len();
        // Index the flat edge/accept lists by source state once. `Nfa::moves`
        // scans every edge per call, which is fine for the sequential
        // fallback's small live sets but turns the subset construction
        // quadratic in merged-query count (a 1024-query union took over a
        // minute; with the index it is milliseconds).
        let mut adjacency: Vec<Vec<(Label, u32)>> = vec![Vec::new(); nfa.num_states as usize];
        for e in &nfa.edges {
            adjacency[e.from as usize].push((e.label, e.to));
        }
        let mut accepts_at: Vec<Vec<u32>> = vec![Vec::new(); nfa.num_states as usize];
        for &(state, q) in &nfa.accepts {
            accepts_at[state as usize].push(q);
        }

        let mut subsets: Vec<Vec<u32>> = Vec::new();
        let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut delta: Vec<u32> = Vec::new();
        let mut matches: Vec<Vec<u32>> = Vec::new();

        let add_subset = |subset: Vec<u32>,
                          subsets: &mut Vec<Vec<u32>>,
                          index: &mut HashMap<Vec<u32>, u32>,
                          matches: &mut Vec<Vec<u32>>|
         -> u32 {
            if let Some(&id) = index.get(&subset) {
                return id;
            }
            let id = subsets.len() as u32;
            let mut accepted: Vec<u32> =
                subset.iter().flat_map(|&s| accepts_at[s as usize].iter().copied()).collect();
            accepted.sort_unstable();
            accepted.dedup();
            index.insert(subset.clone(), id);
            subsets.push(subset);
            matches.push(accepted);
            id
        };

        let initial = add_subset(vec![0], &mut subsets, &mut index, &mut matches);
        let mut work = 0usize;
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_symbols];
        let mut any_targets: Vec<u32> = Vec::new();
        while work < subsets.len() {
            let subset = subsets[work].clone();
            // One pass over the subset's outgoing edges fills every symbol's
            // successor bucket; `AnyElement` targets are shared by all
            // element symbols and folded in per symbol below.
            for bucket in &mut buckets {
                bucket.clear();
            }
            any_targets.clear();
            for &s in &subset {
                for &(label, to) in &adjacency[s as usize] {
                    match label {
                        Label::Symbol(sym) => buckets[sym.index()].push(to),
                        Label::AnyElement => any_targets.push(to),
                    }
                }
            }
            for (sym_idx, bucket) in buckets.iter().enumerate() {
                let sym = Symbol(sym_idx as u32);
                let mut next: Vec<u32> = bucket.clone();
                if nfa.is_element_symbol(sym) {
                    next.extend_from_slice(&any_targets);
                }
                next.sort_unstable();
                next.dedup();
                let next_id = add_subset(next, &mut subsets, &mut index, &mut matches);
                if subsets.len() > max_states {
                    return Err(StateBudgetExceeded { states: subsets.len(), budget: max_states });
                }
                delta.push(next_id);
            }
            work += 1;
        }

        // `delta` was filled in discovery order which equals state id order.
        debug_assert_eq!(delta.len(), subsets.len() * num_symbols);
        Ok(Dfa { num_states: subsets.len() as u32, initial, delta, num_symbols, matches })
    }

    /// The successor of `state` on `sym`.
    #[inline]
    pub fn step(&self, state: u32, sym: Symbol) -> u32 {
        self.delta[state as usize * self.num_symbols + sym.index()]
    }

    /// Sub-queries matched when entering `state`.
    #[inline]
    pub fn state_matches(&self, state: u32) -> &[u32] {
        &self.matches[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use ppt_xmlstream::OTHER_SYMBOL;
    use ppt_xpath::compile_queries;

    fn build(queries: &[&str]) -> (Nfa, Dfa) {
        let nfa = Nfa::from_plan(&compile_queries(queries).unwrap());
        let dfa = Dfa::from_nfa(&nfa);
        (nfa, dfa)
    }

    #[test]
    fn fig1b_shape_for_a_b_c() {
        // The paper's Fig 1b DFA for /a/b/c has 5 states: the query chain
        // 1->2->3->4 plus the sink state 0.
        let (nfa, dfa) = build(&["/a/b/c"]);
        assert_eq!(dfa.num_states, 5);
        let a = nfa.symbols.lookup(b"a");
        let b = nfa.symbols.lookup(b"b");
        let c = nfa.symbols.lookup(b"c");

        let s1 = dfa.initial;
        let s2 = dfa.step(s1, a);
        let s3 = dfa.step(s2, b);
        let s4 = dfa.step(s3, c);
        assert_ne!(s2, s1);
        assert_ne!(s3, s2);
        assert_ne!(s4, s3);
        assert_eq!(dfa.state_matches(s4), &[0]);
        assert!(dfa.state_matches(s1).is_empty());
        assert!(dfa.state_matches(s2).is_empty());

        // Any off-path symbol leads to the sink, which self-loops.
        let sink = dfa.step(s1, b);
        assert_eq!(dfa.step(sink, a), sink);
        assert_eq!(dfa.step(sink, b), sink);
        assert_eq!(dfa.step(sink, c), sink);
        assert_eq!(dfa.step(sink, OTHER_SYMBOL), sink);
        // Off-path transitions from query states also go to the sink.
        assert_eq!(dfa.step(s2, a), sink);
        assert_eq!(dfa.step(s4, c), sink);
    }

    #[test]
    fn descendant_query_matches_at_any_depth() {
        let (nfa, dfa) = build(&["//k"]);
        let k = nfa.symbols.lookup(b"k");
        let mut state = dfa.initial;
        // Descend through unrelated elements, then k must still match.
        for _ in 0..5 {
            state = dfa.step(state, OTHER_SYMBOL);
        }
        let k_state = dfa.step(state, k);
        assert_eq!(dfa.state_matches(k_state), &[0]);
        // And k directly below the root matches too.
        let k_state2 = dfa.step(dfa.initial, k);
        assert_eq!(dfa.state_matches(k_state2), &[0]);
    }

    #[test]
    fn multiple_subqueries_share_the_dfa() {
        let (nfa, dfa) = build(&["/a/b", "/a/c", "//b"]);
        let a = nfa.symbols.lookup(b"a");
        let b = nfa.symbols.lookup(b"b");
        let c = nfa.symbols.lookup(b"c");
        let after_a = dfa.step(dfa.initial, a);
        let after_ab = dfa.step(after_a, b);
        // /a/b (sub-query 0) and //b (sub-query 2) both match here.
        assert_eq!(dfa.state_matches(after_ab), &[0, 2]);
        let after_ac = dfa.step(after_a, c);
        assert_eq!(dfa.state_matches(after_ac), &[1]);
    }

    #[test]
    fn wildcard_step_matches_any_element_but_not_other_queries_tags() {
        let (nfa, dfa) = build(&["/a/*/c"]);
        let a = nfa.symbols.lookup(b"a");
        let c = nfa.symbols.lookup(b"c");
        let s = dfa.step(dfa.initial, a);
        let via_other = dfa.step(s, OTHER_SYMBOL);
        let done = dfa.step(via_other, c);
        assert_eq!(dfa.state_matches(done), &[0]);
        // The wildcard also accepts elements that happen to be named like
        // query tags.
        let via_c = dfa.step(s, c);
        let done2 = dfa.step(via_c, c);
        assert_eq!(dfa.state_matches(done2), &[0]);
    }

    #[test]
    fn state_budget_trips_on_exploding_query_sets() {
        // k independent `//a_i//b_i` queries make the subset construction
        // track which a_i contexts are active — exponentially many subsets.
        let queries: Vec<String> = (0..10).map(|i| format!("//a{i}//b{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let nfa = Nfa::from_plan(&compile_queries(&refs).unwrap());
        let err = Dfa::from_nfa_bounded(&nfa, 256).unwrap_err();
        assert_eq!(err.budget, 256);
        assert_eq!(err.states, 257, "abandoned at the first state past the ceiling");
        assert!(err.to_string().contains("state budget"));
    }

    #[test]
    fn bounded_construction_equals_unbounded_when_under_budget() {
        let queries: Vec<String> = (0..4).map(|i| format!("//a{i}//b{i}")).collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let nfa = Nfa::from_plan(&compile_queries(&refs).unwrap());
        let bounded = Dfa::from_nfa_bounded(&nfa, 1 << 12).unwrap();
        let unbounded = Dfa::from_nfa(&nfa);
        assert_eq!(bounded.num_states, unbounded.num_states);
        assert_eq!(bounded.delta, unbounded.delta);
        assert_eq!(bounded.matches, unbounded.matches);
    }

    #[test]
    fn table_is_total() {
        let (_, dfa) = build(&["/a/b/c", "//k", "/x/*/y"]);
        for s in 0..dfa.num_states {
            for sym in 0..dfa.num_symbols {
                let next = dfa.delta[s as usize * dfa.num_symbols + sym];
                assert!(next < dfa.num_states);
            }
        }
    }
}
