//! The deterministic pushdown transducer (§2.2, §3.1).
//!
//! The transducer is the 6-tuple (Σ, Γ, ∆, Q, q₀, δ) of §3.1, derived from the
//! DFA by subset construction:
//!
//! * Σ — opening/closing tags over the interned symbol alphabet;
//! * Γ — the states themselves (every push transition pushes the *current*
//!   state, every pop transition returns to the popped state);
//! * ∆ — one output symbol per basic sub-query; a transition that enters an
//!   accepting DFA state emits the identifiers of the sub-queries accepted
//!   there;
//! * δ — `δpush(q, c) = DFA.step(q, c)` for opening tags,
//!   `δpop(q, c, z) = z` for closing tags, defined only when
//!   `DFA.step(z, c) = q` (the nested-word discipline: you can only pop back
//!   into a state you could have come from).
//!
//! The inverse index [`Transducer::pop_sources`] materialises exactly that
//! domain — it is what `funknown` of the PP-Transducer enumerates when a pop
//! happens with an unknown stack (§4.1).

use crate::dfa::{Dfa, StateBudgetExceeded};
use crate::nfa::Nfa;
use ppt_xmlstream::{Symbol, SymbolTable, OTHER_SYMBOL};
use ppt_xpath::{compile_queries, QueryPlan, XPathError};
use std::collections::HashMap;

/// Identifier of a transducer state.
pub type StateId = u32;
/// Identifier of a basic sub-query (index into the [`QueryPlan`]'s
/// sub-queries; also the transducer's output alphabet ∆).
pub type SubQueryId = u32;

/// A compiled deterministic pushdown transducer shared (immutably) by every
/// worker thread.
#[derive(Debug, Clone)]
pub struct Transducer {
    symbols: SymbolTable,
    num_symbols: usize,
    num_states: u32,
    initial: StateId,
    /// Dense push-transition table `[state * num_symbols + symbol]`.
    delta: Vec<StateId>,
    /// Output symbols emitted when entering each state.
    matches: Vec<Vec<SubQueryId>>,
    /// `pop_sources[q * num_symbols + c]` = all states `z` with
    /// `delta(z, c) == q`, i.e. the stack symbols that may legally be popped
    /// while in state `q` under closing tag `c`.
    pop_sources: Vec<Vec<StateId>>,
    attr_symbols: HashMap<Vec<u8>, Symbol>,
    text_symbols: HashMap<Vec<u8>, Symbol>,
    element_symbol: Vec<bool>,
}

impl Transducer {
    /// Compiles a transducer straight from query strings (convenience
    /// wrapper around [`compile_queries`] + [`Transducer::from_plan`]).
    pub fn from_queries<S: AsRef<str>>(queries: &[S]) -> Result<Transducer, XPathError> {
        Ok(Self::from_plan(&compile_queries(queries)?))
    }

    /// Compiles the transducer for every basic sub-query of `plan`.
    pub fn from_plan(plan: &QueryPlan) -> Transducer {
        let nfa = Nfa::from_plan(plan);
        let dfa = Dfa::from_nfa(&nfa);
        Self::assemble(nfa, dfa)
    }

    /// Like [`Transducer::from_plan`] but bounds the subset construction:
    /// compilation is abandoned with [`StateBudgetExceeded`] instead of
    /// materialising more than `max_states` DFA states.
    pub fn from_plan_bounded(
        plan: &QueryPlan,
        max_states: usize,
    ) -> Result<Transducer, StateBudgetExceeded> {
        let nfa = Nfa::from_plan(plan);
        let dfa = Dfa::from_nfa_bounded(&nfa, max_states)?;
        Ok(Self::assemble(nfa, dfa))
    }

    /// Determinises an already-built NFA under a state budget. This is the
    /// entry point for incrementally merged automata: the caller keeps the
    /// union NFA around (cheap to extend) and re-determinises it here when
    /// the query set grows.
    pub fn from_nfa_bounded(
        nfa: &Nfa,
        max_states: usize,
    ) -> Result<Transducer, StateBudgetExceeded> {
        let dfa = Dfa::from_nfa_bounded(nfa, max_states)?;
        Ok(Self::assemble(nfa.clone(), dfa))
    }

    /// Lifts a determinised automaton into pushdown-transducer form (builds
    /// the `pop_sources` inverse index and adopts the NFA's symbol tables).
    fn assemble(nfa: Nfa, dfa: Dfa) -> Transducer {
        let num_symbols = dfa.num_symbols;
        let num_states = dfa.num_states;

        let mut pop_sources = vec![Vec::new(); num_states as usize * num_symbols];
        for z in 0..num_states {
            for sym in 0..num_symbols {
                let q = dfa.delta[z as usize * num_symbols + sym];
                pop_sources[q as usize * num_symbols + sym].push(z);
            }
        }

        Transducer {
            symbols: nfa.symbols,
            num_symbols,
            num_states,
            initial: dfa.initial,
            delta: dfa.delta,
            matches: dfa.matches,
            pop_sources,
            attr_symbols: nfa.attr_symbols,
            text_symbols: nfa.text_symbols,
            element_symbol: nfa.element_symbol,
        }
    }

    /// The initial state q₀.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states |Q|.
    #[inline]
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Number of input symbols |Σ| (including the catch-all).
    #[inline]
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// The push transition δpush: the state entered from `state` on an
    /// opening tag carrying `sym` (the caller pushes `state` onto the stack).
    #[inline]
    pub fn step(&self, state: StateId, sym: Symbol) -> StateId {
        self.delta[state as usize * self.num_symbols + sym.index()]
    }

    /// Output symbols (sub-query ids) emitted when *entering* `state`.
    #[inline]
    pub fn output(&self, state: StateId) -> &[SubQueryId] {
        &self.matches[state as usize]
    }

    /// All stack symbols `z` for which `δpop(state, sym, z)` is defined, i.e.
    /// every state that transitions into `state` on `sym`. This is the fan-out
    /// set considered by `funknown` (§4.1) when the stack is exhausted.
    #[inline]
    pub fn pop_sources(&self, state: StateId, sym: Symbol) -> &[StateId] {
        &self.pop_sources[state as usize * self.num_symbols + sym.index()]
    }

    /// Maps an element name to its symbol ([`OTHER_SYMBOL`] when no query
    /// mentions it).
    #[inline]
    pub fn classify_name(&self, name: &[u8]) -> Symbol {
        self.symbols.lookup(name)
    }

    /// Maps an attribute name to its synthetic symbol, if any query tests it.
    #[inline]
    pub fn classify_attr(&self, name: &[u8]) -> Option<Symbol> {
        self.attr_symbols.get(name).copied()
    }

    /// Maps exact text content to its synthetic symbol, if any query tests it.
    #[inline]
    pub fn classify_text(&self, text: &[u8]) -> Option<Symbol> {
        if self.text_symbols.is_empty() {
            return None;
        }
        self.text_symbols.get(text).copied()
    }

    /// `true` when at least one sub-query tests attributes or text, so the
    /// runtime must lex full events instead of tags only.
    pub fn needs_full_events(&self) -> bool {
        !self.attr_symbols.is_empty() || !self.text_symbols.is_empty()
    }

    /// `true` when `sym` denotes an element (or the catch-all).
    #[inline]
    pub fn is_element_symbol(&self, sym: Symbol) -> bool {
        self.element_symbol.get(sym.index()).copied().unwrap_or(true)
    }

    /// The symbol table (shared, read-only at run time).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Approximate size in bytes of the shared transition tables — the
    /// "largest data structures" of §5.2, used by the Fig 9 working-set
    /// proxy and by the Fig 14 discussion of transition-table cache misses.
    pub fn table_bytes(&self) -> usize {
        self.delta.len() * std::mem::size_of::<StateId>()
            + self
                .pop_sources
                .iter()
                .map(|v| v.len() * std::mem::size_of::<StateId>())
                .sum::<usize>()
            + self
                .matches
                .iter()
                .map(|v| v.len() * std::mem::size_of::<SubQueryId>())
                .sum::<usize>()
    }

    /// The catch-all symbol (exposed for tests and the datasets crate).
    pub fn other_symbol(&self) -> Symbol {
        OTHER_SYMBOL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_transducer() -> Transducer {
        Transducer::from_queries(&["/a/b/c"]).unwrap()
    }

    #[test]
    fn running_example_push_transitions() {
        // Fig 3: state 1 --a--> 2 --b--> 3 --c--> 4 (with output), everything
        // else goes to state 0.
        let t = paper_transducer();
        let a = t.classify_name(b"a");
        let b = t.classify_name(b"b");
        let c = t.classify_name(b"c");
        let s1 = t.initial();
        let s2 = t.step(s1, a);
        let s3 = t.step(s2, b);
        let s4 = t.step(s3, c);
        assert!(t.output(s4).contains(&0));
        assert!(t.output(s1).is_empty());
        assert!(t.output(s2).is_empty());
        assert!(t.output(s3).is_empty());
        let sink = t.step(s1, c);
        assert_eq!(t.step(sink, a), sink);
        assert_eq!(t.num_states(), 5);
    }

    #[test]
    fn pop_sources_match_the_worked_example() {
        // §4.1 example: "The only states with pop transitions under the </a>
        // closing tag are States 0 and 2; … State 2 can only move into State 1
        // under a pop transition whereas State 0 can move into States 0, 2, 3
        // and 4."
        let t = paper_transducer();
        let a = t.classify_name(b"a");
        let s1 = t.initial();
        let s2 = t.step(s1, a);
        // The sink (paper state 0).
        let b = t.classify_name(b"b");
        let sink = t.step(s1, b);

        // State 2 under </a>: only state 1 can be popped.
        assert_eq!(t.pop_sources(s2, a), &[s1]);
        // The sink under </a>: the four states whose a-transition leads to the
        // sink (all states except state 1).
        let mut from_sink: Vec<StateId> = t.pop_sources(sink, a).to_vec();
        from_sink.sort_unstable();
        let mut expected: Vec<StateId> = (0..t.num_states()).filter(|&s| s != s1).collect();
        expected.sort_unstable();
        assert_eq!(from_sink, expected);
        // Every other state has no pop transition under </a>.
        for s in 0..t.num_states() {
            if s != s2 && s != sink {
                assert!(t.pop_sources(s, a).is_empty(), "state {s} must have no </a> pop");
            }
        }
    }

    #[test]
    fn pop_sources_cover_every_push() {
        let t = Transducer::from_queries(&["/a/b/c", "//k", "/a//d"]).unwrap();
        for z in 0..t.num_states() {
            for sym in 0..t.num_symbols() {
                let q = t.step(z, Symbol(sym as u32));
                assert!(
                    t.pop_sources(q, Symbol(sym as u32)).contains(&z),
                    "push {z} --{sym}--> {q} must be invertible"
                );
            }
        }
    }

    #[test]
    fn classify_name_falls_back_to_other() {
        let t = paper_transducer();
        assert_eq!(t.classify_name(b"zzz"), OTHER_SYMBOL);
        assert_ne!(t.classify_name(b"a"), OTHER_SYMBOL);
    }

    #[test]
    fn attribute_and_text_classification() {
        let t = Transducer::from_queries(&["/a/@id", "/a/text(xyz)"]).unwrap();
        assert!(t.needs_full_events());
        assert!(t.classify_attr(b"id").is_some());
        assert!(t.classify_attr(b"other").is_none());
        assert!(t.classify_text(b"xyz").is_some());
        assert!(t.classify_text(b"nope").is_none());
        let plain = paper_transducer();
        assert!(!plain.needs_full_events());
        assert!(plain.classify_attr(b"id").is_none());
        assert!(plain.classify_text(b"xyz").is_none());
    }

    #[test]
    fn table_bytes_is_positive_and_grows_with_queries() {
        let small = Transducer::from_queries(&["/a/b"]).unwrap();
        let large =
            Transducer::from_queries(&["/a/b/c/d", "//x//y//z", "/p/q/r/s/t", "/m/n/o"]).unwrap();
        assert!(small.table_bytes() > 0);
        assert!(large.table_bytes() > small.table_bytes());
    }
}
