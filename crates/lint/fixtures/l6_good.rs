//! L6 fixture: every `extern "C"` return value is consumed or the call is
//! explicitly waived.

extern "C" {
    fn close(fd: i32) -> i32;
}

pub fn close_checked(fd: i32) -> std::io::Result<()> {
    // SAFETY: fd is owned by the caller (fixture prose).
    let rc = unsafe { close(fd) };
    if rc == 0 {
        Ok(())
    } else {
        Err(std::io::Error::last_os_error())
    }
}

pub fn close_waived(fd: i32) {
    // SAFETY: fd is owned by the caller (fixture prose).
    // FFI-OK: double-close is the only failure and the fd is being abandoned.
    unsafe { close(fd) };
}
