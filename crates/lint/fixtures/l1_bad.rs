//! L1 fixture: an `unsafe` block with no `// SAFETY:` rationale.
//! (This directory is excluded from the workspace scan; fixtures are fed to
//! the checker explicitly by `crates/lint/tests/fixtures.rs` under synthetic
//! library paths.)

pub fn read_first(p: *const u8) -> u8 {
    unsafe { p.read() }
}
