//! L6 fixture: an `extern "C"` call whose return value is dropped on the
//! floor (bare statement position).

extern "C" {
    fn close(fd: i32) -> i32;
}

pub fn close_quietly(fd: i32) {
    // SAFETY: fd is owned by the caller (fixture prose).
    unsafe { close(fd) };
}
