//! L1 fixture: every `unsafe` block carries a `// SAFETY:` rationale,
//! either on the preceding comment block or on the same line.

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is non-null, aligned, and valid
    // for reads (fixture prose — nothing here runs).
    unsafe { p.read() }
}

pub fn read_inline(p: *const u8) -> u8 {
    unsafe { p.read() } // SAFETY: caller contract, as above.
}
