//! L5 fixture: narrowing goes through `try_from`, is justified in place, or
//! is a widening cast (always allowed).

pub fn frame_len(total: u64) -> Option<u32> {
    u32::try_from(total).ok()
}

pub fn clamped(total: u64) -> u32 {
    // CAST-OK: clamped to u32::MAX on the same expression.
    total.min(u32::MAX as u64) as u32
}

pub fn widen(b: u8) -> u64 {
    b as u64
}
