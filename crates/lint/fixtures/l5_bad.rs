//! L5 fixture: bare `as` numeric narrowing on a wire-path file.

pub fn frame_len(total: u64) -> u32 {
    total as u32
}

pub fn flag_byte(bits: u16) -> u8 {
    bits as u8
}
