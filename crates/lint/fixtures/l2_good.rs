//! L2 fixture: each `Ordering::Relaxed` is either justified in place or the
//! file would live on the allowlist (`telemetry.rs`/`stats.rs` — the test
//! feeds this same content under both kinds of path).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // RELAXED-OK: monotonic stat counter; orders nothing.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Release);
}
