//! L2 fixture: `Ordering::Relaxed` outside the telemetry/stats allowlist
//! with no `// RELAXED-OK:` justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
