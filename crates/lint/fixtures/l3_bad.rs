//! L3 fixture: `.unwrap()` / `.expect()` in non-test library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parsed(s: &str) -> u32 {
    s.parse().expect("caller promised digits")
}
