//! L4 fixture: raw `Mutex::lock` / `Condvar::wait` in runtime code instead
//! of the `lock_recover` / `wait_recover` poison-recovery helpers.

use std::sync::{Condvar, Mutex, MutexGuard};

pub fn drain(queue: &Mutex<Vec<u32>>) -> Vec<u32> {
    let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
    std::mem::take(&mut *guard)
}

pub fn park<'a>(cv: &Condvar, guard: MutexGuard<'a, Vec<u32>>) -> MutexGuard<'a, Vec<u32>> {
    cv.wait(guard).unwrap_or_else(|p| p.into_inner())
}
