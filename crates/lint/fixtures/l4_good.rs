//! L4 fixture: lock traffic goes through the recovery helpers; the helpers
//! themselves carry the `// LOCK-OK:` waiver.

use std::sync::{Mutex, MutexGuard};

fn lock_recover<T>(mutex: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    // LOCK-OK: this is the fixture's stand-in recover helper (rule L4).
    match mutex.lock() {
        Ok(guard) => (guard, false),
        Err(poison) => (poison.into_inner(), true),
    }
}

pub fn drain(queue: &Mutex<Vec<u32>>) -> Vec<u32> {
    let (mut guard, _poisoned) = lock_recover(queue);
    std::mem::take(&mut *guard)
}
