//! L3 fixture: unwraps are either waived with a reason, live in a test
//! region, or avoided entirely.

pub fn first(xs: &[u32]) -> u32 {
    // UNWRAP-OK: callers uphold the non-empty contract (fixture prose).
    *xs.first().unwrap()
}

pub fn first_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
