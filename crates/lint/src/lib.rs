//! `ppt-lint` — the workspace invariant checker.
//!
//! A token-level scanner over the workspace's Rust sources enforcing the
//! project invariants that `rustc` and clippy cannot see — the conventions
//! the hand-rolled concurrency core (raw `poll(2)` FFI, seqlock-bracketed
//! stats, relaxed-atomic telemetry) depends on for correctness:
//!
//! | id | rule |
//! |----|------|
//! | L1 | every `unsafe` block/fn/impl is preceded by a `// SAFETY:` comment |
//! | L2 | `Ordering::Relaxed` only in allowlisted files (`telemetry.rs`, `stats.rs`) — elsewhere state Acquire/Release/SeqCst or justify with `// RELAXED-OK:` |
//! | L3 | no `.unwrap()` / `.expect()` in non-test library code (justify with `// UNWRAP-OK:`) |
//! | L4 | in `ppt-runtime`, `Mutex::lock()` / `Condvar::wait*()` go through `lock_recover` / `wait_recover` (justify with `// LOCK-OK:`) |
//! | L5 | no bare `as` numeric narrowing in the wire/serve/reactor paths — use `try_from` (justify with `// CAST-OK:`) |
//! | L6 | every `extern "C"` FFI call's return value is checked (justify with `// FFI-OK:`) |
//!
//! A justification comment counts when it sits on the offending line or in
//! the contiguous comment block immediately above it. The generic waiver
//! `// ppt-lint: allow(Lx)` is accepted in the same positions.
//!
//! Deliberately excluded from the scan: `target/` (build output), `shims/`
//! (offline stand-ins for external crates — we do not lint vendored
//! third-party API surfaces), and any `fixtures/` directory (lint test
//! inputs contain deliberate violations).
//!
//! The checker lints itself: `crates/lint/src` is ordinary library code to
//! every rule above.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules & diagnostics
// ---------------------------------------------------------------------------

/// A lint rule identifier (`L1`..`L6`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    L1,
    L2,
    L3,
    L4,
    L5,
    L6,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 6] = [Rule::L1, Rule::L2, Rule::L3, Rule::L4, Rule::L5, Rule::L6];

    /// The rule-specific justification marker that waives a violation.
    pub fn marker(self) -> &'static str {
        match self {
            Rule::L1 => "SAFETY:",
            Rule::L2 => "RELAXED-OK:",
            Rule::L3 => "UNWRAP-OK:",
            Rule::L4 => "LOCK-OK:",
            Rule::L5 => "CAST-OK:",
            Rule::L6 => "FFI-OK:",
        }
    }

    /// One-line rule description for `ppt-lint rules` and diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::L1 => "`unsafe` must be preceded by a `// SAFETY:` comment",
            Rule::L2 => {
                "Ordering::Relaxed only in telemetry.rs/stats.rs; elsewhere use \
                 Acquire/Release/SeqCst or justify with `// RELAXED-OK:`"
            }
            Rule::L3 => {
                "no .unwrap()/.expect() in non-test library code; justify with `// UNWRAP-OK:`"
            }
            Rule::L4 => {
                "in ppt-runtime, Mutex::lock()/Condvar::wait*() must go through \
                 lock_recover/wait_recover; justify with `// LOCK-OK:`"
            }
            Rule::L5 => {
                "no bare `as` numeric narrowing in wire/serve/reactor paths — use \
                 try_from or justify with `// CAST-OK:`"
            }
            Rule::L6 => {
                "every extern \"C\" call's return value must be checked; justify \
                 with `// FFI-OK:`"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
        })
    }
}

/// One reported violation: `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: PathBuf,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {} (waive with `// {} <why>`)",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.rule.marker()
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// A source token. Comment text is kept out-of-band (per line) so waiver
/// lookups stay cheap; literal *content* matters only for strings (to
/// recognise `extern "C"`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    /// Any single punctuation character (`.`/`:`/`{`/…).
    Sym(char),
    /// String literal (regular, raw, byte, raw-byte); payload is the
    /// unquoted text, truncated — only ever compared against `"C"`.
    Str(String),
    /// Char literal, numeric literal, or lifetime — content irrelevant.
    Opaque,
}

#[derive(Debug, Clone)]
struct Token {
    line: u32,
    kind: TokKind,
}

/// Lexed file: token stream plus the comment text found on each line.
struct Lexed {
    tokens: Vec<Token>,
    /// line number → concatenated comment text on that line.
    comments: BTreeMap<u32, String>,
    /// Lines that carry at least one non-comment token.
    code_lines: BTreeSet<u32>,
}

fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments: BTreeMap<u32, String> = BTreeMap::new();
    let mut code_lines = BTreeSet::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let mut push_comment = |line: u32, text: &str| {
        let slot = comments.entry(line).or_default();
        slot.push(' ');
        slot.push_str(text);
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                push_comment(line, &src[start..i]);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; text attributed to every line spanned.
                let mut depth = 1usize;
                i += 2;
                let mut seg_start = i;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        push_comment(line, &src[seg_start..i]);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push_comment(line, &src[seg_start..i.min(bytes.len())]);
            }
            b'"' => {
                let (text, end, newlines) = scan_string(src, i);
                tokens.push(Token { line, kind: TokKind::Str(text) });
                code_lines.insert(line);
                line += newlines;
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let start = i;
                // Skip the prefix (r, b, br, rb) and any `#`s, then scan from
                // the quote; raw strings have no escapes — find the matching
                // `"###…` terminator.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    if hashes == 0 && !src[start..j].contains('r') {
                        // Plain byte string `b"…"` — escapes apply.
                        let (text, end, newlines) = scan_string(src, j);
                        tokens.push(Token { line, kind: TokKind::Str(text) });
                        code_lines.insert(line);
                        line += newlines;
                        i = end;
                    } else {
                        j += 1;
                        let body_start = j;
                        let terminator: String =
                            std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                        let rel = src[j..].find(&terminator).unwrap_or(src.len() - j);
                        let body = &src[body_start..j + rel];
                        tokens.push(Token {
                            line,
                            kind: TokKind::Str(body.chars().take(16).collect()),
                        });
                        code_lines.insert(line);
                        line += body.matches('\n').count() as u32;
                        i = j + rel + terminator.len();
                    }
                } else {
                    // Just an identifier starting with r/b.
                    let (ident, end) = scan_ident(src, i);
                    tokens.push(Token { line, kind: TokKind::Ident(ident) });
                    code_lines.insert(line);
                    i = end;
                }
            }
            b'\'' => {
                // Lifetime/label vs char literal.
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                let after = bytes.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    // Lifetime: consume ident chars.
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token { line, kind: TokKind::Opaque });
                    code_lines.insert(line);
                } else {
                    // Char literal: consume to closing quote, honouring \-escape.
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2;
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else if i < bytes.len() {
                        i += 1;
                    }
                    if bytes.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    tokens.push(Token { line, kind: TokKind::Opaque });
                    code_lines.insert(line);
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())))
                {
                    i += 1;
                }
                tokens.push(Token { line, kind: TokKind::Opaque });
                code_lines.insert(line);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let (ident, end) = scan_ident(src, i);
                tokens.push(Token { line, kind: TokKind::Ident(ident) });
                code_lines.insert(line);
                i = end;
            }
            c => {
                tokens.push(Token { line, kind: TokKind::Sym(c as char) });
                code_lines.insert(line);
                i += 1;
            }
        }
    }
    Lexed { tokens, comments, code_lines }
}

/// Scans a `"…"` literal starting at the opening quote. Returns the
/// (truncated) body text, the index one past the closing quote, and how many
/// newlines the literal spans.
fn scan_string(src: &str, open: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut i = open + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let body: String = src[open + 1..i.saturating_sub(1).max(open + 1)].chars().take(16).collect();
    (body, i, newlines)
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_ident(src: &str, start: usize) -> (String, usize) {
    let bytes = src.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    (src[start..i].to_string(), i)
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// What kind of source a file is, derived from its workspace-relative path.
/// Controls which rules apply (see the module docs for the matrix).
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Library code: under a crate's `src/` (or the workspace root `src/`).
    pub library: bool,
    /// Inside `crates/runtime/src/` — the L4 lock-discipline scope.
    pub runtime_src: bool,
    /// One of the L5 cast-audited files (`wire.rs`/`serve.rs`/`reactor.rs`
    /// in the runtime crate).
    pub l5_scoped: bool,
    /// On the L2 `Ordering::Relaxed` allowlist (`telemetry.rs`, `stats.rs`).
    pub relaxed_allowlisted: bool,
    /// Under a `tests/`, `benches/` or `examples/` directory.
    pub test_context: bool,
}

impl FileClass {
    /// Classifies `path`, which should be workspace-relative (absolute paths
    /// work too; only the components matter).
    pub fn of(path: &Path) -> FileClass {
        let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
        let has = |name: &str| comps.contains(&name);
        let base = path.file_name().and_then(|b| b.to_str()).unwrap_or("");
        let test_context = has("tests") || has("benches") || has("examples");
        let library = has("src") && !test_context;
        let runtime_src = library && has("runtime");
        FileClass {
            library,
            runtime_src,
            l5_scoped: runtime_src && matches!(base, "wire.rs" | "serve.rs" | "reactor.rs"),
            relaxed_allowlisted: matches!(base, "telemetry.rs" | "stats.rs"),
            test_context,
        }
    }
}

// ---------------------------------------------------------------------------
// Checking
// ---------------------------------------------------------------------------

/// A parsed source file ready for rule evaluation.
pub struct SourceFile {
    path: PathBuf,
    class: FileClass,
    lexed: Lexed,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile").field("path", &self.path).finish_non_exhaustive()
    }
}

impl SourceFile {
    /// Lexes `src` and classifies it by `path`.
    pub fn parse(path: impl Into<PathBuf>, src: &str) -> SourceFile {
        let path = path.into();
        let class = FileClass::of(&path);
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        SourceFile { path, class, lexed, in_test }
    }

    fn tok(&self, i: usize) -> Option<&TokKind> {
        self.lexed.tokens.get(i).map(|t| &t.kind)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(self.tok(i), Some(TokKind::Ident(id)) if id == name)
    }

    fn is_sym(&self, i: usize, c: char) -> bool {
        matches!(self.tok(i), Some(TokKind::Sym(s)) if *s == c)
    }

    /// Index of the first token of the statement containing token `i`
    /// (the token after the previous `;`/`{`/`}`, or 0).
    fn stmt_start(&self, i: usize) -> usize {
        let mut j = i;
        while j > 0 {
            match self.tok(j - 1) {
                Some(TokKind::Sym(';' | '{' | '}')) => break,
                _ => j -= 1,
            }
        }
        j
    }

    /// True when the statement containing token `i` starts with `use`
    /// (imports must not trip L2/L5).
    fn in_use_statement(&self, i: usize) -> bool {
        self.is_ident(self.stmt_start(i), "use")
    }

    /// True when line `line` carries a waiver for `rule`: the rule's marker
    /// or a generic `ppt-lint: allow(Lx)`, on the line itself or in the
    /// contiguous pure-comment block immediately above.
    fn waived(&self, rule: Rule, line: u32) -> bool {
        let hit = |l: u32| {
            self.lexed.comments.get(&l).is_some_and(|text| {
                text.contains(rule.marker()) || text.contains(&format!("ppt-lint: allow({rule})"))
            })
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.lexed.code_lines.contains(&l) {
                return false; // a code line ends the comment block
            }
            if self.lexed.comments.contains_key(&l) {
                if hit(l) {
                    return true;
                }
            } else {
                return false; // blank line ends the comment block
            }
        }
        false
    }

    /// Waiver lookup for the violation at token `i`: the token's own line,
    /// or — for multi-line statements where the justification sits above the
    /// statement head — the statement's first line.
    fn waived_at(&self, rule: Rule, i: usize) -> bool {
        let line = self.lexed.tokens[i].line;
        if self.waived(rule, line) {
            return true;
        }
        let start_line = self.lexed.tokens[self.stmt_start(i)].line;
        start_line != line && self.waived(rule, start_line)
    }
}

/// Marks the token ranges covered by `#[test]`-ish attributes (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`) and the item that follows each —
/// to the matching close brace of the item's body, or to the terminating
/// semicolon for body-less items. `cfg(not(test))` is *not* a test region.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let is_sym = |i: usize, c: char| matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Sym(s)) if *s == c);

    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_sym(i, '#') && (is_sym(i + 1, '[') || (is_sym(i + 1, '!') && is_sym(i + 2, '[')))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = if is_sym(i + 1, '!') { i + 3 } else { i + 2 };
        let mut depth = 1usize; // inside `[`
        let mut saw_test = false;
        let mut saw_not = false;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokKind::Sym('[' | '(') => depth += 1,
                TokKind::Sym(']' | ')') => depth -= 1,
                TokKind::Ident(id) if id == "test" => saw_test = true,
                TokKind::Ident(id) if id == "not" => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        while is_sym(j, '#') && is_sym(j + 1, '[') {
            let mut d = 1usize;
            j += 2;
            while j < tokens.len() && d > 0 {
                match &tokens[j].kind {
                    TokKind::Sym('[') => d += 1,
                    TokKind::Sym(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Consume the item: ends at `;` before any body, else at the close
        // of the first top-level `{…}`. `(`/`[` nesting is tracked so a `;`
        // inside `[u8; 4]` doesn't end the item early.
        let mut paren = 0isize;
        let mut end = j;
        while end < tokens.len() {
            match &tokens[end].kind {
                TokKind::Sym('(' | '[') => paren += 1,
                TokKind::Sym(')' | ']') => paren -= 1,
                TokKind::Sym(';') if paren == 0 => {
                    end += 1;
                    break;
                }
                TokKind::Sym('{') if paren == 0 => {
                    let mut braces = 1usize;
                    end += 1;
                    while end < tokens.len() && braces > 0 {
                        match &tokens[end].kind {
                            TokKind::Sym('{') => braces += 1,
                            TokKind::Sym('}') => braces -= 1,
                            _ => {}
                        }
                        end += 1;
                    }
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for flag in in_test.iter_mut().take(end.min(tokens.len())).skip(attr_start) {
            *flag = true;
        }
        i = end;
    }
    in_test
}

/// Collects the names declared inside `extern "C" { … }` blocks.
fn collect_ffi_names(files: &[SourceFile]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for f in files {
        let toks = &f.lexed.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            let is_extern_c = f.is_ident(i, "extern")
                && matches!(f.tok(i + 1), Some(TokKind::Str(s)) if s == "C");
            if is_extern_c {
                // Find the block open (attributes/cfgs may intervene).
                let mut j = i + 2;
                while j < toks.len() && !f.is_sym(j, '{') && !f.is_sym(j, ';') {
                    j += 1;
                }
                if f.is_sym(j, '{') {
                    let mut depth = 1usize;
                    j += 1;
                    while j < toks.len() && depth > 0 {
                        match &toks[j].kind {
                            TokKind::Sym('{') => depth += 1,
                            TokKind::Sym('}') => depth -= 1,
                            TokKind::Ident(id) if id == "fn" => {
                                if let Some(TokKind::Ident(name)) = f.tok(j + 1) {
                                    names.insert(name.clone());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
    }
    names
}

/// Integer types `as`-casts to which are treated as potentially narrowing
/// on the wire/serve/reactor paths (L5). Widening-only targets (`u64`,
/// `u128`, `i64`, `i128`, `f64`) are allowed.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Runs every rule over the parsed `files` (two passes: FFI-name
/// collection, then per-file checks). Diagnostics come back sorted by
/// path/line/rule.
pub fn check_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let ffi_names = collect_ffi_names(files);
    let mut out = Vec::new();
    for f in files {
        check_one(f, &ffi_names, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

fn check_one(f: &SourceFile, ffi_names: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let toks = &f.lexed.tokens;
    let mut report = |rule: Rule, i: usize, message: String| {
        if !f.waived_at(rule, i) {
            out.push(Diagnostic { path: f.path.clone(), line: toks[i].line, rule, message });
        }
    };

    for i in 0..toks.len() {
        let in_test = f.in_test[i];

        // L1 — SAFETY comment on every `unsafe` (everywhere, tests included).
        if f.is_ident(i, "unsafe") {
            // `unsafe` in a fn-pointer/trait position (`unsafe fn` item decl
            // inside extern blocks is covered too — cheap and uniform).
            report(Rule::L1, i, "`unsafe` without a `// SAFETY:` comment".to_string());
        }

        // L2 — Relaxed allowlist (library code outside test regions).
        if f.is_ident(i, "Relaxed")
            && !f.class.relaxed_allowlisted
            && !f.class.test_context
            && !in_test
            && !f.in_use_statement(i)
        {
            report(
                Rule::L2,
                i,
                "Ordering::Relaxed outside telemetry.rs/stats.rs — state \
                 Acquire/Release/SeqCst or justify"
                    .to_string(),
            );
        }

        // L3 — unwrap/expect in non-test library code.
        if f.class.library
            && !in_test
            && f.is_sym(i, '.')
            && (f.is_ident(i + 1, "unwrap") || f.is_ident(i + 1, "expect"))
            && f.is_sym(i + 2, '(')
        {
            let which = match f.tok(i + 1) {
                Some(TokKind::Ident(id)) => id.clone(),
                _ => String::new(),
            };
            report(Rule::L3, i, format!(".{which}() in non-test library code"));
        }

        // L4 — raw lock/wait in ppt-runtime library code.
        if f.class.runtime_src
            && !in_test
            && f.is_sym(i, '.')
            && f.is_sym(i + 2, '(')
            && (f.is_ident(i + 1, "lock")
                || f.is_ident(i + 1, "wait")
                || f.is_ident(i + 1, "wait_timeout")
                || f.is_ident(i + 1, "wait_while"))
        {
            let which = match f.tok(i + 1) {
                Some(TokKind::Ident(id)) => id.clone(),
                _ => String::new(),
            };
            report(
                Rule::L4,
                i,
                format!(".{which}() bypasses lock_recover/wait_recover poison handling"),
            );
        }

        // L5 — bare `as` narrowing on the wire/serve/reactor paths.
        if f.class.l5_scoped && !in_test && f.is_ident(i, "as") && !f.in_use_statement(i) {
            if let Some(TokKind::Ident(target)) = f.tok(i + 1) {
                if NARROW_TARGETS.contains(&target.as_str()) {
                    report(
                        Rule::L5,
                        i,
                        format!("bare `as {target}` numeric narrowing — use try_from"),
                    );
                }
            }
        }

        // L6 — discarded extern "C" return value.
        if let Some(TokKind::Ident(name)) = f.tok(i) {
            if ffi_names.contains(name)
                && f.is_sym(i + 1, '(')
                && !f.is_ident(i.wrapping_sub(1), "fn")
            {
                // Walk back over `unsafe {` wrappers to the preceding
                // statement context; a call in statement position discards
                // its result.
                let mut j = i;
                while j >= 2 && f.is_sym(j - 1, '{') && f.is_ident(j - 2, "unsafe") {
                    j -= 2;
                }
                let discarded =
                    j == 0 || matches!(f.tok(j - 1), Some(TokKind::Sym(';' | '{' | '}')));
                if discarded {
                    report(
                        Rule::L6,
                        i,
                        format!("return value of extern \"C\" `{name}()` is discarded"),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "shims", "fixtures"];

/// Recursively collects the workspace's `.rs` files under `root`, skipping
/// `SKIP_DIRS`. Paths come back workspace-relative and sorted.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Reads, parses and checks the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for rel in workspace_sources(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(check_files(&files))
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_str(path: &str, src: &str) -> Vec<Diagnostic> {
        check_files(&[SourceFile::parse(path, src)])
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    const LIB: &str = "crates/x/src/lib.rs";

    #[test]
    fn l1_unsafe_needs_safety() {
        let bad = "fn f() { let p = 0 as *const u8; unsafe { p.read() }; }";
        assert_eq!(rules_of(&check_str(LIB, bad)), vec![Rule::L1]);
        let good = "fn f(p: *const u8) {\n    // SAFETY: p is valid for reads.\n    unsafe { p.read() };\n}";
        assert!(check_str(LIB, good).is_empty());
        let same_line = "fn f(p: *const u8) { unsafe { p.read() }; // SAFETY: valid\n}";
        assert!(check_str(LIB, same_line).is_empty());
    }

    #[test]
    fn l1_comment_block_may_span_lines() {
        let good = "fn f(p: *const u8) {\n    // SAFETY: p is valid,\n    // and aligned.\n    unsafe { p.read() };\n}";
        assert!(check_str(LIB, good).is_empty());
        let interrupted =
            "fn f(p: *const u8) {\n    // SAFETY: stale, detached\n    let q = p;\n    unsafe { q.read() };\n}";
        assert_eq!(rules_of(&check_str(LIB, interrupted)), vec![Rule::L1]);
    }

    #[test]
    fn l2_relaxed_allowlist() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        assert_eq!(rules_of(&check_str(LIB, bad)), vec![Rule::L2]);
        // Allowlisted files pass.
        assert!(check_str("crates/runtime/src/telemetry.rs", bad).is_empty());
        assert!(check_str("crates/runtime/src/stats.rs", bad).is_empty());
        // Justified passes.
        let good = "fn f(a: &AtomicU64) {\n    // RELAXED-OK: monotonic counter, no ordering needed.\n    a.load(Ordering::Relaxed);\n}";
        assert!(check_str(LIB, good).is_empty());
        // Imports never trip it.
        assert!(check_str(LIB, "use std::sync::atomic::Ordering::Relaxed;").is_empty());
        // Test modules never trip it.
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}";
        assert!(check_str(LIB, in_test).is_empty());
    }

    #[test]
    fn l3_unwrap_expect() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&check_str(LIB, bad)), vec![Rule::L3]);
        let bad2 = "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }";
        assert_eq!(rules_of(&check_str(LIB, bad2)), vec![Rule::L3]);
        // unwrap_or & friends are fine.
        assert!(check_str(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
        // Tests and test dirs are exempt.
        assert!(check_str(LIB, "#[test]\nfn t() { Some(1).unwrap(); }").is_empty());
        assert!(check_str("crates/x/tests/t.rs", bad).is_empty());
        assert!(check_str("crates/x/examples/e.rs", bad).is_empty());
        // Waived passes.
        let good = "fn f(x: Option<u32>) -> u32 {\n    // UNWRAP-OK: x checked Some by caller contract.\n    x.unwrap()\n}";
        assert!(check_str(LIB, good).is_empty());
    }

    #[test]
    fn l4_lock_discipline_scoped_to_runtime() {
        let bad = "fn f(m: &Mutex<u32>) { let _ = m.lock(); }";
        assert_eq!(rules_of(&check_str("crates/runtime/src/pool.rs", bad)), vec![Rule::L4]);
        // Other crates are out of scope.
        assert!(check_str("crates/core/src/engine.rs", bad).is_empty());
        let wait = "fn f(cv: &Condvar, g: Guard) { let _ = cv.wait(g); }";
        assert_eq!(rules_of(&check_str("crates/runtime/src/pool.rs", wait)), vec![Rule::L4]);
        let ok = "fn f(m: &Mutex<u32>) {\n    // LOCK-OK: the recover helper itself.\n    let _ = m.lock();\n}";
        assert!(check_str("crates/runtime/src/pool.rs", ok).is_empty());
    }

    #[test]
    fn l5_cast_narrowing_scoped() {
        let bad = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(rules_of(&check_str("crates/runtime/src/wire.rs", bad)), vec![Rule::L5]);
        assert_eq!(rules_of(&check_str("crates/runtime/src/serve.rs", bad)), vec![Rule::L5]);
        assert_eq!(rules_of(&check_str("crates/runtime/src/reactor.rs", bad)), vec![Rule::L5]);
        // Widening targets and other files are fine.
        assert!(
            check_str("crates/runtime/src/wire.rs", "fn f(x: u8) -> u64 { x as u64 }").is_empty()
        );
        assert!(check_str("crates/runtime/src/session.rs", bad).is_empty());
        let ok =
            "fn f(x: u64) -> u32 {\n    // CAST-OK: x < 2^32 by construction.\n    x as u32\n}";
        assert!(check_str("crates/runtime/src/wire.rs", ok).is_empty());
    }

    #[test]
    fn l6_ffi_return_checked() {
        let decl = "extern \"C\" {\n    fn poke(x: i32) -> i32;\n}\n";
        let bad = format!(
            "{decl}fn f() {{\n    // SAFETY: poke is harmless.\n    unsafe {{ poke(1) }};\n}}"
        );
        // The bare-statement call discards the return value.
        assert_eq!(rules_of(&check_str(LIB, &bad)), vec![Rule::L6]);
        let good = format!(
            "{decl}fn f() -> i32 {{\n    // SAFETY: poke is harmless.\n    let rc = unsafe {{ poke(1) }};\n    rc\n}}"
        );
        assert!(check_str(LIB, &good).is_empty());
        let matched = format!(
            "{decl}fn f() -> i32 {{\n    // SAFETY: poke is harmless.\n    match unsafe {{ poke(1) }} {{ rc => rc }}\n}}"
        );
        assert!(check_str(LIB, &matched).is_empty());
    }

    #[test]
    fn generic_waiver_allows_any_rule() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // ppt-lint: allow(L3) — proven Some above.\n    x.unwrap()\n}";
        assert!(check_str(LIB, src).is_empty());
        // A waiver for a different rule does not leak.
        let wrong = "fn f(x: Option<u32>) -> u32 {\n    // ppt-lint: allow(L2)\n    x.unwrap()\n}";
        assert_eq!(rules_of(&check_str(LIB, wrong)), vec![Rule::L3]);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() -> &'static str {\n    // mentions .unwrap( and Ordering::Relaxed and unsafe\n    \"contains .unwrap() and unsafe and Relaxed\"\n}";
        assert!(check_str(LIB, src).is_empty());
        let raw = "fn f() -> &'static str { r#\"has .unwrap() inside\"# }";
        assert!(check_str(LIB, raw).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&check_str(LIB, src)), vec![Rule::L3]);
    }

    #[test]
    fn test_region_ends_at_item_close() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let diags = check_str(LIB, src);
        assert_eq!(rules_of(&diags), vec![Rule::L3]);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn diagnostics_carry_location_and_render() {
        let diags = check_str(LIB, "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        let rendered = diags[0].to_string();
        assert!(rendered.contains("lib.rs:2"), "{rendered}");
        assert!(rendered.contains("L3"), "{rendered}");
        assert!(rendered.contains("UNWRAP-OK:"), "{rendered}");
    }
}
