//! `ppt-lint` CLI: `cargo run -p ppt-lint -- check [ROOT]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "ppt-lint — workspace invariant checker\n\
         \n\
         USAGE:\n\
         \x20   ppt-lint check [ROOT]   scan the workspace (default: enclosing workspace root)\n\
         \x20   ppt-lint rules          print the rule catalogue\n\
         \n\
         A nonzero exit (1) means violations were found; fix them or add a\n\
         justification comment (see `ppt-lint rules` for per-rule markers)."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in ppt_lint::Rule::ALL {
                println!("{rule}  [waiver: // {}]\n    {}\n", rule.marker(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = match args.get(1) {
                Some(path) => PathBuf::from(path),
                None => {
                    let cwd = match std::env::current_dir() {
                        Ok(cwd) => cwd,
                        Err(e) => {
                            eprintln!("ppt-lint: cannot resolve current dir: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    match ppt_lint::find_workspace_root(&cwd) {
                        Some(root) => root,
                        None => {
                            eprintln!("ppt-lint: no enclosing Cargo workspace found");
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            match ppt_lint::check_workspace(&root) {
                Ok(diags) if diags.is_empty() => {
                    println!("ppt-lint: workspace clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(diags) => {
                    for d in &diags {
                        println!("{d}");
                    }
                    println!("ppt-lint: {} violation(s)", diags.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("ppt-lint: scan failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
