//! Fixture tests: feed the checker known-bad and known-good source files
//! (from `crates/lint/fixtures/`, which the workspace scan skips) and pin
//! down exactly which rule fires where.
//!
//! Fixtures are parsed under *synthetic* paths, because several rules are
//! path-scoped (L4 to `crates/runtime/src/`, L5 to the wire/serve/reactor
//! files, L2's allowlist to `telemetry.rs`/`stats.rs`): the same bytes must
//! fire in scope and stay silent out of scope.

use ppt_lint::{check_files, Rule, SourceFile};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Rules fired by `name` when parsed as if it lived at `as_path`.
fn fire(name: &str, as_path: &str) -> Vec<(Rule, u32)> {
    let src = fixture(name);
    check_files(&[SourceFile::parse(as_path, &src)]).into_iter().map(|d| (d.rule, d.line)).collect()
}

const LIB: &str = "crates/fixture/src/lib.rs";
const RUNTIME: &str = "crates/runtime/src/pool.rs";
const WIRE: &str = "crates/runtime/src/wire.rs";

#[test]
fn l1_fixtures() {
    assert_eq!(fire("l1_bad.rs", LIB), vec![(Rule::L1, 7)]);
    assert_eq!(fire("l1_good.rs", LIB), vec![]);
}

#[test]
fn l2_fixtures() {
    assert_eq!(fire("l2_bad.rs", LIB), vec![(Rule::L2, 7)]);
    assert_eq!(fire("l2_good.rs", LIB), vec![]);
    // The same unjustified content is fine on an allowlisted file.
    assert_eq!(fire("l2_bad.rs", "crates/runtime/src/telemetry.rs"), vec![]);
    assert_eq!(fire("l2_bad.rs", "crates/runtime/src/stats.rs"), vec![]);
}

#[test]
fn l3_fixtures() {
    assert_eq!(fire("l3_bad.rs", LIB), vec![(Rule::L3, 4), (Rule::L3, 8)]);
    assert_eq!(fire("l3_good.rs", LIB), vec![]);
    // Outside library code (a tests/ directory) the rule does not apply.
    assert_eq!(fire("l3_bad.rs", "crates/fixture/tests/t.rs"), vec![]);
}

#[test]
fn l4_fixtures() {
    assert_eq!(fire("l4_bad.rs", RUNTIME), vec![(Rule::L4, 7), (Rule::L4, 12)]);
    assert_eq!(fire("l4_good.rs", RUNTIME), vec![]);
    // The lock discipline is scoped to the runtime crate.
    assert_eq!(fire("l4_bad.rs", LIB), vec![]);
}

#[test]
fn l5_fixtures() {
    assert_eq!(fire("l5_bad.rs", WIRE), vec![(Rule::L5, 4), (Rule::L5, 8)]);
    assert_eq!(fire("l5_good.rs", WIRE), vec![]);
    // Only the wire/serve/reactor files are cast-audited.
    assert_eq!(fire("l5_bad.rs", "crates/runtime/src/session.rs"), vec![]);
    assert_eq!(fire("l5_bad.rs", LIB), vec![]);
}

#[test]
fn l6_fixtures() {
    assert_eq!(fire("l6_bad.rs", LIB), vec![(Rule::L6, 10)]);
    assert_eq!(fire("l6_good.rs", LIB), vec![]);
}

/// The bad fixtures double as a wholesale regression set: every rule fires
/// at least once across them, so a lexer or classifier regression that
/// silently disables a rule cannot pass.
#[test]
fn every_rule_fires_on_some_fixture() {
    let scoped = [
        ("l1_bad.rs", LIB),
        ("l2_bad.rs", LIB),
        ("l3_bad.rs", LIB),
        ("l4_bad.rs", RUNTIME),
        ("l5_bad.rs", WIRE),
        ("l6_bad.rs", LIB),
    ];
    let mut fired: Vec<Rule> =
        scoped.iter().flat_map(|(name, path)| fire(name, path)).map(|(rule, _)| rule).collect();
    fired.sort();
    fired.dedup();
    assert_eq!(fired, Rule::ALL.to_vec());
}
