//! The checker eats its own dog food: the workspace that ships `ppt-lint`
//! must scan clean, and the scan must actually cover the codebase (a
//! traversal regression that found zero files would also "pass").

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_scans_clean() {
    let root = workspace_root();
    let diags = ppt_lint::check_workspace(root).expect("workspace scan failed");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn scan_covers_the_workspace() {
    let root = workspace_root();
    let files = ppt_lint::workspace_sources(root).expect("workspace traversal failed");
    // The workspace has 8 product crates + the root crate; a scan that sees
    // fewer than 40 sources lost a directory.
    assert!(files.len() >= 42, "only {} sources found", files.len());
    let has = |suffix: &str| files.iter().any(|f| f.ends_with(suffix));
    assert!(has("crates/runtime/src/reactor.rs"), "reactor.rs not scanned");
    assert!(has("crates/lint/src/lib.rs"), "the linter must lint itself");
    // Vendored shims and deliberately-bad fixtures stay out of scope.
    assert!(!files.iter().any(|f| f.components().any(|c| c.as_os_str() == "shims")));
    assert!(!files.iter().any(|f| f.components().any(|c| c.as_os_str() == "fixtures")));
}
