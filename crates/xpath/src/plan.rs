//! The compiled form of a query set: basic sub-queries plus per-query filter
//! specifications.
//!
//! A [`QueryPlan`] is what the automaton crate consumes: its `subqueries` are
//! the basic (predicate-free, forward-axis-only) paths the transducer matches
//! natively, and each [`CompiledQuery`] records how the matches of those
//! sub-queries are recombined into the user's original query during the
//! filter phase (§3.2 phase iv).

use std::fmt;

/// Forward axis of a basic step (the only axes the transducer supports
/// natively).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicAxis {
    /// Direct child.
    Child,
    /// Any descendant.
    Descendant,
}

/// Node test of a basic step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BasicTest {
    /// Element name.
    Name(String),
    /// Any element.
    Wildcard,
    /// Attribute of the context element (matched against attribute events).
    Attribute(String),
    /// Character data equal to the string.
    Text(String),
}

impl fmt::Display for BasicTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicTest::Name(n) => write!(f, "{n}"),
            BasicTest::Wildcard => write!(f, "*"),
            BasicTest::Attribute(n) => write!(f, "@{n}"),
            BasicTest::Text(s) => write!(f, "text({s})"),
        }
    }
}

/// One step of a basic sub-query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BasicStep {
    /// Child or descendant.
    pub axis: BasicAxis,
    /// What the step selects.
    pub test: BasicTest,
}

impl BasicStep {
    /// Builder for a child step on an element name.
    pub fn child(name: &str) -> Self {
        BasicStep { axis: BasicAxis::Child, test: BasicTest::Name(name.into()) }
    }

    /// Builder for a descendant step on an element name.
    pub fn descendant(name: &str) -> Self {
        BasicStep { axis: BasicAxis::Descendant, test: BasicTest::Name(name.into()) }
    }
}

/// A basic sub-query: forward axes only, no predicates. This is the query
/// form of §2.2's grammar `P ::= /N | //N | P P`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SubQuery {
    /// Steps in order.
    pub steps: Vec<BasicStep>,
}

impl SubQuery {
    /// Creates a sub-query from steps.
    pub fn new(steps: Vec<BasicStep>) -> Self {
        SubQuery { steps }
    }

    /// Number of steps (the "rule length" of Fig 14).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the sub-query has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for SubQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step.axis {
                BasicAxis::Child => write!(f, "/")?,
                BasicAxis::Descendant => write!(f, "//")?,
            }
            write!(f, "{}", step.test)?;
        }
        Ok(())
    }
}

/// Boolean expression over sub-query indices, evaluated per anchor-element
/// occurrence during the filter phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateExpr {
    /// "this anchor occurrence contains at least one match of sub-query `i`".
    Sub(usize),
    /// Conjunction.
    And(Box<PredicateExpr>, Box<PredicateExpr>),
    /// Disjunction.
    Or(Box<PredicateExpr>, Box<PredicateExpr>),
    /// Negation.
    Not(Box<PredicateExpr>),
}

impl PredicateExpr {
    /// Evaluates the expression given a membership test for sub-query
    /// indices.
    pub fn eval(&self, has: &impl Fn(usize) -> bool) -> bool {
        match self {
            PredicateExpr::Sub(i) => has(*i),
            PredicateExpr::And(a, b) => a.eval(has) && b.eval(has),
            PredicateExpr::Or(a, b) => a.eval(has) || b.eval(has),
            PredicateExpr::Not(a) => !a.eval(has),
        }
    }

    /// All sub-query indices referenced by the expression.
    pub fn subqueries(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<usize>) {
        match self {
            PredicateExpr::Sub(i) => out.push(*i),
            PredicateExpr::And(a, b) | PredicateExpr::Or(a, b) => {
                a.collect(out);
                b.collect(out);
            }
            PredicateExpr::Not(a) => a.collect(out),
        }
    }
}

/// Filter specification for a rewritten predicate query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Sub-query matching the *anchor* element (the element the predicate is
    /// attached to, e.g. `/s/cs/c` for `/s/cs/c[a/d/t/k]/d`).
    pub anchor: usize,
    /// Predicate to evaluate for every anchor occurrence.
    pub predicate: PredicateExpr,
}

/// One user query after rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    /// The original query text.
    pub source: String,
    /// Sub-queries whose matches are this query's results (their union, for
    /// queries rewritten into alternative paths such as XPathMark B1).
    pub result_subqueries: Vec<usize>,
    /// Optional predicate filter.
    pub filter: Option<FilterSpec>,
    /// Every distinct sub-query attributed to this query (anchor + predicates
    /// + results). This is the "# sub-queries" column of Table 2.
    pub all_subqueries: Vec<usize>,
}

impl CompiledQuery {
    /// Number of distinct sub-queries this query was rewritten into
    /// (Table 2's "# sub-queries" column; 1 for queries run unchanged).
    pub fn subquery_count(&self) -> usize {
        self.all_subqueries.len()
    }

    /// `true` when the query needed rewriting (predicates or reverse axes).
    pub fn is_rewritten(&self) -> bool {
        self.filter.is_some() || self.all_subqueries.len() > 1
    }
}

/// The compiled query set: deduplicated basic sub-queries plus per-query
/// recombination information.
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// One entry per user query, in input order.
    pub queries: Vec<CompiledQuery>,
    /// Deduplicated basic sub-queries across all queries. Sub-query indices
    /// everywhere else refer to this list.
    pub subqueries: Vec<SubQuery>,
}

impl QueryPlan {
    /// Adds `sq` to the plan, returning its index (existing or new).
    pub fn add_subquery(&mut self, sq: SubQuery) -> usize {
        if let Some(i) = self.subqueries.iter().position(|s| *s == sq) {
            return i;
        }
        self.subqueries.push(sq);
        self.subqueries.len() - 1
    }

    /// Number of user queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of distinct basic sub-queries.
    pub fn subquery_count(&self) -> usize {
        self.subqueries.len()
    }

    /// All element names mentioned by any sub-query (used to build the symbol
    /// table of the automaton).
    pub fn element_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for sq in &self.subqueries {
            for step in &sq.steps {
                if let BasicTest::Name(n) = &step.test {
                    if !names.contains(&n.as_str()) {
                        names.push(n);
                    }
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subquery_display() {
        let sq = SubQuery::new(vec![
            BasicStep::child("a"),
            BasicStep::descendant("b"),
            BasicStep { axis: BasicAxis::Child, test: BasicTest::Wildcard },
        ]);
        assert_eq!(sq.to_string(), "/a//b/*");
    }

    #[test]
    fn plan_deduplicates_subqueries() {
        let mut plan = QueryPlan::default();
        let a = plan.add_subquery(SubQuery::new(vec![BasicStep::child("a")]));
        let b = plan.add_subquery(SubQuery::new(vec![BasicStep::child("b")]));
        let a2 = plan.add_subquery(SubQuery::new(vec![BasicStep::child("a")]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(plan.subquery_count(), 2);
    }

    #[test]
    fn predicate_expr_eval() {
        use PredicateExpr::*;
        // a and (b or c)
        let e = And(Box::new(Sub(0)), Box::new(Or(Box::new(Sub(1)), Box::new(Sub(2)))));
        assert!(e.eval(&|i| i == 0 || i == 1));
        assert!(e.eval(&|i| i == 0 || i == 2));
        assert!(!e.eval(&|i| i == 1 || i == 2));
        assert!(!e.eval(&|_| false));
        assert_eq!(e.subqueries(), vec![0, 1, 2]);
        let n = Not(Box::new(Sub(3)));
        assert!(n.eval(&|_| false));
        assert!(!n.eval(&|i| i == 3));
    }

    #[test]
    fn element_names_are_collected_once() {
        let mut plan = QueryPlan::default();
        plan.add_subquery(SubQuery::new(vec![BasicStep::child("a"), BasicStep::child("b")]));
        plan.add_subquery(SubQuery::new(vec![BasicStep::descendant("b"), BasicStep::child("c")]));
        assert_eq!(plan.element_names(), vec!["a", "b", "c"]);
    }
}
