//! Errors produced while parsing or rewriting XPath queries.

use std::fmt;

/// Parse or rewrite failure for an XPath query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// The query text could not be tokenised or parsed.
    Parse { query: String, pos: usize, message: String },
    /// The query parsed but uses a construct outside the supported subset
    /// (even after rewriting).
    Unsupported { query: String, message: String },
    /// An empty query string was supplied.
    Empty,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Parse { query, pos, message } => {
                write!(f, "cannot parse XPath query `{query}` at offset {pos}: {message}")
            }
            XPathError::Unsupported { query, message } => {
                write!(f, "XPath query `{query}` is not supported: {message}")
            }
            XPathError::Empty => write!(f, "empty XPath query"),
        }
    }
}

impl XPathError {
    /// The error rendered as a single line, safe to embed in a line-oriented
    /// wire protocol (the serving front-end's `ERR <message>` reply).
    ///
    /// [`XPathError::Parse`]/[`XPathError::Unsupported`] echo the query text
    /// back verbatim; a query containing `\r` or other control bytes would
    /// otherwise let a client fake extra protocol lines or scramble a
    /// terminal transcript. Control characters are replaced with spaces; the
    /// message content is unchanged otherwise.
    pub fn wire_message(&self) -> String {
        self.to_string().chars().map(|c| if c.is_control() { ' ' } else { c }).collect()
    }
}

impl std::error::Error for XPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_query_and_reason() {
        let e =
            XPathError::Parse { query: "/a[".into(), pos: 3, message: "unclosed predicate".into() };
        let s = e.to_string();
        assert!(s.contains("/a["));
        assert!(s.contains("unclosed predicate"));
        assert!(XPathError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn wire_message_is_one_clean_line() {
        let e = XPathError::Parse {
            query: "/a\r\nERR forged\u{7}[".into(),
            pos: 3,
            message: "unclosed predicate".into(),
        };
        let wire = e.wire_message();
        assert!(!wire.contains('\n') && !wire.contains('\r'), "{wire:?}");
        assert!(wire.chars().all(|c| !c.is_control()), "{wire:?}");
        assert!(wire.contains("unclosed predicate"));
    }
}
