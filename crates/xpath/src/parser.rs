//! Recursive-descent parser for the supported XPath subset.

use crate::ast::{Axis, NodeTest, Path, Predicate, Query, Step};
use crate::error::XPathError;

/// Parses one XPath query string.
///
/// # Examples
///
/// ```
/// use ppt_xpath::parse_query;
/// let q = parse_query("/s/cs/c[a/d/t/k]/d").unwrap();
/// assert_eq!(q.path.len(), 4);
/// assert!(q.path.has_predicates());
/// ```
pub fn parse_query(src: &str) -> Result<Query, XPathError> {
    let trimmed = src.trim();
    if trimmed.is_empty() {
        return Err(XPathError::Empty);
    }
    let mut p = Parser { src: trimmed, bytes: trimmed.as_bytes(), pos: 0 };
    let path = p.parse_absolute_path()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(Query { path, source: trimmed.to_string() })
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XPathError {
        XPathError::Parse {
            query: self.src.to_string(),
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Consumes a separator (`/` or `//`) and returns the implied axis.
    fn parse_separator(&mut self) -> Option<Axis> {
        if self.eat_str("//") {
            Some(Axis::Descendant)
        } else if self.eat(b'/') {
            Some(Axis::Child)
        } else {
            None
        }
    }

    fn parse_name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| {
            b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':'
        }) {
            // Stop before an axis separator `::` — names themselves may
            // contain a single ':' (namespaces) but not '::'.
            if self.bytes[self.pos] == b':' && self.bytes.get(self.pos + 1) == Some(&b':') {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Parses an optional explicit axis prefix (`parent::`, `ancestor::`,
    /// `descendant::`, `child::`), returning the axis it denotes.
    fn parse_axis_prefix(&mut self, default: Axis) -> Axis {
        for (name, axis) in [
            ("parent::", Axis::Parent),
            ("ancestor::", Axis::Ancestor),
            ("descendant-or-self::", Axis::Descendant),
            ("descendant::", Axis::Descendant),
            ("child::", Axis::Child),
        ] {
            if self.eat_str(name) {
                return axis;
            }
        }
        default
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, XPathError> {
        self.skip_ws();
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Ok(NodeTest::Wildcard)
            }
            Some(b'@') => {
                self.pos += 1;
                Ok(NodeTest::Attribute(self.parse_name()?))
            }
            Some(_) => {
                if self.starts_with("text(") {
                    self.pos += "text(".len();
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b')') {
                        self.pos += 1;
                    }
                    if !self.eat(b')') {
                        return Err(self.err("unterminated text() test"));
                    }
                    let content = self.src[start..self.pos - 1].trim();
                    let content = content.trim_matches(|c| c == '"' || c == '\'');
                    return Ok(NodeTest::Text(content.to_string()));
                }
                if self.starts_with(".") && !self.starts_with("..") {
                    // `.` appears in rewritten forms like `.//k`; treat a lone
                    // dot as selecting the context node, which as a node test
                    // we model as a wildcard "self" — callers normalise it.
                    self.pos += 1;
                    return Ok(NodeTest::Wildcard);
                }
                Ok(NodeTest::Name(self.parse_name()?))
            }
            None => Err(self.err("expected a node test")),
        }
    }

    fn parse_step(&mut self, sep_axis: Axis, allow_predicate: bool) -> Result<Step, XPathError> {
        let axis = self.parse_axis_prefix(sep_axis);
        let test = self.parse_node_test()?;
        let mut predicate = None;
        self.skip_ws();
        if self.peek() == Some(b'[') {
            if !allow_predicate {
                return Err(self.err("nested predicates are not supported"));
            }
            self.pos += 1;
            let pred = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.err("unclosed predicate, expected `]`"));
            }
            predicate = Some(pred);
        }
        Ok(Step { axis, test, predicate })
    }

    fn parse_absolute_path(&mut self) -> Result<Path, XPathError> {
        self.skip_ws();
        let mut steps = Vec::new();
        let first_sep =
            self.parse_separator().ok_or_else(|| self.err("query must start with `/` or `//`"))?;
        steps.push(self.parse_step(first_sep, true)?);
        loop {
            self.skip_ws();
            match self.parse_separator() {
                Some(axis) => steps.push(self.parse_step(axis, true)?),
                None => break,
            }
        }
        Ok(Path::new(steps))
    }

    /// Parses a relative path inside a predicate (no nested predicates).
    fn parse_relative_path(&mut self) -> Result<Path, XPathError> {
        self.skip_ws();
        let mut steps = Vec::new();
        // Leading `.//x` / `//x` / implicit child.
        let first_axis = if self.eat_str(".//") || self.eat_str("//") {
            Axis::Descendant
        } else {
            let _ = self.eat(b'.') && self.eat(b'/');
            Axis::Child
        };
        steps.push(self.parse_step(first_axis, false)?);
        loop {
            if self.eat_str("//") {
                steps.push(self.parse_step(Axis::Descendant, false)?);
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                steps.push(self.parse_step(Axis::Child, false)?);
            } else {
                break;
            }
        }
        Ok(Path::new(steps))
    }

    fn parse_or_expr(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.parse_and_expr()?;
        loop {
            self.skip_ws();
            if self.keyword("or") {
                let right = self.parse_and_expr()?;
                left = Predicate::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and_expr(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.parse_unary()?;
        loop {
            self.skip_ws();
            if self.keyword("and") {
                let right = self.parse_unary()?;
                left = Predicate::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// Consumes the keyword `kw` only when it is followed by a non-name byte
    /// (so a path step named `order` is not mistaken for `or`).
    fn keyword(&mut self, kw: &str) -> bool {
        if !self.starts_with(kw) {
            return false;
        }
        let after = self.bytes.get(self.pos + kw.len()).copied();
        let boundary = match after {
            None => true,
            Some(b) => !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-'),
        };
        if boundary {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_unary(&mut self) -> Result<Predicate, XPathError> {
        self.skip_ws();
        if self.keyword("not") {
            self.skip_ws();
            if !self.eat(b'(') {
                return Err(self.err("expected `(` after not"));
            }
            let inner = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat(b')') {
                return Err(self.err("unclosed `not(`"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat(b'(') {
            let inner = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat(b')') {
                return Err(self.err("unclosed `(` in predicate"));
            }
            return Ok(inner);
        }
        Ok(Predicate::Path(self.parse_relative_path()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeTest};

    fn names(path: &Path) -> Vec<String> {
        path.steps.iter().map(|s| s.test.to_string()).collect()
    }

    #[test]
    fn simple_child_path() {
        let q = parse_query("/a/b/c").unwrap();
        assert_eq!(names(&q.path), vec!["a", "b", "c"]);
        assert!(q.path.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn descendant_axes() {
        let q = parse_query("//c//k").unwrap();
        assert_eq!(q.path.steps[0].axis, Axis::Descendant);
        assert_eq!(q.path.steps[1].axis, Axis::Descendant);
        let q = parse_query("/s/cs/c//k").unwrap();
        assert_eq!(q.path.steps[3].axis, Axis::Descendant);
        assert_eq!(q.path.steps[2].axis, Axis::Child);
    }

    #[test]
    fn wildcard_and_attribute_and_text_tests() {
        let q = parse_query("/s/r/*/item/@id").unwrap();
        assert_eq!(q.path.steps[2].test, NodeTest::Wildcard);
        assert_eq!(q.path.steps[4].test, NodeTest::Attribute("id".into()));
        let q = parse_query("/a/text(hello)").unwrap();
        assert_eq!(q.path.steps[1].test, NodeTest::Text("hello".into()));
        let q = parse_query("/a/text('quoted')").unwrap();
        assert_eq!(q.path.steps[1].test, NodeTest::Text("quoted".into()));
    }

    #[test]
    fn predicate_with_relative_path() {
        let q = parse_query("/s/cs/c[a/d/t/k]/d").unwrap();
        let pred = q.path.steps[2].predicate.as_ref().unwrap();
        match pred {
            Predicate::Path(p) => assert_eq!(names(p), vec!["a", "d", "t", "k"]),
            _ => panic!("expected a single path predicate"),
        }
    }

    #[test]
    fn predicate_with_descendant_axis() {
        let q = parse_query("/s/cs/c[descendant::k]/d").unwrap();
        match q.path.steps[2].predicate.as_ref().unwrap() {
            Predicate::Path(p) => {
                assert_eq!(p.steps.len(), 1);
                assert_eq!(p.steps[0].axis, Axis::Descendant);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn boolean_predicates() {
        let q = parse_query("/s/ps/p[pr/g and pr/age]/n").unwrap();
        assert!(matches!(q.path.steps[2].predicate, Some(Predicate::And(_, _))));
        let q = parse_query("/s/ps/p[ph or h]/n").unwrap();
        assert!(matches!(q.path.steps[2].predicate, Some(Predicate::Or(_, _))));
    }

    #[test]
    fn nested_boolean_predicate_a8() {
        let q = parse_query("/s/ps/p[a and (ph or h) and (cc or pr)]/n").unwrap();
        let pred = q.path.steps[2].predicate.as_ref().unwrap();
        assert_eq!(pred.leaves().len(), 5);
    }

    #[test]
    fn parent_axis_in_predicate() {
        let q = parse_query("/s/r/*/item[parent::sa or parent::na]/name").unwrap();
        let pred = q.path.steps[3].predicate.as_ref().unwrap();
        let leaves = pred.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].steps[0].axis, Axis::Parent);
        assert_eq!(leaves[1].steps[0].axis, Axis::Parent);
    }

    #[test]
    fn ancestor_axis_as_location_step() {
        let q = parse_query("//k/ancestor::li/t/k").unwrap();
        assert_eq!(q.path.steps[1].axis, Axis::Ancestor);
        assert_eq!(q.path.steps[1].test, NodeTest::Name("li".into()));
        assert_eq!(q.path.len(), 4);
    }

    #[test]
    fn keyword_is_not_confused_with_names() {
        // Element names starting with `or`/`and` must not terminate the
        // predicate expression.
        let q = parse_query("/a[order and android]/b").unwrap();
        let pred = q.path.steps[0].predicate.as_ref().unwrap();
        let leaves = pred.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].steps[0].test, NodeTest::Name("order".into()));
        assert_eq!(leaves[1].steps[0].test, NodeTest::Name("android".into()));
    }

    #[test]
    fn not_predicate() {
        let q = parse_query("/a[not(b)]/c").unwrap();
        assert!(matches!(q.path.steps[0].predicate, Some(Predicate::Not(_))));
    }

    #[test]
    fn errors() {
        assert!(matches!(parse_query(""), Err(XPathError::Empty)));
        assert!(matches!(parse_query("   "), Err(XPathError::Empty)));
        assert!(parse_query("a/b").is_err(), "must start with /");
        assert!(parse_query("/a[b").is_err(), "unclosed predicate");
        assert!(parse_query("/a]").is_err(), "trailing junk");
        assert!(parse_query("/").is_err(), "missing node test");
        assert!(parse_query("/a[not(b]").is_err(), "unclosed not(");
        assert!(parse_query("/a[(b or c]").is_err(), "unclosed paren");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let q = parse_query("  /s/ps/p[ ph or h ]/n  ").unwrap();
        assert_eq!(q.path.len(), 4);
        assert_eq!(q.source, "/s/ps/p[ ph or h ]/n");
    }

    #[test]
    fn twitter_query_parses() {
        let q = parse_query("//status/coordinates/coordinates").unwrap();
        assert_eq!(q.path.steps[0].axis, Axis::Descendant);
        assert_eq!(names(&q.path), vec!["status", "coordinates", "coordinates"]);
    }
}
