//! Abstract syntax for the supported XPath subset.
//!
//! The grammar (extending §2.2 of the paper with the constructs needed for the
//! XPathMark workload) is, informally:
//!
//! ```text
//! Query     ::= Path
//! Path      ::= ( '/' | '//' ) Step ( ( '/' | '//' ) Step )*
//! Step      ::= AxisName? NodeTest Predicate?
//! AxisName  ::= 'parent::' | 'ancestor::' | 'descendant::'     (child is implicit)
//! NodeTest  ::= Name | '*' | '@' Name | 'text(' String ')'
//! Predicate ::= '[' OrExpr ']'
//! OrExpr    ::= AndExpr ( 'or' AndExpr )*
//! AndExpr   ::= Unary   ( 'and' Unary )*
//! Unary     ::= 'not' '(' OrExpr ')' | '(' OrExpr ')' | RelPath
//! RelPath   ::= Step ( ( '/' | '//' ) Step )*                  (relative, no predicates)
//! ```

use std::fmt;

/// Navigation axis of a [`Step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/name` — direct children.
    Child,
    /// `//name` or `descendant::name` — any descendant.
    Descendant,
    /// `parent::name` — only supported inside predicates (rewritten away).
    Parent,
    /// `ancestor::name` — only supported as a location step in the B2 form
    /// (rewritten away).
    Ancestor,
}

/// Node test of a [`Step`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// An element name.
    Name(String),
    /// `*` — any element.
    Wildcard,
    /// `@name` — an attribute of the context element.
    Attribute(String),
    /// `text(S)` — character data equal to `S` (the paper's `text(S)` test).
    Text(String),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::Attribute(n) => write!(f, "@{n}"),
            NodeTest::Text(s) => write!(f, "text({s})"),
        }
    }
}

/// Boolean predicate attached to a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Existence of a relative path below (or, for `parent::`, above) the
    /// context element.
    Path(Path),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (supported as an extension; not used by XPathMark A/B).
    Not(Box<Predicate>),
}

impl Predicate {
    /// Iterates over the leaf paths of the predicate tree.
    pub fn leaves(&self) -> Vec<&Path> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Path>) {
        match self {
            Predicate::Path(p) => out.push(p),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
            Predicate::Not(a) => a.collect_leaves(out),
        }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Navigation axis.
    pub axis: Axis,
    /// What the step selects.
    pub test: NodeTest,
    /// Optional predicate.
    pub predicate: Option<Predicate>,
}

impl Step {
    /// A plain child step selecting `name` (test helper / builder).
    pub fn child(name: &str) -> Step {
        Step { axis: Axis::Child, test: NodeTest::Name(name.to_string()), predicate: None }
    }

    /// A plain descendant step selecting `name`.
    pub fn descendant(name: &str) -> Step {
        Step { axis: Axis::Descendant, test: NodeTest::Name(name.to_string()), predicate: None }
    }
}

/// A sequence of steps. Absolute paths start from the document root; relative
/// paths (inside predicates) start from the context element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    /// The steps in order.
    pub steps: Vec<Step>,
}

impl Path {
    /// Creates a path from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// `true` when the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if any step carries a predicate.
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| s.predicate.is_some())
    }

    /// `true` if any step uses a reverse axis (`parent::` / `ancestor::`).
    pub fn has_reverse_axes(&self) -> bool {
        self.steps.iter().any(|s| matches!(s.axis, Axis::Parent | Axis::Ancestor))
    }
}

/// A parsed user query: the path plus its original source text (kept for
/// diagnostics and reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The parsed path.
    pub path: Path,
    /// The original query string.
    pub source: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_leaves_are_collected_in_order() {
        let leaf = |n: &str| Predicate::Path(Path::new(vec![Step::child(n)]));
        let pred = Predicate::And(
            Box::new(leaf("a")),
            Box::new(Predicate::Or(Box::new(leaf("b")), Box::new(leaf("c")))),
        );
        let names: Vec<String> = pred
            .leaves()
            .iter()
            .map(|p| match &p.steps[0].test {
                NodeTest::Name(n) => n.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn path_flags() {
        let plain = Path::new(vec![Step::child("a"), Step::descendant("b")]);
        assert!(!plain.has_predicates());
        assert!(!plain.has_reverse_axes());

        let mut with_pred = plain.clone();
        with_pred.steps[0].predicate = Some(Predicate::Path(Path::new(vec![Step::child("x")])));
        assert!(with_pred.has_predicates());

        let reverse = Path::new(vec![Step {
            axis: Axis::Parent,
            test: NodeTest::Name("p".into()),
            predicate: None,
        }]);
        assert!(reverse.has_reverse_axes());
    }

    #[test]
    fn node_test_display() {
        assert_eq!(NodeTest::Name("a".into()).to_string(), "a");
        assert_eq!(NodeTest::Wildcard.to_string(), "*");
        assert_eq!(NodeTest::Attribute("id".into()).to_string(), "@id");
        assert_eq!(NodeTest::Text("x".into()).to_string(), "text(x)");
    }
}
