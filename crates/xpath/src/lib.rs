//! The XPath subset understood by the PP-Transducer system, its parser, and
//! the query-rewriting pass.
//!
//! The pushdown transducer natively supports only *basic* queries
//! (§2.2): child (`/`) and descendant (`//`) axes over element name tests,
//! wildcards, attributes and `text()` — no predicates, no reverse axes.
//! Richer queries are supported by rewriting (§3.2 phase iv):
//!
//! * a query with a predicate, such as `/a[b]/c`, is decomposed into the
//!   *basic* sub-queries `/a`, `/a/b` and `/a/c`; the filter phase later keeps
//!   only the `/a/c` matches whose enclosing `/a` occurrence satisfies the
//!   predicate;
//! * `parent::x` predicates are rewritten into alternative forward paths
//!   (XPathMark B1);
//! * `ancestor::x` location steps are rewritten into a descendant query
//!   anchored at the ancestor plus an existence predicate (XPathMark B2,
//!   following Olteanu's "XPath: Looking Forward" rewriting).
//!
//! The output of this crate is a [`QueryPlan`]: a deduplicated list of basic
//! sub-queries (what the automaton is built from) plus, for every user query,
//! which sub-queries produce its results and which boolean filter must hold.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod ast;
pub mod error;
pub mod parser;
pub mod plan;
pub mod rewrite;

pub use ast::{Axis, NodeTest, Path, Predicate, Query, Step};
pub use error::XPathError;
pub use parser::parse_query;
pub use plan::{
    BasicAxis, BasicStep, BasicTest, CompiledQuery, FilterSpec, PredicateExpr, QueryPlan, SubQuery,
};
pub use rewrite::compile_queries;
