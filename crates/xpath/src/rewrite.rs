//! Query rewriting: decomposing rich queries into basic sub-queries.
//!
//! Implements §3.2 phase (iv) of the paper plus the reverse-axis rewriting
//! used for the XPathMark B queries (§2.2, following Olteanu's rewrite rules):
//!
//! * **Predicate decomposition** — `/a[b]/c` becomes the anchor sub-query
//!   `/a`, the predicate sub-query `/a/b` and the result sub-query `/a/c`.
//!   Boolean predicate structure (`and`/`or`/`not`) is preserved in a
//!   [`PredicateExpr`] evaluated per anchor occurrence by the filter phase.
//! * **`parent::` predicates** — `/s/r/*/item[parent::sa or parent::na]/name`
//!   becomes the union of `/s/r/sa/item/name` and `/s/r/na/item/name`.
//! * **`ancestor::` location steps** — `//k/ancestor::li/t/k` becomes the
//!   anchor `//li`, the existence predicate `//li//k` and the result
//!   `//li/t/k`.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step};
use crate::error::XPathError;
use crate::parser::parse_query;
use crate::plan::{
    BasicAxis, BasicStep, BasicTest, CompiledQuery, FilterSpec, PredicateExpr, QueryPlan, SubQuery,
};

/// Parses and rewrites a set of query strings into a single [`QueryPlan`].
///
/// # Examples
///
/// ```
/// use ppt_xpath::compile_queries;
/// let plan = compile_queries(&["/s/cs/c[a/d/t/k]/d", "//c//k"]).unwrap();
/// assert_eq!(plan.queries[0].subquery_count(), 3);
/// assert_eq!(plan.queries[1].subquery_count(), 1);
/// ```
pub fn compile_queries<S: AsRef<str>>(queries: &[S]) -> Result<QueryPlan, XPathError> {
    let parsed: Result<Vec<Query>, XPathError> =
        queries.iter().map(|q| parse_query(q.as_ref())).collect();
    compile_parsed(&parsed?)
}

/// Rewrites already-parsed queries into a [`QueryPlan`].
pub fn compile_parsed(queries: &[Query]) -> Result<QueryPlan, XPathError> {
    let mut plan = QueryPlan::default();
    for q in queries {
        let compiled = compile_one(&mut plan, q)?;
        plan.queries.push(compiled);
    }
    Ok(plan)
}

fn unsupported(q: &Query, message: &str) -> XPathError {
    XPathError::Unsupported { query: q.source.clone(), message: message.to_string() }
}

fn compile_one(plan: &mut QueryPlan, q: &Query) -> Result<CompiledQuery, XPathError> {
    if q.path.is_empty() {
        return Err(XPathError::Empty);
    }
    if let Some(pos) = q.path.steps.iter().position(|s| s.axis == Axis::Ancestor) {
        return compile_ancestor(plan, q, pos);
    }
    if q.path.steps.iter().any(|s| s.axis == Axis::Parent) {
        return Err(unsupported(q, "parent:: is only supported inside predicates"));
    }
    let predicated: Vec<usize> = q
        .path
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.predicate.is_some())
        .map(|(i, _)| i)
        .collect();
    match predicated.len() {
        0 => compile_plain(plan, q),
        1 => compile_predicated(plan, q, predicated[0]),
        _ => Err(unsupported(q, "at most one step may carry a predicate")),
    }
}

/// Converts an AST step into a basic step; rejects reverse axes.
fn basic_step(q: &Query, step: &Step) -> Result<BasicStep, XPathError> {
    let axis = match step.axis {
        Axis::Child => BasicAxis::Child,
        Axis::Descendant => BasicAxis::Descendant,
        Axis::Parent | Axis::Ancestor => {
            return Err(unsupported(q, "reverse axis in a position that cannot be rewritten"))
        }
    };
    let test = match &step.test {
        NodeTest::Name(n) => BasicTest::Name(n.clone()),
        NodeTest::Wildcard => BasicTest::Wildcard,
        NodeTest::Attribute(n) => BasicTest::Attribute(n.clone()),
        NodeTest::Text(s) => BasicTest::Text(s.clone()),
    };
    Ok(BasicStep { axis, test })
}

fn basic_steps(q: &Query, steps: &[Step]) -> Result<Vec<BasicStep>, XPathError> {
    steps.iter().map(|s| basic_step(q, s)).collect()
}

fn push_unique(v: &mut Vec<usize>, x: usize) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// A query that is already basic: one sub-query, no filter.
fn compile_plain(plan: &mut QueryPlan, q: &Query) -> Result<CompiledQuery, XPathError> {
    let steps = basic_steps(q, &q.path.steps)?;
    let idx = plan.add_subquery(SubQuery::new(steps));
    Ok(CompiledQuery {
        source: q.source.clone(),
        result_subqueries: vec![idx],
        filter: None,
        all_subqueries: vec![idx],
    })
}

/// Rewrites a query whose step `pi` carries a predicate.
fn compile_predicated(
    plan: &mut QueryPlan,
    q: &Query,
    pi: usize,
) -> Result<CompiledQuery, XPathError> {
    // UNWRAP-OK: the caller selects `pi` as a step with a predicate (see
    // `compile`), so `predicate` is always Some here.
    let pred = q.path.steps[pi].predicate.clone().expect("step pi carries a predicate");
    let leaves = pred.leaves();
    let all_parent_leaves = !leaves.is_empty()
        && leaves.iter().all(|p| p.steps.len() == 1 && p.steps[0].axis == Axis::Parent);
    if all_parent_leaves {
        return compile_parent_predicate(plan, q, pi, &pred);
    }
    if leaves.iter().any(|p| p.has_reverse_axes()) {
        return Err(unsupported(
            q,
            "predicates may not mix parent:: with forward paths, and ancestor:: is not allowed inside predicates",
        ));
    }

    // Anchor: the path up to and including the predicated step (predicate
    // stripped).
    let anchor_steps = basic_steps(q, &q.path.steps[..=pi])?;
    let anchor = plan.add_subquery(SubQuery::new(anchor_steps.clone()));

    // Predicate expression: one sub-query per leaf path, prefixed by the
    // anchor path.
    let expr = build_predicate_expr(plan, q, &anchor_steps, &pred)?;

    // Result: the full path with the predicate stripped.
    let mut result_steps = anchor_steps;
    result_steps.extend(basic_steps(q, &q.path.steps[pi + 1..])?);
    let result = plan.add_subquery(SubQuery::new(result_steps));

    let mut all = vec![anchor];
    for s in expr.subqueries() {
        push_unique(&mut all, s);
    }
    push_unique(&mut all, result);

    Ok(CompiledQuery {
        source: q.source.clone(),
        result_subqueries: vec![result],
        filter: Some(FilterSpec { anchor, predicate: expr }),
        all_subqueries: all,
    })
}

fn build_predicate_expr(
    plan: &mut QueryPlan,
    q: &Query,
    anchor_steps: &[BasicStep],
    pred: &Predicate,
) -> Result<PredicateExpr, XPathError> {
    Ok(match pred {
        Predicate::Path(p) => {
            if p.has_predicates() {
                return Err(unsupported(q, "nested predicates are not supported"));
            }
            let mut steps = anchor_steps.to_vec();
            steps.extend(basic_steps(q, &p.steps)?);
            PredicateExpr::Sub(plan.add_subquery(SubQuery::new(steps)))
        }
        Predicate::And(a, b) => PredicateExpr::And(
            Box::new(build_predicate_expr(plan, q, anchor_steps, a)?),
            Box::new(build_predicate_expr(plan, q, anchor_steps, b)?),
        ),
        Predicate::Or(a, b) => PredicateExpr::Or(
            Box::new(build_predicate_expr(plan, q, anchor_steps, a)?),
            Box::new(build_predicate_expr(plan, q, anchor_steps, b)?),
        ),
        Predicate::Not(a) => {
            PredicateExpr::Not(Box::new(build_predicate_expr(plan, q, anchor_steps, a)?))
        }
    })
}

/// Rewrites `.../X/step[parent::A or parent::B]/...` into one alternative
/// forward path per named parent (XPathMark B1).
fn compile_parent_predicate(
    plan: &mut QueryPlan,
    q: &Query,
    pi: usize,
    pred: &Predicate,
) -> Result<CompiledQuery, XPathError> {
    if pi == 0 {
        return Err(unsupported(q, "parent:: predicate on the first step cannot be rewritten"));
    }
    if !matches!(pred, Predicate::Path(_)) && !is_pure_disjunction(pred) {
        return Err(unsupported(
            q,
            "parent:: predicates must be a single test or a disjunction of tests",
        ));
    }
    let parent_step = &q.path.steps[pi - 1];
    let mut result_subqueries = Vec::new();
    for leaf in pred.leaves() {
        let parent_name =
            match &leaf.steps[0].test {
                NodeTest::Name(n) => n.clone(),
                NodeTest::Wildcard => {
                    // parent::* adds no constraint; keep the original parent test.
                    match &parent_step.test {
                        NodeTest::Name(n) => n.clone(),
                        _ => return Err(unsupported(
                            q,
                            "parent::* on a wildcard step adds no constraint and is not supported",
                        )),
                    }
                }
                _ => return Err(unsupported(q, "parent:: requires an element name test")),
            };
        // The disjunct is satisfiable only if the original parent step accepts
        // that name.
        let compatible = match &parent_step.test {
            NodeTest::Wildcard => true,
            NodeTest::Name(n) => *n == parent_name,
            _ => false,
        };
        if !compatible {
            continue;
        }
        let mut steps: Vec<Step> = q.path.steps[..pi - 1].to_vec();
        steps.push(Step {
            axis: parent_step.axis,
            test: NodeTest::Name(parent_name),
            predicate: None,
        });
        let mut own = q.path.steps[pi].clone();
        own.predicate = None;
        steps.push(own);
        steps.extend_from_slice(&q.path.steps[pi + 1..]);
        let idx = plan.add_subquery(SubQuery::new(basic_steps(q, &steps)?));
        push_unique(&mut result_subqueries, idx);
    }
    if result_subqueries.is_empty() {
        return Err(unsupported(q, "parent:: predicate is unsatisfiable for this path"));
    }
    Ok(CompiledQuery {
        source: q.source.clone(),
        result_subqueries: result_subqueries.clone(),
        filter: None,
        all_subqueries: result_subqueries,
    })
}

fn is_pure_disjunction(pred: &Predicate) -> bool {
    match pred {
        Predicate::Path(_) => true,
        Predicate::Or(a, b) => is_pure_disjunction(a) && is_pure_disjunction(b),
        _ => false,
    }
}

/// Rewrites `<prefix>/ancestor::X/<suffix>` (XPathMark B2 shape) into the
/// anchor `//X`, the existence predicate `//X + prefix-as-descendant` and the
/// result `//X/<suffix>`.
fn compile_ancestor(
    plan: &mut QueryPlan,
    q: &Query,
    pos: usize,
) -> Result<CompiledQuery, XPathError> {
    if pos == 0 {
        return Err(unsupported(q, "a query cannot start with ancestor::"));
    }
    let prefix = &q.path.steps[..pos];
    let suffix = &q.path.steps[pos + 1..];
    // The rewrite `//X[.//prefix]` is only sound when the prefix places no
    // constraint on where the ancestor sits, i.e. every prefix step uses the
    // descendant axis (as in `//k/ancestor::li/...`).
    if !prefix.iter().all(|s| s.axis == Axis::Descendant && s.predicate.is_none()) {
        return Err(unsupported(
            q,
            "ancestor:: is only supported after a pure descendant prefix (e.g. //k/ancestor::li/...)",
        ));
    }
    if suffix
        .iter()
        .any(|s| s.predicate.is_some() || s.axis == Axis::Parent || s.axis == Axis::Ancestor)
    {
        return Err(unsupported(q, "the path after ancestor:: must be basic"));
    }
    let anchor_step = &q.path.steps[pos];
    let ancestor_name = match &anchor_step.test {
        NodeTest::Name(n) => n.clone(),
        _ => return Err(unsupported(q, "ancestor:: requires an element name test")),
    };

    // Anchor: //X
    let anchor_basic = vec![BasicStep::descendant(&ancestor_name)];
    let anchor = plan.add_subquery(SubQuery::new(anchor_basic.clone()));

    // Predicate: //X//<prefix>, i.e. the original prefix must occur somewhere
    // below the anchor.
    let mut pred_steps = anchor_basic.clone();
    for (i, s) in prefix.iter().enumerate() {
        let mut b = basic_step(q, s)?;
        if i == 0 {
            b.axis = BasicAxis::Descendant;
        }
        pred_steps.push(b);
    }
    let pred = plan.add_subquery(SubQuery::new(pred_steps));

    // Result: //X/<suffix>
    let mut result_steps = anchor_basic;
    result_steps.extend(basic_steps(q, suffix)?);
    let result = plan.add_subquery(SubQuery::new(result_steps));

    let mut all = vec![anchor];
    push_unique(&mut all, pred);
    push_unique(&mut all, result);
    Ok(CompiledQuery {
        source: q.source.clone(),
        result_subqueries: vec![result],
        filter: Some(FilterSpec { anchor, predicate: PredicateExpr::Sub(pred) }),
        all_subqueries: all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subquery_strings(plan: &QueryPlan, q: &CompiledQuery) -> Vec<String> {
        q.all_subqueries.iter().map(|&i| plan.subqueries[i].to_string()).collect()
    }

    #[test]
    fn plain_queries_compile_to_one_subquery() {
        let plan = compile_queries(&["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c//k"]).unwrap();
        for q in &plan.queries {
            assert_eq!(q.subquery_count(), 1);
            assert!(!q.is_rewritten());
            assert!(q.filter.is_none());
        }
        assert_eq!(plan.subqueries[0].to_string(), "/s/cs/c/a/d/t/k");
        assert_eq!(plan.subqueries[1].to_string(), "//c//k");
        assert_eq!(plan.subqueries[2].to_string(), "/s/cs/c//k");
    }

    #[test]
    fn paper_example_a4_rewrites_to_three_subqueries() {
        // §3.2: "the query /a[b]/c is rewritten into three sub-queries: /a,
        // /a/b and /a/c"
        let plan = compile_queries(&["/a[b]/c"]).unwrap();
        let q = &plan.queries[0];
        assert_eq!(
            subquery_strings(&plan, q),
            vec!["/a".to_string(), "/a/b".to_string(), "/a/c".to_string()]
        );
        let f = q.filter.as_ref().unwrap();
        assert_eq!(plan.subqueries[f.anchor].to_string(), "/a");
        assert_eq!(q.result_subqueries.len(), 1);
        assert_eq!(plan.subqueries[q.result_subqueries[0]].to_string(), "/a/c");
    }

    #[test]
    fn xpathmark_subquery_counts_match_table2() {
        let queries = [
            ("/s/cs/c/a/d/t/k", 1),
            ("//c//k", 1),
            ("/s/cs/c//k", 1),
            ("/s/cs/c[a/d/t/k]/d", 3),
            ("/s/cs/c[descendant::k]/d", 3),
            ("/s/ps/p[pr/g and pr/age]/n", 4),
            ("/s/ps/p[ph or h]/n", 4),
            ("/s/ps/p[a and (ph or h) and (cc or pr)]/n", 7),
            ("/s/r/*/item[parent::sa or parent::na]/name", 2),
            ("//k/ancestor::li/t/k", 3),
        ];
        let plan = compile_queries(&queries.iter().map(|(q, _)| *q).collect::<Vec<_>>()).unwrap();
        for (i, (src, expected)) in queries.iter().enumerate() {
            assert_eq!(
                plan.queries[i].subquery_count(),
                *expected,
                "sub-query count mismatch for {src}"
            );
        }
    }

    #[test]
    fn descendant_predicate_a5() {
        let plan = compile_queries(&["/s/cs/c[descendant::k]/d"]).unwrap();
        let q = &plan.queries[0];
        assert_eq!(
            subquery_strings(&plan, q),
            vec!["/s/cs/c".to_string(), "/s/cs/c//k".to_string(), "/s/cs/c/d".to_string()]
        );
    }

    #[test]
    fn boolean_structure_is_preserved_a8() {
        let plan = compile_queries(&["/s/ps/p[a and (ph or h) and (cc or pr)]/n"]).unwrap();
        let q = &plan.queries[0];
        let f = q.filter.as_ref().unwrap();
        // a present, ph missing, h present, cc missing, pr missing => false.
        let name_of = |i: usize| plan.subqueries[i].to_string();
        let has = |present: &[&str]| {
            let present: Vec<String> = present.iter().map(|s| s.to_string()).collect();
            move |i: usize| present.contains(&name_of(i))
        };
        assert!(!f.predicate.eval(&has(&["/s/ps/p/a", "/s/ps/p/h"])));
        assert!(f.predicate.eval(&has(&["/s/ps/p/a", "/s/ps/p/h", "/s/ps/p/cc"])));
        assert!(f.predicate.eval(&has(&["/s/ps/p/a", "/s/ps/p/ph", "/s/ps/p/pr"])));
        assert!(!f.predicate.eval(&has(&["/s/ps/p/ph", "/s/ps/p/pr"])));
    }

    #[test]
    fn parent_predicate_b1_rewrites_to_alternative_paths() {
        let plan = compile_queries(&["/s/r/*/item[parent::sa or parent::na]/name"]).unwrap();
        let q = &plan.queries[0];
        assert!(q.filter.is_none());
        assert_eq!(
            subquery_strings(&plan, q),
            vec!["/s/r/sa/item/name".to_string(), "/s/r/na/item/name".to_string()]
        );
        assert_eq!(q.result_subqueries.len(), 2);
    }

    #[test]
    fn parent_predicate_with_named_parent_keeps_only_compatible_disjuncts() {
        let plan = compile_queries(&["/s/r/na/item[parent::sa or parent::na]/name"]).unwrap();
        let q = &plan.queries[0];
        assert_eq!(subquery_strings(&plan, q), vec!["/s/r/na/item/name".to_string()]);
    }

    #[test]
    fn ancestor_b2_rewrites_to_anchor_predicate_result() {
        let plan = compile_queries(&["//k/ancestor::li/t/k"]).unwrap();
        let q = &plan.queries[0];
        assert_eq!(
            subquery_strings(&plan, q),
            vec!["//li".to_string(), "//li//k".to_string(), "//li/t/k".to_string()]
        );
        let f = q.filter.as_ref().unwrap();
        assert_eq!(plan.subqueries[f.anchor].to_string(), "//li");
        assert_eq!(plan.subqueries[q.result_subqueries[0]].to_string(), "//li/t/k");
    }

    #[test]
    fn shared_subqueries_are_deduplicated_across_queries() {
        // /a/b appears both as a user query and as a predicate sub-query of
        // the second query; the plan must hold it only once.
        let plan = compile_queries(&["/a/b", "/a[b]/c"]).unwrap();
        let strings: Vec<String> = plan.subqueries.iter().map(|s| s.to_string()).collect();
        assert_eq!(strings, vec!["/a/b".to_string(), "/a".to_string(), "/a/c".to_string()]);
        assert_eq!(plan.subquery_count(), 3);
    }

    #[test]
    fn unsupported_constructs_are_rejected_with_clear_errors() {
        assert!(matches!(compile_queries(&["/a[b]/c[d]/e"]), Err(XPathError::Unsupported { .. })));
        assert!(matches!(compile_queries(&["/a/parent::b"]), Err(XPathError::Unsupported { .. })));
        assert!(matches!(
            compile_queries(&["/a/b/ancestor::c/d"]),
            Err(XPathError::Unsupported { .. })
        ));
        assert!(matches!(
            compile_queries(&["/a[parent::b]/c"]),
            Err(XPathError::Unsupported { .. })
        ));
        assert!(matches!(
            compile_queries(&["/a/item[parent::b and c]/d"]),
            Err(XPathError::Unsupported { .. })
        ));
    }

    #[test]
    fn predicate_on_last_step_uses_anchor_as_result() {
        let plan = compile_queries(&["/a/b[c]"]).unwrap();
        let q = &plan.queries[0];
        assert_eq!(plan.subqueries[q.result_subqueries[0]].to_string(), "/a/b");
        let f = q.filter.as_ref().unwrap();
        assert_eq!(plan.subqueries[f.anchor].to_string(), "/a/b");
        assert_eq!(q.subquery_count(), 2);
    }

    #[test]
    fn wildcard_and_attribute_steps_survive_rewriting() {
        let plan = compile_queries(&["/s/r/*/item/@id"]).unwrap();
        assert_eq!(plan.subqueries[0].to_string(), "/s/r/*/item/@id");
    }

    #[test]
    fn not_predicate_is_compiled() {
        let plan = compile_queries(&["/a[not(b)]/c"]).unwrap();
        let q = &plan.queries[0];
        let f = q.filter.as_ref().unwrap();
        assert!(matches!(f.predicate, PredicateExpr::Not(_)));
        // An anchor with no /a/b match passes the filter.
        assert!(f.predicate.eval(&|_| false));
    }
}
