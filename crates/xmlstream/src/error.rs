//! Error type shared by the XML substrate.

use std::fmt;

/// Errors produced while lexing or building documents.
///
/// The lexer is deliberately forgiving: out-of-order chunk processing means a
/// chunk may legitimately begin or end in the middle of an element, so most
/// structural "problems" are not errors at the lexer level. Errors are
/// reserved for byte sequences that cannot be part of any well-formed
/// document, and for the DOM builder which does require well-formed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// A tag was opened (`<`) but the input ended before it was closed.
    UnterminatedTag { pos: usize },
    /// A closing tag did not match the element that was open.
    MismatchedClose { pos: usize, expected: String, found: String },
    /// The document ended while elements were still open.
    UnclosedElements { open: usize },
    /// Text content appeared outside of the root element where it is not
    /// allowed (DOM builder only).
    TextOutsideRoot { pos: usize },
    /// The document contained no root element.
    EmptyDocument,
    /// A tag name was empty (`<>` or `</>`).
    EmptyTagName { pos: usize },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnterminatedTag { pos } => {
                write!(f, "unterminated tag starting at byte {pos}")
            }
            XmlError::MismatchedClose { pos, expected, found } => write!(
                f,
                "mismatched closing tag at byte {pos}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnclosedElements { open } => {
                write!(f, "document ended with {open} unclosed element(s)")
            }
            XmlError::TextOutsideRoot { pos } => {
                write!(f, "text content outside the root element at byte {pos}")
            }
            XmlError::EmptyDocument => write!(f, "document contains no root element"),
            XmlError::EmptyTagName { pos } => write!(f, "empty tag name at byte {pos}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = XmlError::UnterminatedTag { pos: 12 };
        assert!(e.to_string().contains("12"));
        let e = XmlError::MismatchedClose { pos: 3, expected: "a".into(), found: "b".into() };
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("</b>"));
        let e = XmlError::UnclosedElements { open: 2 };
        assert!(e.to_string().contains('2'));
        assert!(XmlError::EmptyDocument.to_string().contains("no root"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::EmptyTagName { pos: 1 }, XmlError::EmptyTagName { pos: 1 });
        assert_ne!(XmlError::EmptyTagName { pos: 1 }, XmlError::EmptyTagName { pos: 2 });
    }
}
