//! An escaping XML writer used by the synthetic dataset generators.
//!
//! The generators in `ppt-datasets` produce multi-megabyte documents; the
//! writer therefore appends into a reusable byte buffer and avoids per-element
//! allocations beyond that buffer.

/// Streaming XML writer with element-stack tracking and text escaping.
#[derive(Debug, Default)]
pub struct XmlWriter {
    buf: Vec<u8>,
    stack: Vec<Vec<u8>>,
}

impl XmlWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        XmlWriter::default()
    }

    /// Creates a writer with a pre-allocated buffer of `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        XmlWriter { buf: Vec::with_capacity(capacity), stack: Vec::new() }
    }

    /// Opens an element.
    pub fn open(&mut self, name: &str) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.push(b'>');
        self.stack.push(name.as_bytes().to_vec());
    }

    /// Opens an element with attributes (values are escaped).
    pub fn open_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        for (k, v) in attrs {
            self.buf.push(b' ');
            self.buf.extend_from_slice(k.as_bytes());
            self.buf.extend_from_slice(b"=\"");
            escape_into(v.as_bytes(), &mut self.buf);
            self.buf.push(b'"');
        }
        self.buf.push(b'>');
        self.stack.push(name.as_bytes().to_vec());
    }

    /// Writes an empty element `<name/>`.
    pub fn empty(&mut self, name: &str) {
        self.buf.push(b'<');
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.extend_from_slice(b"/>");
    }

    /// Writes escaped character data.
    pub fn text(&mut self, text: &str) {
        escape_into(text.as_bytes(), &mut self.buf);
    }

    /// Writes a complete `<name>text</name>` element.
    pub fn leaf(&mut self, name: &str, text: &str) {
        self.open(name);
        self.text(text);
        self.close();
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open — a generator bug, not a data error.
    pub fn close(&mut self) {
        // UNWRAP-OK: documented panic contract (see `# Panics` above) — an
        // unbalanced close is a generator bug, not a data error.
        let name = self.stack.pop().expect("close() without a matching open()");
        self.buf.extend_from_slice(b"</");
        self.buf.extend_from_slice(&name);
        self.buf.push(b'>');
    }

    /// Closes every element still open.
    pub fn close_all(&mut self) {
        while !self.stack.is_empty() {
            self.close();
        }
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes the document, closing any open elements, and returns the
    /// buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.close_all();
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Escapes `&`, `<` and `>` (and `"` for attribute values) into `out`.
fn escape_into(text: &[u8], out: &mut Vec<u8>) {
    for &b in text {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            b'"' => out.extend_from_slice(b"&quot;"),
            _ => out.push(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    #[test]
    fn writes_nested_elements() {
        let mut w = XmlWriter::new();
        w.open("a");
        w.open("b");
        w.text("hi");
        w.close();
        w.empty("c");
        let out = w.finish();
        assert_eq!(out, b"<a><b>hi</b><c/></a>");
    }

    #[test]
    fn attributes_are_written_and_escaped() {
        let mut w = XmlWriter::new();
        w.open_with_attrs("a", &[("id", "x\"y"), ("n", "1")]);
        let out = w.finish();
        assert_eq!(out, br#"<a id="x&quot;y" n="1"></a>"#);
    }

    #[test]
    fn text_is_escaped() {
        let mut w = XmlWriter::new();
        w.open("t");
        w.text("a < b & c > d");
        let out = w.finish();
        assert_eq!(out, b"<t>a &lt; b &amp; c &gt; d</t>");
    }

    #[test]
    fn finish_closes_open_elements() {
        let mut w = XmlWriter::new();
        w.open("a");
        w.open("b");
        w.open("c");
        assert_eq!(w.depth(), 3);
        let out = w.finish();
        assert_eq!(out, b"<a><b><c></c></b></a>");
    }

    #[test]
    fn leaf_shorthand() {
        let mut w = XmlWriter::new();
        w.open("root");
        w.leaf("name", "bob");
        let out = w.finish();
        assert_eq!(out, b"<root><name>bob</name></root>");
    }

    #[test]
    fn generated_output_round_trips_through_the_dom() {
        let mut w = XmlWriter::new();
        w.open("site");
        for i in 0..10 {
            w.open("person");
            w.leaf("name", &format!("person {i} <&>"));
            w.close();
        }
        let out = w.finish();
        let doc = Document::parse(&out).expect("writer output must be well-formed");
        assert_eq!(doc.children(doc.root()).len(), 10);
    }

    #[test]
    #[should_panic(expected = "close() without a matching open()")]
    fn close_without_open_panics() {
        let mut w = XmlWriter::new();
        w.close();
    }
}
