//! Incremental window splitting for unbounded streams.
//!
//! The online runtime (and [`Engine::run_reader`]) feed the split →
//! parallel-transduce → join pipeline window by window. A window boundary must
//! satisfy the same invariant as a chunk boundary (§5 of the paper): the next
//! window has to **start at a `<` that begins a tag**, because each window is
//! lexed independently. [`WindowSplitter`] maintains that invariant
//! incrementally: bytes are pushed in arbitrary-sized reads, complete windows
//! are popped, and the tail after the last safe boundary — which may be a
//! partial tag — is carried over into the next window.
//!
//! Unlike the historical `run_reader` heuristic (cut at the last `<`, *or
//! emit everything* when no boundary exists), the splitter never emits a
//! partial tag while a boundary might still arrive: when a window fills up
//! without containing one it keeps buffering — up to an overflow guard of
//! `4 × window_size`, past which the buffer is emitted whole so a
//! boundary-free stream (non-XML garbage from an untrusted client) cannot
//! grow memory without bound.
//!
//! [`Engine::run_reader`]: ../../ppt_core/engine/struct.Engine.html#method.run_reader

use std::sync::Arc;

/// Pumps a reader to exhaustion in 64 KiB reads, retrying on
/// [`std::io::ErrorKind::Interrupted`]. `on_bytes` returns `false` to stop
/// early (cancellation); the pump then returns `Ok(())` without reading
/// further. Shared by every ingestion path in the workspace (the batch
/// engine's `run_reader` and the online runtime's feeders).
pub fn pump_reader<R: std::io::Read>(
    reader: &mut R,
    mut on_bytes: impl FnMut(&[u8]) -> bool,
) -> std::io::Result<()> {
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                if !on_bytes(&buf[..n]) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A refcounted, immutable window of the stream together with its absolute
/// byte range.
///
/// Cloning a `SharedWindow` bumps a reference count — it never copies the
/// bytes. This is what lets the online runtime hand the same window to the
/// worker pool (chunk jobs) *and* retain it in a payload ring without either
/// side owning a second copy: the bytes live until the last holder drops.
#[derive(Debug, Clone)]
pub struct SharedWindow {
    base: usize,
    bytes: Arc<[u8]>,
}

impl SharedWindow {
    /// Wraps `bytes` as the window covering stream offsets
    /// `base .. base + bytes.len()`.
    pub fn new(base: usize, bytes: Vec<u8>) -> SharedWindow {
        SharedWindow { base, bytes: bytes.into() }
    }

    /// Absolute stream offset of the window's first byte.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Absolute stream offset just past the window's last byte.
    pub fn end(&self) -> usize {
        self.base + self.bytes.len()
    }

    /// Length of the window in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the window covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The window's bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The absolute stream range the window covers.
    pub fn abs_range(&self) -> std::ops::Range<usize> {
        self.base..self.end()
    }

    /// Number of live clones sharing this window's bytes (including `self`).
    ///
    /// Observational only — the count is racy the instant it is read when
    /// other holders run concurrently. It exists so tests can assert the
    /// refcount lifecycle (e.g. that a zero-copy egress queue releases its
    /// hold once a frame drains).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.bytes)
    }

    /// The part of `range` (absolute stream offsets) that falls inside this
    /// window — empty when they do not overlap.
    pub fn slice_abs(&self, range: std::ops::Range<usize>) -> &[u8] {
        let start = range.start.clamp(self.base, self.end()) - self.base;
        let end = range.end.clamp(self.base, self.end()) - self.base;
        &self.bytes[start..end.max(start)]
    }
}

/// Incremental splitter cutting a byte stream into lexing-safe windows.
#[derive(Debug, Clone)]
pub struct WindowSplitter {
    window_size: usize,
    buf: Vec<u8>,
    /// Prefix of `buf` already known to hold no *usable* boundary, so
    /// repeated pops over a boundary-free tail never rescan the same bytes
    /// (keeps low-tag-density ingest linear instead of quadratic).
    scanned: usize,
    /// Total bytes already emitted (popped or flushed) — the absolute base
    /// offset of the next window.
    emitted: usize,
}

impl WindowSplitter {
    /// Creates a splitter targeting `window_size`-byte windows (clamped to a
    /// 16-byte minimum).
    pub fn new(window_size: usize) -> WindowSplitter {
        let window_size = window_size.max(16);
        WindowSplitter {
            window_size,
            buf: Vec::with_capacity(window_size + 4096),
            scanned: 0,
            emitted: 0,
        }
    }

    /// The target window size in bytes.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Number of bytes currently buffered (pushed but not yet popped).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends stream bytes. Follow with [`WindowSplitter::pop_window`] until
    /// it returns `None`.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete window, if at least `window_size` bytes are
    /// buffered and a safe boundary exists.
    ///
    /// The cut is placed on the last `<` within the first `window_size`
    /// buffered bytes; if that region contains no boundary (other than its
    /// very first byte) the cut moves forward to the next `<` after it, so a
    /// window may exceed the target when tag density is low — mirroring the
    /// chunk splitter's "low tag density" rule.
    ///
    /// **Overflow guard:** a stream with no `<` at all (non-XML garbage, or
    /// one enormous token) would otherwise buffer without bound — an easy
    /// denial-of-service from an untrusted client. Once `4 × window_size`
    /// bytes are buffered with no boundary in sight, the whole buffer is
    /// emitted as-is; memory stays bounded at the cost of possibly splitting
    /// a pathological token (the same degradation the batch reader had).
    pub fn pop_window(&mut self) -> Option<Vec<u8>> {
        if self.buf.len() < self.window_size {
            return None;
        }
        let cut = if self.scanned < self.window_size {
            match self.buf[..self.window_size].iter().rposition(|&b| b == b'<') {
                // `pos == 0` is unusable: cutting there would pop an empty
                // window.
                Some(pos) if pos > 0 => Some(pos),
                _ => {
                    // The head region holds no usable boundary; remember so.
                    self.scanned = self.window_size;
                    None
                }
            }
        } else {
            None
        };
        let cut = cut.or_else(|| {
            // Scan forward for the next tag start (always a positive offset,
            // since it lies at or past `window_size`), starting where the
            // previous unsuccessful scan left off.
            let start = self.scanned.max(self.window_size);
            let found = self.buf[start..].iter().position(|&b| b == b'<').map(|off| start + off);
            if found.is_none() {
                self.scanned = self.buf.len();
            }
            found
        });
        let cut = match cut {
            Some(cut) => cut,
            None if self.buf.len() >= self.window_size.saturating_mul(4) => self.buf.len(),
            None => return None,
        };
        let window: Vec<u8> = self.buf.drain(..cut).collect();
        self.scanned = 0;
        self.emitted += window.len();
        Some(window)
    }

    /// Flushes the remaining tail as the final window of the stream. Returns
    /// `None` when nothing is buffered.
    pub fn finish(&mut self) -> Option<Vec<u8>> {
        self.scanned = 0;
        if self.buf.is_empty() {
            None
        } else {
            let window = std::mem::take(&mut self.buf);
            self.emitted += window.len();
            Some(window)
        }
    }

    /// Total bytes emitted so far — the absolute stream offset at which the
    /// next popped window will start.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// [`WindowSplitter::pop_window`], wrapped as a refcounted
    /// [`SharedWindow`] carrying its absolute stream range.
    pub fn pop_shared(&mut self) -> Option<SharedWindow> {
        let base = self.emitted;
        self.pop_window().map(|w| SharedWindow::new(base, w))
    }

    /// [`WindowSplitter::finish`], wrapped as a refcounted [`SharedWindow`].
    pub fn finish_shared(&mut self) -> Option<SharedWindow> {
        let base = self.emitted;
        self.finish().map(|w| SharedWindow::new(base, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes `data` in `step`-byte reads and returns every emitted window.
    fn windows_of(data: &[u8], window_size: usize, step: usize) -> Vec<Vec<u8>> {
        let mut splitter = WindowSplitter::new(window_size);
        let mut out = Vec::new();
        for piece in data.chunks(step.max(1)) {
            splitter.push(piece);
            while let Some(w) = splitter.pop_window() {
                out.push(w);
            }
        }
        if let Some(w) = splitter.finish() {
            out.push(w);
        }
        out
    }

    #[test]
    fn windows_concatenate_to_the_input() {
        let data = b"<a><b>some text content</b><c><d>more</d></c><e></e></a>";
        for window_size in [16usize, 17, 24, 100] {
            for step in [1usize, 3, 7, 64] {
                let windows = windows_of(data, window_size, step);
                let rejoined: Vec<u8> = windows.concat();
                assert_eq!(rejoined, data, "ws={window_size} step={step}");
            }
        }
    }

    #[test]
    fn every_window_after_the_first_starts_at_a_tag() {
        let data =
            b"<root><item>alpha</item><item>beta gamma delta</item><item>epsilon</item></root>";
        for window_size in [16usize, 20, 32] {
            let windows = windows_of(data, window_size, 5);
            assert!(windows.len() > 1, "expected multiple windows at ws={window_size}");
            for w in &windows[1..] {
                assert_eq!(w[0], b'<', "window must start at a tag: {:?}", w);
            }
        }
    }

    #[test]
    fn partial_tags_are_never_emitted() {
        // A tag longer than the window: the splitter must hold it back until
        // the next boundary arrives rather than cutting inside it.
        let mut data = Vec::new();
        data.extend_from_slice(b"<a>");
        data.extend_from_slice(b"<averylongtagnamethatexceedsthewindowsizebyalot attr=\"x\">");
        data.extend_from_slice(b"</averylongtagnamethatexceedsthewindowsizebyalot></a>");
        let windows = windows_of(&data, 16, 4);
        for w in &windows {
            // No window may end inside a tag: count brackets.
            let opens = w.iter().filter(|&&b| b == b'<').count();
            let closes = w.iter().filter(|&&b| b == b'>').count();
            assert_eq!(opens, closes, "window ends mid-tag: {:?}", String::from_utf8_lossy(w));
        }
        let rejoined: Vec<u8> = windows.concat();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn long_text_runs_extend_the_window() {
        // The 200-byte text run stays under the 4×64 overflow guard, so every
        // boundary remains tag-aligned; the run just makes its window bigger.
        let mut data = Vec::new();
        data.extend_from_slice(b"<a>");
        data.extend_from_slice(&[b'x'; 200]);
        data.extend_from_slice(b"<b></b></a>");
        let windows = windows_of(&data, 64, 9);
        let rejoined: Vec<u8> = windows.concat();
        assert_eq!(rejoined, data);
        for w in &windows[1..] {
            assert_eq!(w[0], b'<');
        }
    }

    #[test]
    fn boundary_free_streams_are_bounded_by_the_overflow_guard() {
        // No '<' anywhere: memory must not grow without bound.
        let mut splitter = WindowSplitter::new(16);
        let mut emitted = 0usize;
        for _ in 0..100 {
            splitter.push(&[b'x'; 16]);
            while let Some(w) = splitter.pop_window() {
                emitted += w.len();
            }
            assert!(splitter.buffered() < 16 * 8, "buffer grew past the overflow guard");
        }
        assert!(emitted > 0, "overflow guard never released a window");
    }

    #[test]
    fn small_streams_emit_one_window_on_finish() {
        let mut splitter = WindowSplitter::new(1 << 20);
        splitter.push(b"<a></a>");
        assert!(splitter.pop_window().is_none());
        assert_eq!(splitter.finish().unwrap(), b"<a></a>");
        assert!(splitter.finish().is_none());
    }

    #[test]
    fn empty_stream_emits_nothing() {
        let mut splitter = WindowSplitter::new(64);
        assert!(splitter.pop_window().is_none());
        assert!(splitter.finish().is_none());
    }

    #[test]
    fn shared_windows_carry_contiguous_absolute_ranges() {
        let data =
            b"<root><item>alpha</item><item>beta gamma delta</item><item>epsilon</item></root>";
        let mut splitter = WindowSplitter::new(16);
        let mut windows = Vec::new();
        for piece in data.chunks(7) {
            splitter.push(piece);
            while let Some(w) = splitter.pop_shared() {
                windows.push(w);
            }
        }
        if let Some(w) = splitter.finish_shared() {
            windows.push(w);
        }
        assert!(windows.len() > 1);
        let mut offset = 0usize;
        for w in &windows {
            assert_eq!(w.base(), offset, "windows must partition the stream");
            assert_eq!(w.bytes(), &data[w.base()..w.end()]);
            offset = w.end();
        }
        assert_eq!(offset, data.len());
        assert_eq!(splitter.emitted(), data.len());
    }

    #[test]
    fn shared_window_slices_by_absolute_offsets() {
        let w = SharedWindow::new(100, b"<a><b></b></a>".to_vec());
        assert_eq!(w.abs_range(), 100..114);
        assert_eq!(w.slice_abs(103..110), b"<b></b>");
        // Clamped at both edges; disjoint ranges yield empty slices.
        assert_eq!(w.slice_abs(90..103), b"<a>");
        assert_eq!(w.slice_abs(110..200), b"</a>");
        assert_eq!(w.slice_abs(0..50), b"");
        assert_eq!(w.slice_abs(200..300), b"");
        // A clone shares the same allocation (refcount bump, no copy).
        let c = w.clone();
        assert_eq!(c.bytes().as_ptr(), w.bytes().as_ptr());
    }
}
