//! A resumable, allocation-free XML lexer.
//!
//! The lexer is the paper's "first transducer" (§3.1): it converts a slice of
//! XML bytes into a stream of opening/closing tag events (plus text and
//! attribute events when requested). It is deliberately *lenient*: a slice may
//! start or end in the middle of an element because the PP-Transducer feeds it
//! arbitrary chunks, so structural problems are not lexical errors.
//!
//! Two usage modes matter for performance:
//!
//! * **tags only** ([`LexerConfig::tags_only`]): text runs and attributes are
//!   skipped without being materialised. This is the hot path used by the
//!   pushdown transducer, whose input alphabet consists solely of tag events.
//! * **full events**: text and attributes are reported; used by the DOM
//!   builder and by queries that involve `text()` or attribute tests.
//!
//! As in the paper's prototype (§5), a chunk is assumed to begin at a `<` that
//! starts a tag; comments and CDATA sections are skipped correctly only when
//! they are fully contained in the slice being lexed, which always holds for
//! whole-document lexing and for chunk splits produced by [`crate::split`] on
//! comment-free data.

use crate::event::XmlEvent;

/// Configuration for [`Lexer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LexerConfig {
    /// When `true`, only `Open`/`Close` events are produced; text and
    /// attributes are skipped. This is the transducer hot path.
    pub tags_only: bool,
}

impl LexerConfig {
    /// Configuration producing only tag events.
    pub fn tags_only() -> Self {
        LexerConfig { tags_only: true }
    }
}

/// Streaming lexer over a byte slice. See the module documentation.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
    config: LexerConfig,
    /// Close event pending after a self-closing tag was reported as `Open`.
    pending_close: Option<(usize, usize, usize)>,
    /// Remaining attribute bytes of the most recent open tag: `(start, end, tag_pos)`.
    attr_cursor: Option<(usize, usize, usize)>,
}

#[inline]
fn is_name_byte(b: u8) -> bool {
    !matches!(b, b'<' | b'>' | b'/' | b'=' | b'"' | b'\'') && !b.is_ascii_whitespace()
}

#[inline]
fn is_ws(b: u8) -> bool {
    b.is_ascii_whitespace()
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input` with the default configuration (full
    /// events).
    pub fn new(input: &'a [u8]) -> Self {
        Self::with_config(input, LexerConfig::default())
    }

    /// Creates a lexer producing only tag events.
    pub fn tags_only(input: &'a [u8]) -> Self {
        Self::with_config(input, LexerConfig::tags_only())
    }

    /// Creates a lexer with an explicit configuration.
    pub fn with_config(input: &'a [u8], config: LexerConfig) -> Self {
        Lexer { input, pos: 0, config, pending_close: None, attr_cursor: None }
    }

    /// Byte offset of the next unread byte.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Skips ahead until `pos` points at the next `<` (or the end of input).
    /// Used when resuming in the middle of a stream.
    pub fn skip_to_tag_start(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos] != b'<' {
            self.pos += 1;
        }
    }

    fn next_attr(&mut self) -> Option<XmlEvent<'a>> {
        let (mut p, end, tag_pos) = self.attr_cursor?;
        let input = self.input;
        // Skip whitespace and stray '/' before the attribute name.
        while p < end && (is_ws(input[p]) || input[p] == b'/') {
            p += 1;
        }
        if p >= end {
            self.attr_cursor = None;
            return None;
        }
        let name_start = p;
        while p < end && is_name_byte(input[p]) {
            p += 1;
        }
        let name_end = p;
        // Skip whitespace and '='.
        while p < end && (is_ws(input[p]) || input[p] == b'=') {
            p += 1;
        }
        let (value_start, value_end, after) = if p < end && (input[p] == b'"' || input[p] == b'\'')
        {
            let quote = input[p];
            let vs = p + 1;
            let mut q = vs;
            while q < end && input[q] != quote {
                q += 1;
            }
            (vs, q, (q + 1).min(end))
        } else {
            // Unquoted value (not strictly valid XML, accepted leniently).
            let vs = p;
            let mut q = vs;
            while q < end && !is_ws(input[q]) {
                q += 1;
            }
            (vs, q, q)
        };
        self.attr_cursor = Some((after, end, tag_pos));
        if name_end == name_start {
            // Nothing parseable left; terminate attribute scanning.
            self.attr_cursor = None;
            return None;
        }
        Some(XmlEvent::Attr {
            name: &input[name_start..name_end],
            value: &input[value_start..value_end],
            pos: name_start,
        })
    }

    /// Finds the end of a tag starting at `start` (offset of `<`), respecting
    /// quoted attribute values. Returns the offset of the closing `>` or the
    /// end of input if the tag is truncated.
    fn find_tag_end(&self, start: usize) -> usize {
        let input = self.input;
        let mut p = start;
        let mut quote: Option<u8> = None;
        while p < input.len() {
            let b = input[p];
            match quote {
                Some(q) => {
                    if b == q {
                        quote = None;
                    }
                }
                None => {
                    if b == b'"' || b == b'\'' {
                        quote = Some(b);
                    } else if b == b'>' {
                        return p;
                    }
                }
            }
            p += 1;
        }
        input.len()
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = XmlEvent<'a>;

    fn next(&mut self) -> Option<XmlEvent<'a>> {
        loop {
            // Attributes belong to the element just opened, so they must be
            // reported before the pending close of a self-closing tag.
            if !self.config.tags_only {
                if let Some(ev) = self.next_attr() {
                    return Some(ev);
                }
            } else {
                self.attr_cursor = None;
            }
            if let Some((start, end, pos)) = self.pending_close.take() {
                return Some(XmlEvent::Close { name: &self.input[start..end], pos });
            }
            let input = self.input;
            if self.pos >= input.len() {
                return None;
            }
            if input[self.pos] != b'<' {
                // Text run.
                let start = self.pos;
                while self.pos < input.len() && input[self.pos] != b'<' {
                    self.pos += 1;
                }
                if self.config.tags_only {
                    continue;
                }
                return Some(XmlEvent::Text { text: &input[start..self.pos], pos: start });
            }
            let tag_pos = self.pos;
            if self.pos + 1 >= input.len() {
                // Lone '<' at the end of the slice: truncated, stop.
                self.pos = input.len();
                return None;
            }
            match input[self.pos + 1] {
                b'/' => {
                    // Closing tag.
                    let name_start = self.pos + 2;
                    let mut p = name_start;
                    while p < input.len() && is_name_byte(input[p]) {
                        p += 1;
                    }
                    let name_end = p;
                    while p < input.len() && input[p] != b'>' {
                        p += 1;
                    }
                    self.pos = (p + 1).min(input.len());
                    if name_end == name_start {
                        continue; // `</>`: skip leniently
                    }
                    return Some(XmlEvent::Close {
                        name: &input[name_start..name_end],
                        pos: tag_pos,
                    });
                }
                b'!' => {
                    // Comment, CDATA or DOCTYPE — skip.
                    if input[self.pos + 1..].starts_with(b"!--") {
                        match find_subslice(&input[self.pos + 4..], b"-->") {
                            Some(off) => self.pos = self.pos + 4 + off + 3,
                            None => self.pos = input.len(),
                        }
                    } else if input[self.pos + 1..].starts_with(b"![CDATA[") {
                        match find_subslice(&input[self.pos + 9..], b"]]>") {
                            Some(off) => self.pos = self.pos + 9 + off + 3,
                            None => self.pos = input.len(),
                        }
                    } else {
                        let end = self.find_tag_end(self.pos);
                        self.pos = (end + 1).min(input.len());
                    }
                    continue;
                }
                b'?' => {
                    // Processing instruction / XML declaration — skip.
                    let end = self.find_tag_end(self.pos);
                    self.pos = (end + 1).min(input.len());
                    continue;
                }
                _ => {
                    // Opening tag.
                    let name_start = self.pos + 1;
                    let mut p = name_start;
                    while p < input.len() && is_name_byte(input[p]) {
                        p += 1;
                    }
                    let name_end = p;
                    let tag_end = self.find_tag_end(self.pos);
                    let truncated = tag_end >= input.len();
                    let self_closing =
                        !truncated && tag_end > self.pos && input[tag_end - 1] == b'/';
                    self.pos = if truncated { input.len() } else { tag_end + 1 };
                    if name_end == name_start {
                        continue; // `<>`: skip leniently
                    }
                    if truncated {
                        // A tag cut off by the end of the slice: drop it; the
                        // next chunk (whose split point was the `<`) owns it.
                        return None;
                    }
                    if !self.config.tags_only {
                        let attrs_end = if self_closing { tag_end - 1 } else { tag_end };
                        if name_end < attrs_end {
                            self.attr_cursor = Some((name_end, attrs_end, tag_pos));
                        }
                    }
                    if self_closing {
                        self.pending_close = Some((name_start, name_end, tag_pos));
                    }
                    return Some(XmlEvent::Open {
                        name: &input[name_start..name_end],
                        pos: tag_pos,
                    });
                }
            }
        }
    }
}

/// Naive subslice search (inputs are short: comment/CDATA terminators).
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(xml: &[u8]) -> Vec<(bool, String)> {
        Lexer::tags_only(xml)
            .map(|e| match e {
                XmlEvent::Open { name, .. } => (true, String::from_utf8_lossy(name).into_owned()),
                XmlEvent::Close { name, .. } => (false, String::from_utf8_lossy(name).into_owned()),
                _ => unreachable!("tags_only lexer must not produce text/attr events"),
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        let xml = b"<a><b><d></d></b><b><c></c></b></a>";
        let ev = tags(xml);
        let expect = vec![
            (true, "a"),
            (true, "b"),
            (true, "d"),
            (false, "d"),
            (false, "b"),
            (true, "b"),
            (true, "c"),
            (false, "c"),
            (false, "b"),
            (false, "a"),
        ];
        let expect: Vec<(bool, String)> =
            expect.into_iter().map(|(o, n)| (o, n.to_string())).collect();
        assert_eq!(ev, expect);
    }

    #[test]
    fn self_closing_tag_emits_open_and_close() {
        let ev = tags(b"<a><b/></a>");
        assert_eq!(
            ev,
            vec![
                (true, "a".to_string()),
                (true, "b".to_string()),
                (false, "b".to_string()),
                (false, "a".to_string())
            ]
        );
    }

    #[test]
    fn text_events_are_reported_in_full_mode() {
        let xml = b"<a>hello<b>world</b></a>";
        let texts: Vec<String> = Lexer::new(xml)
            .filter_map(|e| match e {
                XmlEvent::Text { text, .. } => Some(String::from_utf8_lossy(text).into_owned()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["hello".to_string(), "world".to_string()]);
    }

    #[test]
    fn attributes_are_reported_with_values() {
        let xml = br#"<status id="42" lang='en'><user name="bob"/></status>"#;
        let attrs: Vec<(String, String)> = Lexer::new(xml)
            .filter_map(|e| match e {
                XmlEvent::Attr { name, value, .. } => Some((
                    String::from_utf8_lossy(name).into_owned(),
                    String::from_utf8_lossy(value).into_owned(),
                )),
                _ => None,
            })
            .collect();
        assert_eq!(
            attrs,
            vec![
                ("id".to_string(), "42".to_string()),
                ("lang".to_string(), "en".to_string()),
                ("name".to_string(), "bob".to_string()),
            ]
        );
    }

    #[test]
    fn attributes_skipped_in_tags_only_mode() {
        let xml = br#"<a href="x">t</a>"#;
        let ev = tags(xml);
        assert_eq!(ev, vec![(true, "a".to_string()), (false, "a".to_string())]);
    }

    #[test]
    fn comments_pi_doctype_and_cdata_are_skipped() {
        let xml =
            br#"<?xml version="1.0"?><!DOCTYPE a><a><!-- <ignored> --><![CDATA[<b>]]><c/></a>"#;
        let ev = tags(xml);
        assert_eq!(
            ev,
            vec![
                (true, "a".to_string()),
                (true, "c".to_string()),
                (false, "c".to_string()),
                (false, "a".to_string())
            ]
        );
    }

    #[test]
    fn chunk_starting_mid_document_is_lexed() {
        // Equivalent to the second chunk of the paper's running example
        // (lines 5-8 of Fig 1a).
        let xml = b"<b><c></c></b></a>";
        let ev = tags(xml);
        assert_eq!(
            ev,
            vec![
                (true, "b".to_string()),
                (true, "c".to_string()),
                (false, "c".to_string()),
                (false, "b".to_string()),
                (false, "a".to_string())
            ]
        );
    }

    #[test]
    fn truncated_trailing_tag_is_dropped() {
        let ev = tags(b"<a><b></b><c");
        assert_eq!(
            ev,
            vec![(true, "a".to_string()), (true, "b".to_string()), (false, "b".to_string())]
        );
    }

    #[test]
    fn positions_are_byte_offsets() {
        let xml = b"<a><bb></bb></a>";
        let pos: Vec<usize> = Lexer::tags_only(xml).map(|e| e.pos()).collect();
        assert_eq!(pos, vec![0, 3, 7, 12]);
    }

    #[test]
    fn skip_to_tag_start_resumes_at_bracket() {
        let xml = b"ignored text<a></a>";
        let mut lex = Lexer::tags_only(xml);
        lex.skip_to_tag_start();
        assert_eq!(lex.position(), 12);
        let ev: Vec<_> = lex.collect();
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn attribute_value_containing_gt_does_not_end_tag() {
        let xml = br#"<a title="1 > 0"><b/></a>"#;
        let ev = tags(xml);
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[1], (true, "b".to_string()));
    }

    #[test]
    fn whitespace_in_closing_tag_is_tolerated() {
        let ev = tags(b"<a></a >");
        assert_eq!(ev, vec![(true, "a".to_string()), (false, "a".to_string())]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(tags(b"").len(), 0);
        assert_eq!(tags(b"   ").len(), 0);
    }
}
