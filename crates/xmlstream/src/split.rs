//! The arbitrary-byte chunk splitter of the PP-Transducer (§3.2 step 1, §5).
//!
//! The split phase skips forward in the stream by a target chunk size and then
//! searches sequentially for the next opening angle bracket, so only a handful
//! of bytes are inspected per chunk. Chunks are contiguous, non-overlapping
//! and cover the whole input; they are *not* well-formed XML fragments.

use std::ops::Range;

/// One chunk of the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Sequence number of the chunk in document order (0-based).
    pub index: usize,
    /// Byte range of the chunk within the input.
    pub range: Range<usize>,
}

impl Chunk {
    /// Length of the chunk in bytes.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` if the chunk covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Splits `data` into chunks of roughly `target_size` bytes.
///
/// Every chunk boundary (other than the very start and very end of the input)
/// is placed on the next `<` at or after the target offset, mirroring the
/// paper's prototype: the sequential work per chunk is limited to the few
/// bytes scanned while looking for that bracket. If no `<` is found before the
/// end of the input the remaining bytes are merged into the previous chunk
/// (the "low tag density" caveat of §5).
///
/// `target_size == 0` is treated as 1. An empty input produces no chunks.
pub fn split_chunks(data: &[u8], target_size: usize) -> Vec<Chunk> {
    let target = target_size.max(1);
    let mut chunks = Vec::with_capacity(data.len() / target + 1);
    if data.is_empty() {
        return chunks;
    }
    let mut start = 0usize;
    while start < data.len() {
        let tentative = start.saturating_add(target);
        let end = if tentative >= data.len() {
            data.len()
        } else {
            // Scan forward for the next '<'. The bytes scanned here are the
            // sequential cost of the split phase.
            match data[tentative..].iter().position(|&b| b == b'<') {
                Some(off) => tentative + off,
                None => data.len(),
            }
        };
        let end = end.max(start + 1).min(data.len());
        chunks.push(Chunk { index: chunks.len(), range: start..end });
        start = end;
    }
    chunks
}

/// Number of bytes the splitter had to inspect to place the boundaries of the
/// given chunking (the sequential cost model used by the evaluation harness).
pub fn split_scan_cost(data: &[u8], chunks: &[Chunk]) -> usize {
    let mut cost = 0usize;
    for w in chunks.windows(2) {
        let boundary = w[1].range.start;
        // The scan for this boundary started at the target offset, i.e. at
        // `previous start + target`; we approximate the cost by the distance
        // from the last non-'<' byte run: boundary byte itself plus preceding
        // bytes from the tentative position. Since the tentative position is
        // not recorded on the chunk we conservatively count the bytes between
        // the end of the previous chunk's "pure" target and the boundary.
        let prev_start = w[0].range.start;
        let tentative = prev_start.saturating_add(w[0].range.len().min(boundary - prev_start));
        cost += boundary - tentative.min(boundary) + 1;
    }
    cost.min(data.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_input_exactly() {
        let data = b"<a><b>text</b><c>more</c><d></d></a>";
        for target in [1usize, 3, 5, 10, 100] {
            let chunks = split_chunks(data, target);
            assert_eq!(chunks[0].range.start, 0);
            assert_eq!(chunks.last().unwrap().range.end, data.len());
            for w in chunks.windows(2) {
                assert_eq!(w[0].range.end, w[1].range.start, "chunks must be contiguous");
            }
        }
    }

    #[test]
    fn boundaries_fall_on_angle_brackets() {
        let data = b"<a><bbbb>some longer text content here</bbbb><c></c></a>";
        let chunks = split_chunks(data, 7);
        for c in &chunks[1..] {
            assert_eq!(data[c.range.start], b'<', "chunk must start at '<'");
        }
    }

    #[test]
    fn single_chunk_when_target_exceeds_input() {
        let data = b"<a></a>";
        let chunks = split_chunks(data, 1024);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].range, 0..data.len());
    }

    #[test]
    fn empty_input_gives_no_chunks() {
        assert!(split_chunks(b"", 10).is_empty());
    }

    #[test]
    fn zero_target_is_clamped() {
        let data = b"<a></a>";
        let chunks = split_chunks(data, 0);
        assert!(!chunks.is_empty());
        assert_eq!(chunks.last().unwrap().range.end, data.len());
    }

    #[test]
    fn low_tag_density_tail_is_merged() {
        // No '<' after the target offset: the rest of the input becomes part
        // of the same chunk rather than producing a tagless chunk.
        let data = b"<a>0123456789 no more tags after this point";
        let chunks = split_chunks(data, 5);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].range, 0..data.len());
    }

    #[test]
    fn indices_are_sequential() {
        let data = b"<a><b></b><c></c><d></d><e></e></a>";
        let chunks = split_chunks(data, 4);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn scan_cost_is_bounded_by_input() {
        let data = b"<a><b>xxxxxxxxxxxxxxxxxxxx</b><c></c></a>";
        let chunks = split_chunks(data, 6);
        assert!(split_scan_cost(data, &chunks) <= data.len());
    }
}
