//! Well-formed fragment splitting — the strategy used by the baseline engines.
//!
//! Prior parallel XML processors (§2.1, §5 "Comparison to other approaches")
//! split the stream into *well-formed fragments*: sequences of complete
//! elements that can be parsed independently. Finding those boundaries
//! requires a sequential scan that tracks element nesting, which is exactly
//! the sequential bottleneck the PP-Transducer avoids. This module implements
//! that splitter so the baselines can be compared head-to-head, and reports
//! how many bytes the sequential scan had to inspect.

use crate::lexer::Lexer;
use crate::XmlEvent;
use std::ops::Range;

/// Result of splitting a document into well-formed fragments.
#[derive(Debug, Clone)]
pub struct FragmentSplit {
    /// Name of the root element (fragments are its children).
    pub root_name: Vec<u8>,
    /// Byte offset of the first byte after the root's opening tag.
    pub content_start: usize,
    /// Byte offset of the root's closing tag.
    pub content_end: usize,
    /// Fragments: each range covers one or more *complete* depth-1 child
    /// elements of the root.
    pub fragments: Vec<Range<usize>>,
    /// Number of bytes the sequential scan inspected to find the boundaries
    /// (for well-formed splitting this is the whole content region, because
    /// nesting must be tracked from the start).
    pub scanned_bytes: usize,
    /// Size in bytes of the largest single depth-1 child (large items force
    /// large fragments, the effect explored by Figs 17/18 and 20).
    pub largest_item: usize,
}

impl FragmentSplit {
    /// Total number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// `true` when the document had no depth-1 children.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

/// Splits `data` into well-formed fragments of roughly `target_size` bytes.
///
/// The scan walks tag events sequentially, tracking nesting depth; a fragment
/// boundary may only be placed between two depth-1 children of the root.
/// Fragments therefore never break an element apart, but they can be much
/// larger than `target_size` when individual items are large — this is the
/// skew effect the paper measures in Figs 17/18/20.
pub fn split_well_formed(data: &[u8], target_size: usize) -> FragmentSplit {
    let target = target_size.max(1);
    let mut root_name: Vec<u8> = Vec::new();
    let mut content_start = 0usize;
    let mut content_end = data.len();
    let mut fragments: Vec<Range<usize>> = Vec::new();
    let mut largest_item = 0usize;

    let mut depth = 0usize;
    let mut frag_start: Option<usize> = None;
    let mut item_start = 0usize;
    let mut last_item_end = 0usize;

    for ev in Lexer::tags_only(data) {
        match ev {
            XmlEvent::Open { name, pos } => {
                if depth == 0 {
                    root_name = name.to_vec();
                    // Content starts after the root opening tag: find its '>'.
                    let rel = data[pos..].iter().position(|&b| b == b'>').unwrap_or(0);
                    content_start = pos + rel + 1;
                } else if depth == 1 {
                    item_start = pos;
                    if frag_start.is_none() {
                        frag_start = Some(pos);
                    }
                }
                depth += 1;
            }
            XmlEvent::Close { pos, .. } => {
                depth = depth.saturating_sub(1);
                if depth == 1 {
                    // A depth-1 child just closed.
                    let rel = data[pos..].iter().position(|&b| b == b'>').unwrap_or(0);
                    let item_end = pos + rel + 1;
                    last_item_end = item_end;
                    largest_item = largest_item.max(item_end - item_start);
                    if let Some(start) = frag_start {
                        if item_end - start >= target {
                            fragments.push(start..item_end);
                            frag_start = None;
                        }
                    }
                } else if depth == 0 {
                    content_end = pos;
                }
            }
            _ => {}
        }
    }
    if let Some(start) = frag_start {
        if last_item_end > start {
            fragments.push(start..last_item_end);
        }
    }
    FragmentSplit {
        root_name,
        content_start,
        content_end,
        fragments,
        scanned_bytes: data.len(),
        largest_item,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Vec<u8> {
        let mut s = String::from("<root>");
        for i in 0..20 {
            s.push_str(&format!("<item><name>n{i}</name><desc>text {i}</desc></item>"));
        }
        s.push_str("</root>");
        s.into_bytes()
    }

    #[test]
    fn fragments_are_well_formed() {
        let data = doc();
        let split = split_well_formed(&data, 100);
        assert!(!split.is_empty());
        for frag in &split.fragments {
            let bytes = &data[frag.clone()];
            let mut depth = 0i64;
            for ev in Lexer::tags_only(bytes) {
                match ev {
                    XmlEvent::Open { .. } => depth += 1,
                    XmlEvent::Close { .. } => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "fragment must never close more than it opened");
            }
            assert_eq!(depth, 0, "fragment must be balanced");
        }
    }

    #[test]
    fn fragments_cover_all_items_exactly_once() {
        let data = doc();
        let split = split_well_formed(&data, 80);
        let mut item_count = 0;
        for frag in &split.fragments {
            let bytes = &data[frag.clone()];
            item_count += Lexer::tags_only(bytes)
                .filter(|e| matches!(e, XmlEvent::Open { name, .. } if *name == b"item"))
                .count();
        }
        assert_eq!(item_count, 20);
        for w in split.fragments.windows(2) {
            assert!(w[0].end <= w[1].start, "fragments must not overlap");
        }
    }

    #[test]
    fn root_name_and_content_bounds_are_detected() {
        let data = doc();
        let split = split_well_formed(&data, 100);
        assert_eq!(split.root_name, b"root");
        assert_eq!(&data[..split.content_start], b"<root>");
        assert!(data[split.content_end..].starts_with(b"</root>"));
    }

    #[test]
    fn single_huge_item_forces_single_fragment() {
        let mut s = String::from("<root><big>");
        s.push_str(&"x".repeat(500));
        s.push_str("</big></root>");
        let data = s.into_bytes();
        let split = split_well_formed(&data, 50);
        assert_eq!(split.fragments.len(), 1);
        assert!(split.largest_item >= 500);
    }

    #[test]
    fn empty_root_has_no_fragments() {
        let split = split_well_formed(b"<root></root>", 10);
        assert!(split.is_empty());
        assert_eq!(split.root_name, b"root");
    }

    #[test]
    fn scanned_bytes_equals_whole_input() {
        let data = doc();
        let split = split_well_formed(&data, 100);
        assert_eq!(split.scanned_bytes, data.len());
    }

    #[test]
    fn large_target_yields_one_fragment() {
        let data = doc();
        let split = split_well_formed(&data, usize::MAX / 2);
        assert_eq!(split.fragments.len(), 1);
    }
}
