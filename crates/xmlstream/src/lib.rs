//! XML byte-stream substrate for the PP-Transducer system.
//!
//! This crate provides everything the query engines need to look at raw XML
//! bytes:
//!
//! * [`event`] — the tag/text/attribute event model shared by every engine.
//! * [`lexer`] — a resumable, allocation-free lexer that turns a byte slice
//!   into a stream of events. It is the paper's "first transducer" (§3.1): the
//!   component that converts the XML byte stream into open/close tag events.
//! * [`interner`] — a small symbol table mapping tag names to dense integer
//!   symbols, shared between the query compiler and the runtime.
//! * [`split`] — the *arbitrary-byte* chunk splitter used by the
//!   PP-Transducer (split at a target size, then skip to the next `<`).
//! * [`window`] — the incremental, tail-carrying window splitter used by the
//!   online runtime and the bounded-memory reader API.
//! * [`fragment`] — the *well-formed fragment* splitter used by all the
//!   baseline engines (and identified by the paper as their sequential
//!   bottleneck).
//! * [`dom`] — a compact in-memory document tree used by the DOM baseline
//!   (the "PugiXML-like" engine) and by the indexed DBMS-like baseline.
//! * [`writer`] — an escaping XML writer used by the synthetic dataset
//!   generators.
//!
//! The lexer intentionally mirrors the limitation stated in §5 of the paper:
//! a chunk is assumed to start at a `<` that begins a tag, so documents with
//! comments or CDATA sections spanning chunk boundaries are out of scope. The
//! sequential lexer used on whole documents does skip comments, processing
//! instructions, DOCTYPE declarations and CDATA sections.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod dom;
pub mod error;
pub mod event;
pub mod fragment;
pub mod interner;
pub mod lexer;
pub mod split;
pub mod window;
pub mod writer;

pub use dom::{Document, NodeId};
pub use error::XmlError;
pub use event::XmlEvent;
pub use interner::{Symbol, SymbolTable, OTHER_SYMBOL};
pub use lexer::{Lexer, LexerConfig};
pub use split::{split_chunks, Chunk};
pub use window::{pump_reader, SharedWindow, WindowSplitter};
pub use writer::XmlWriter;
