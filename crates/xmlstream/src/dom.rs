//! A compact in-memory document tree.
//!
//! This DOM exists to support the baseline engines: the "PugiXML-like"
//! fragment+DOM engine parses each well-formed fragment into one of these
//! trees and evaluates XPath over it, and the DBMS-like indexed engine builds
//! its element index from the same structure. It intentionally allocates a
//! node per element — that per-element memory traffic is precisely the effect
//! the paper's Fig 9 attributes PugiXML's scaling plateau to.

use crate::error::XmlError;
use crate::lexer::Lexer;
use crate::XmlEvent;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One element node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element name.
    pub name: Vec<u8>,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Child elements in document order.
    pub children: Vec<NodeId>,
    /// Concatenated character data directly below this element.
    pub text: Vec<u8>,
    /// Attributes in document order.
    pub attrs: Vec<(Vec<u8>, Vec<u8>)>,
    /// Byte offset of the element's opening `<` in the source buffer.
    pub start: usize,
    /// Byte offset just past the element's closing tag.
    pub end: usize,
}

/// An XML document parsed into an arena of element nodes.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Document {
    /// Parses `data` into a document tree.
    ///
    /// Unlike the lexer, the DOM builder requires well-formed input: every
    /// element must be properly nested and closed, and there must be exactly
    /// one root element.
    pub fn parse(data: &[u8]) -> Result<Document, XmlError> {
        let mut doc = Document { nodes: Vec::new(), root: None };
        let mut stack: Vec<NodeId> = Vec::new();
        for ev in Lexer::new(data) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    let id = NodeId(doc.nodes.len() as u32);
                    let parent = stack.last().copied();
                    doc.nodes.push(Node {
                        name: name.to_vec(),
                        parent,
                        children: Vec::new(),
                        text: Vec::new(),
                        attrs: Vec::new(),
                        start: pos,
                        end: pos,
                    });
                    match parent {
                        Some(p) => doc.nodes[p.index()].children.push(id),
                        None => {
                            if doc.root.is_some() {
                                return Err(XmlError::TextOutsideRoot { pos });
                            }
                            doc.root = Some(id);
                        }
                    }
                    stack.push(id);
                }
                XmlEvent::Close { name, pos } => {
                    let id = stack.pop().ok_or_else(|| XmlError::MismatchedClose {
                        pos,
                        expected: String::new(),
                        found: String::from_utf8_lossy(name).into_owned(),
                    })?;
                    let node = &mut doc.nodes[id.index()];
                    if node.name != name {
                        return Err(XmlError::MismatchedClose {
                            pos,
                            expected: String::from_utf8_lossy(&node.name).into_owned(),
                            found: String::from_utf8_lossy(name).into_owned(),
                        });
                    }
                    let rel = data[pos..].iter().position(|&b| b == b'>').unwrap_or(0);
                    node.end = pos + rel + 1;
                }
                XmlEvent::Attr { name, value, .. } => {
                    if let Some(&id) = stack.last() {
                        doc.nodes[id.index()].attrs.push((name.to_vec(), value.to_vec()));
                    }
                }
                XmlEvent::Text { text, .. } => {
                    if let Some(&id) = stack.last() {
                        doc.nodes[id.index()].text.extend_from_slice(text);
                    }
                }
            }
        }
        if !stack.is_empty() {
            return Err(XmlError::UnclosedElements { open: stack.len() });
        }
        if doc.root.is_none() {
            return Err(XmlError::EmptyDocument);
        }
        Ok(doc)
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        // UNWRAP-OK: `parse()` errors out on rootless input, so any
        // constructed document has a root.
        self.root.expect("parse() guarantees a root")
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of element nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the document holds no elements (never true for a parsed
    /// document).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over all node ids in document order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Name of node `id`.
    pub fn name(&self, id: NodeId) -> &[u8] {
        &self.nodes[id.index()].name
    }

    /// Depth of node `id` (root = 1, matching the dataset statistics of
    /// Table 1).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.nodes[cur.index()].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Descendant node ids of `id` (excluding `id`), document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Approximate heap footprint of the tree in bytes. Used by the Fig 9
    /// working-set proxy: the DOM baseline's per-thread data grows with the
    /// fragment size, whereas the PP-Transducer's per-thread state does not.
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<Node>();
        for n in &self.nodes {
            total += n.name.capacity()
                + n.text.capacity()
                + n.children.capacity() * std::mem::size_of::<NodeId>()
                + n.attrs.iter().map(|(k, v)| k.capacity() + v.capacity()).sum::<usize>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_expected_tree() {
        let doc = Document::parse(b"<a><b><d/></b><b><c/></b></a>").unwrap();
        assert_eq!(doc.len(), 5);
        let root = doc.root();
        assert_eq!(doc.name(root), b"a");
        assert_eq!(doc.children(root).len(), 2);
        let b0 = doc.children(root)[0];
        assert_eq!(doc.name(b0), b"b");
        assert_eq!(doc.name(doc.children(b0)[0]), b"d");
    }

    #[test]
    fn text_and_attrs_are_attached() {
        let doc = Document::parse(br#"<a id="1">hello<b>world</b></a>"#).unwrap();
        let root = doc.root();
        assert_eq!(doc.node(root).attrs, vec![(b"id".to_vec(), b"1".to_vec())]);
        assert_eq!(doc.node(root).text, b"hello");
        let b = doc.children(root)[0];
        assert_eq!(doc.node(b).text, b"world");
    }

    #[test]
    fn depth_and_descendants() {
        let doc = Document::parse(b"<a><b><c><d/></c></b></a>").unwrap();
        let root = doc.root();
        let all = doc.descendants(root);
        assert_eq!(all.len(), 3);
        let deepest = *all.last().unwrap();
        assert_eq!(doc.name(deepest), b"d");
        assert_eq!(doc.depth(deepest), 4);
        assert_eq!(doc.depth(root), 1);
    }

    #[test]
    fn spans_cover_elements() {
        let data = b"<a><b>x</b></a>";
        let doc = Document::parse(data).unwrap();
        let root = doc.root();
        assert_eq!(doc.node(root).start, 0);
        assert_eq!(doc.node(root).end, data.len());
        let b = doc.children(root)[0];
        assert_eq!(&data[doc.node(b).start..doc.node(b).end], b"<b>x</b>");
    }

    #[test]
    fn mismatched_close_is_an_error() {
        assert!(matches!(
            Document::parse(b"<a><b></c></a>"),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    #[test]
    fn unclosed_elements_are_an_error() {
        assert!(matches!(Document::parse(b"<a><b>"), Err(XmlError::UnclosedElements { open: 2 })));
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(matches!(Document::parse(b"   "), Err(XmlError::EmptyDocument)));
    }

    #[test]
    fn multiple_roots_are_an_error() {
        assert!(Document::parse(b"<a></a><b></b>").is_err());
    }

    #[test]
    fn heap_bytes_grows_with_document() {
        let small = Document::parse(b"<a><b/></a>").unwrap();
        let mut big_src = String::from("<a>");
        for i in 0..100 {
            big_src.push_str(&format!("<item{i}>text goes here</item{i}>"));
        }
        big_src.push_str("</a>");
        let big = Document::parse(big_src.as_bytes()).unwrap();
        assert!(big.heap_bytes() > small.heap_bytes());
    }
}
