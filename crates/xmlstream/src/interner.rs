//! Tag-name interning.
//!
//! The automaton's input alphabet Σ is the set of tag names that appear in the
//! query set plus a single catch-all symbol for "any other element" (state 0's
//! self-loop alphabet in Fig 1b). Interning happens once at query-compile time;
//! at run time the lexer performs a read-only lookup per tag, so the table is
//! shared freely between worker threads (it is one of the "largest data
//! structures … shared between threads" that §5.2 credits for the good cache
//! behaviour).

use std::collections::HashMap;

/// A dense integer identifier for a tag name known to the query set.
///
/// Symbol `0` is reserved for [`OTHER_SYMBOL`], the catch-all for names that do
/// not occur in any query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// The catch-all symbol assigned to every tag name that no query mentions.
pub const OTHER_SYMBOL: Symbol = Symbol(0);

impl Symbol {
    /// Index usable for dense per-symbol tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between tag names and [`Symbol`]s.
///
/// Construction interns names (query compile time); lookups never allocate and
/// unknown names resolve to [`OTHER_SYMBOL`].
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: HashMap<Vec<u8>, Symbol>,
    names: Vec<Vec<u8>>,
}

impl SymbolTable {
    /// Creates a table containing only [`OTHER_SYMBOL`].
    pub fn new() -> Self {
        SymbolTable { by_name: HashMap::new(), names: vec![b"*other*".to_vec()] }
    }

    /// Interns `name`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, name: &[u8]) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_vec());
        self.by_name.insert(name.to_vec(), sym);
        sym
    }

    /// Looks up `name`, returning [`OTHER_SYMBOL`] if it was never interned.
    #[inline]
    pub fn lookup(&self, name: &[u8]) -> Symbol {
        self.by_name.get(name).copied().unwrap_or(OTHER_SYMBOL)
    }

    /// Returns the name interned for `sym` (the placeholder name for
    /// [`OTHER_SYMBOL`]).
    pub fn name(&self, sym: Symbol) -> &[u8] {
        &self.names[sym.index()]
    }

    /// Number of symbols including the catch-all.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when only the catch-all symbol exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() == 1
    }

    /// Iterates over `(symbol, name)` pairs, excluding the catch-all.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &[u8])> {
        self.names.iter().enumerate().skip(1).map(|(i, n)| (Symbol(i as u32), n.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern(b"a");
        let b = t.intern(b"b");
        assert_ne!(a, b);
        assert_eq!(t.intern(b"a"), a);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unknown_names_map_to_other() {
        let mut t = SymbolTable::new();
        t.intern(b"known");
        assert_eq!(t.lookup(b"unknown"), OTHER_SYMBOL);
        assert_ne!(t.lookup(b"known"), OTHER_SYMBOL);
    }

    #[test]
    fn names_round_trip() {
        let mut t = SymbolTable::new();
        let s = t.intern(b"keyword");
        assert_eq!(t.name(s), b"keyword");
        assert_eq!(t.name(OTHER_SYMBOL), b"*other*");
    }

    #[test]
    fn iter_skips_catch_all() {
        let mut t = SymbolTable::new();
        t.intern(b"x");
        t.intern(b"y");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_vec()).collect();
        assert_eq!(collected, vec![b"x".to_vec(), b"y".to_vec()]);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
