//! The event model shared by every engine in the workspace.
//!
//! The lexer produces a flat stream of [`XmlEvent`]s. The pushdown transducer
//! consumes only `Open`/`Close` events (tag events are the input alphabet Σ of
//! the automaton, §2.2); the DOM builder and the predicate filter additionally
//! use `Text` and `Attr` events.

/// One lexical event of an XML byte stream.
///
/// Events borrow from the underlying input buffer; `pos` is the byte offset of
/// the event within *that buffer* (for chunked processing the caller rebases
/// the offset by the chunk's starting offset to obtain a document-absolute
/// position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// An opening tag `<name ...>`. `pos` is the offset of the `<`.
    Open { name: &'a [u8], pos: usize },
    /// A closing tag `</name>` (also emitted for the implicit close of a
    /// self-closing tag `<name/>`). `pos` is the offset of the `<` (for a
    /// self-closing tag, the offset of the original `<`).
    Close { name: &'a [u8], pos: usize },
    /// An attribute `name="value"` belonging to the most recent `Open` event.
    Attr { name: &'a [u8], value: &'a [u8], pos: usize },
    /// Character data between tags. Pure-whitespace runs are still reported;
    /// callers that do not care simply skip them.
    Text { text: &'a [u8], pos: usize },
}

impl<'a> XmlEvent<'a> {
    /// Byte offset of the event in the buffer it was lexed from.
    #[inline]
    pub fn pos(&self) -> usize {
        match *self {
            XmlEvent::Open { pos, .. }
            | XmlEvent::Close { pos, .. }
            | XmlEvent::Attr { pos, .. }
            | XmlEvent::Text { pos, .. } => pos,
        }
    }

    /// `true` for `Open` events.
    #[inline]
    pub fn is_open(&self) -> bool {
        matches!(self, XmlEvent::Open { .. })
    }

    /// `true` for `Close` events.
    #[inline]
    pub fn is_close(&self) -> bool {
        matches!(self, XmlEvent::Close { .. })
    }

    /// The tag name for `Open`/`Close`/`Attr` events, `None` for text.
    #[inline]
    pub fn name(&self) -> Option<&'a [u8]> {
        match *self {
            XmlEvent::Open { name, .. }
            | XmlEvent::Close { name, .. }
            | XmlEvent::Attr { name, .. } => Some(name),
            XmlEvent::Text { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let open = XmlEvent::Open { name: b"a", pos: 3 };
        assert!(open.is_open());
        assert!(!open.is_close());
        assert_eq!(open.pos(), 3);
        assert_eq!(open.name(), Some(&b"a"[..]));

        let close = XmlEvent::Close { name: b"a", pos: 9 };
        assert!(close.is_close());
        assert_eq!(close.pos(), 9);

        let text = XmlEvent::Text { text: b"hi", pos: 5 };
        assert_eq!(text.name(), None);
        assert_eq!(text.pos(), 5);

        let attr = XmlEvent::Attr { name: b"id", value: b"1", pos: 4 };
        assert_eq!(attr.name(), Some(&b"id"[..]));
    }
}
