//! "PugiXML-like" baseline: well-formed-fragment splitting, a DOM tree per
//! fragment, and tree-walking XPath evaluation.
//!
//! This engine represents the strongest conventional competitor in the
//! paper's evaluation (Fig 7): excellent single-thread speed, but its
//! throughput plateaus at higher core counts because (i) the well-formed
//! split is sequential and (ii) building a DOM per fragment moves far more
//! memory per input byte than the PP-Transducer's constant-size state
//! mappings (the effect Fig 9 shows as falling IPC).

use crate::domxpath::count_query;
use crate::fragment_stream::fragment_parallel;
use crate::result::BaselineResult;
use ppt_xmlstream::Document;
use ppt_xpath::{parse_query, Query, XPathError};
use std::time::Instant;

/// Fragment + DOM + XPath baseline.
#[derive(Debug, Clone)]
pub struct FragmentDomEngine {
    queries: Vec<Query>,
    fragment_size: usize,
}

impl FragmentDomEngine {
    /// Parses the query set.
    pub fn new<S: AsRef<str>>(queries: &[S]) -> Result<Self, XPathError> {
        let queries: Result<Vec<Query>, XPathError> =
            queries.iter().map(|q| parse_query(q.as_ref())).collect();
        Ok(FragmentDomEngine {
            queries: queries?,
            fragment_size: crate::fragment_stream::DEFAULT_FRAGMENT_SIZE,
        })
    }

    /// Sets the target fragment size in bytes.
    pub fn fragment_size(mut self, bytes: usize) -> Self {
        self.fragment_size = bytes.max(1);
        self
    }

    /// Evaluates the query set over a whole document without splitting
    /// (single DOM, single thread). This is both the "PugiXML (not split)"
    /// configuration of Fig 11 and the exact-semantics oracle used by the
    /// integration tests.
    pub fn run_whole_document(
        &self,
        data: &[u8],
    ) -> Result<BaselineResult, ppt_xmlstream::XmlError> {
        let start = Instant::now();
        let doc = Document::parse(data)?;
        let parse_time = start.elapsed();
        let query_start = Instant::now();
        let match_counts: Vec<usize> = self.queries.iter().map(|q| count_query(&doc, q)).collect();
        Ok(BaselineResult {
            match_counts,
            split_time: parse_time,
            query_time: query_start.elapsed(),
            total_time: start.elapsed(),
            bytes: data.len(),
            threads: 1,
            idle_fraction: 0.0,
            working_set_bytes: doc.heap_bytes(),
        })
    }

    /// Processes `data` with `threads` workers, one DOM per fragment.
    pub fn run(&self, data: &[u8], threads: usize) -> BaselineResult {
        let start = Instant::now();
        let queries = &self.queries;
        let (split, per_fragment, split_time, query_time, idle) =
            fragment_parallel(data, self.fragment_size, threads, |split, range| {
                // Re-create a well-formed document for the fragment by
                // wrapping it in the original root tags (fragments are
                // sequences of complete depth-1 children).
                let mut wrapped = Vec::with_capacity(
                    split.content_start + range.len() + (data.len() - split.content_end),
                );
                wrapped.extend_from_slice(&data[..split.content_start]);
                wrapped.extend_from_slice(&data[range.clone()]);
                wrapped.extend_from_slice(&data[split.content_end..]);
                match Document::parse(&wrapped) {
                    Ok(doc) => {
                        let counts: Vec<usize> =
                            queries.iter().map(|q| count_query(&doc, q)).collect();
                        (counts, doc.heap_bytes())
                    }
                    Err(_) => (vec![0; queries.len()], 0),
                }
            });

        // Per-fragment counts add up; matches on the root element itself would
        // be double-counted per fragment, so they are corrected afterwards.
        let fragments = split.fragments.len().max(1);
        let mut match_counts = vec![0usize; self.queries.len()];
        let mut working_set = 0usize;
        for (counts, bytes) in &per_fragment {
            working_set = working_set.max(*bytes);
            for (i, c) in counts.iter().enumerate() {
                match_counts[i] += c;
            }
        }
        for (i, query) in self.queries.iter().enumerate() {
            if query_targets_root(query) && !per_fragment.is_empty() {
                // The root element was counted once per fragment; keep one.
                match_counts[i] = match_counts[i].saturating_sub(fragments - 1);
            }
        }

        BaselineResult {
            match_counts,
            split_time,
            query_time,
            total_time: start.elapsed(),
            bytes: data.len(),
            threads,
            idle_fraction: idle,
            working_set_bytes: working_set,
        }
    }
}

/// `true` when the query's result set is the root element itself (a one-step
/// child-axis query), which fragment wrapping would otherwise double count.
fn query_targets_root(query: &Query) -> bool {
    query.path.len() == 1 && query.path.steps[0].axis == ppt_xpath::Axis::Child
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Vec<u8> {
        let mut s = String::from("<a>");
        for i in 0..30 {
            s.push_str(&format!("<b><d>t{i}</d></b><b><c/><c/></b>"));
        }
        s.push_str("</a>");
        s.into_bytes()
    }

    #[test]
    fn dom_baseline_matches_ppt_on_fragmented_run() {
        let queries = ["/a/b/c", "//d", "/a/b[d]", "/a"];
        let data = doc();
        let engine = FragmentDomEngine::new(&queries).unwrap().fragment_size(64);
        let ppt = ppt_core::Engine::from_queries(&queries).unwrap();
        let b = engine.run(&data, 3);
        let p = ppt.run(&data);
        let ppt_counts: Vec<usize> = (0..queries.len()).map(|i| p.match_count(i)).collect();
        assert_eq!(b.match_counts, ppt_counts);
    }

    #[test]
    fn whole_document_mode_is_the_oracle() {
        let queries = ["/a/b/c", "//c", "/a/b[d]"];
        let data = doc();
        let engine = FragmentDomEngine::new(&queries).unwrap();
        let whole = engine.run_whole_document(&data).unwrap();
        assert_eq!(whole.match_counts, vec![60, 60, 30]);
        assert!(whole.working_set_bytes > data.len() / 2, "a DOM is much bigger than the input");
    }

    #[test]
    fn malformed_input_is_an_error_in_whole_document_mode() {
        let engine = FragmentDomEngine::new(&["/a"]).unwrap();
        assert!(engine.run_whole_document(b"<a><b></a>").is_err());
    }
}
