//! "Expat-like" baseline: well-formed-fragment splitting, SAX-event
//! materialisation, then an in-order transducer over the events.
//!
//! The defining characteristic of this strategy (and the reason the paper's
//! Fig 7 shows Expat plateauing early) is that every event allocates through a
//! *shared* allocator: with many worker threads the allocator lock becomes the
//! bottleneck rather than the XML processing itself. We reproduce that shape
//! faithfully by routing the per-event name allocations through one global
//! mutex — exactly the contention pattern of a non-thread-caching `malloc`.
//! Construct the engine with [`FragmentSaxEngine::contended_allocator`]
//! `(false)` to measure the same engine without the shared-allocator effect.

use crate::fragment_stream::fragment_parallel;
use crate::result::BaselineResult;
use ppt_automaton::{StateId, Transducer};
use ppt_core::filter::apply_filters;
use ppt_core::parallel::ResolvedMatch;
use ppt_xmlstream::{Lexer, XmlEvent};
use ppt_xpath::{compile_queries, QueryPlan, XPathError};
use std::time::Instant;

/// A materialised SAX event with an owned tag name (the per-event allocation
/// an event-callback parser performs).
#[derive(Debug, Clone)]
enum SaxEvent {
    Open { name: Vec<u8>, pos: usize },
    Close { pos: usize },
}

/// Global allocator gate shared by every worker (models a non-thread-caching
/// `malloc`).
static ALLOC_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn alloc_name(name: &[u8], contended: bool) -> Vec<u8> {
    if contended {
        // UNWRAP-OK: the guarded region cannot panic (a `to_vec` clone), so
        // the gate is never poisoned; this baseline deliberately models a
        // contended global allocator lock.
        let _guard = ALLOC_GATE.lock().unwrap();
        name.to_vec()
    } else {
        name.to_vec()
    }
}

/// Fragment + SAX + transducer baseline.
#[derive(Debug, Clone)]
pub struct FragmentSaxEngine {
    plan: QueryPlan,
    transducer: Transducer,
    fragment_size: usize,
    contended: bool,
}

impl FragmentSaxEngine {
    /// Compiles the engine for a query set.
    pub fn new<S: AsRef<str>>(queries: &[S]) -> Result<Self, XPathError> {
        let plan = compile_queries(queries)?;
        let transducer = Transducer::from_plan(&plan);
        Ok(FragmentSaxEngine {
            plan,
            transducer,
            fragment_size: crate::fragment_stream::DEFAULT_FRAGMENT_SIZE,
            contended: true,
        })
    }

    /// Sets the target fragment size in bytes.
    pub fn fragment_size(mut self, bytes: usize) -> Self {
        self.fragment_size = bytes.max(1);
        self
    }

    /// Enables or disables the shared-allocator contention (on by default).
    pub fn contended_allocator(mut self, contended: bool) -> Self {
        self.contended = contended;
        self
    }

    /// Processes `data` with `threads` workers.
    pub fn run(&self, data: &[u8], threads: usize) -> BaselineResult {
        let start = Instant::now();
        let t = &self.transducer;
        let contended = self.contended;

        let (split, per_fragment, split_time, query_time, idle) =
            fragment_parallel(data, self.fragment_size, threads, |split, range| {
                // Phase 1 (the "Expat" part): materialise SAX events,
                // allocating each tag name.
                let slice = &data[range.clone()];
                let mut events: Vec<SaxEvent> = Vec::new();
                for ev in Lexer::tags_only(slice) {
                    match ev {
                        XmlEvent::Open { name, pos } => events.push(SaxEvent::Open {
                            name: alloc_name(name, contended),
                            pos: range.start + pos,
                        }),
                        XmlEvent::Close { pos, .. } => {
                            events.push(SaxEvent::Close { pos: range.start + pos })
                        }
                        _ => {}
                    }
                }
                // Phase 2: drive the in-order transducer from the SAX events.
                let root_state = t.step(t.initial(), t.classify_name(&split.root_name));
                let events_bytes = events.len() * std::mem::size_of::<SaxEvent>();
                (run_events(t, &events, data, root_state, 1), events_bytes)
            });

        let mut matches: Vec<ResolvedMatch> = Vec::new();
        if !split.root_name.is_empty() {
            let root_state = t.step(t.initial(), t.classify_name(&split.root_name));
            for &q in t.output(root_state) {
                matches.push(ResolvedMatch { pos: 0, end: data.len(), depth: 1, subquery: q });
            }
        }
        let mut working_set = 0usize;
        for (frag_matches, bytes) in per_fragment {
            working_set = working_set.max(bytes);
            matches.extend(frag_matches);
        }
        matches.sort_by_key(|m| m.pos);
        let outcome = apply_filters(&self.plan, &matches);
        BaselineResult {
            match_counts: outcome.matches.iter().map(|m| m.len()).collect(),
            split_time,
            query_time,
            total_time: start.elapsed(),
            bytes: data.len(),
            threads,
            idle_fraction: idle,
            working_set_bytes: working_set,
        }
    }
}

fn run_events(
    t: &Transducer,
    events: &[SaxEvent],
    data: &[u8],
    start_state: StateId,
    start_depth: u32,
) -> Vec<ResolvedMatch> {
    let mut matches = Vec::new();
    let mut state = start_state;
    let mut state_stack: Vec<StateId> = Vec::new();
    let mut open_stack: Vec<Vec<usize>> = Vec::new();
    for ev in events {
        match ev {
            SaxEvent::Open { name, pos } => {
                let next = t.step(state, t.classify_name(name));
                state_stack.push(state);
                state = next;
                let depth = start_depth + state_stack.len() as u32;
                let mut here = Vec::new();
                for &q in t.output(next) {
                    here.push(matches.len());
                    matches.push(ResolvedMatch { pos: *pos, end: usize::MAX, depth, subquery: q });
                }
                open_stack.push(here);
            }
            SaxEvent::Close { pos } => {
                if let Some(prev) = state_stack.pop() {
                    state = prev;
                }
                if let Some(idxs) = open_stack.pop() {
                    let end = data[*pos..]
                        .iter()
                        .position(|&b| b == b'>')
                        .map(|o| pos + o + 1)
                        .unwrap_or(data.len());
                    for i in idxs {
                        matches[i].end = end;
                    }
                }
            }
        }
    }
    for m in &mut matches {
        if m.end == usize::MAX {
            m.end = data.len();
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Vec<u8> {
        let mut s = String::from("<a>");
        for i in 0..40 {
            s.push_str(&format!("<b><d>x{i}</d></b><b><c/></b>"));
        }
        s.push_str("</a>");
        s.into_bytes()
    }

    #[test]
    fn sax_baseline_matches_ppt() {
        let queries = ["/a/b/c", "//d", "/a/b[d]"];
        let data = doc();
        let engine = FragmentSaxEngine::new(&queries).unwrap().fragment_size(64);
        let ppt = ppt_core::Engine::from_queries(&queries).unwrap();
        let b = engine.run(&data, 2);
        let p = ppt.run(&data);
        let ppt_counts: Vec<usize> = (0..queries.len()).map(|i| p.match_count(i)).collect();
        assert_eq!(b.match_counts, ppt_counts);
        assert!(b.working_set_bytes > 0, "SAX events must have been materialised");
    }

    #[test]
    fn uncontended_mode_gives_the_same_answers() {
        let queries = ["//c"];
        let data = doc();
        let contended = FragmentSaxEngine::new(&queries).unwrap().fragment_size(64);
        let relaxed =
            FragmentSaxEngine::new(&queries).unwrap().fragment_size(64).contended_allocator(false);
        assert_eq!(contended.run(&data, 2).match_counts, relaxed.run(&data, 2).match_counts);
    }
}
