//! DBMS-like baseline (MonetDB / Sedna): load the document once into an
//! element index, then answer queries from the index.
//!
//! The paper uses the XML-capable DBMSs to make two points (Fig 12): once the
//! index exists individual queries are much faster than streaming, but the
//! load phase costs orders of magnitude more time than a PP-Transducer pass —
//! so in a streaming setting the DBMS's effective throughput is bounded by
//! its load rate. This engine reproduces both sides: [`IndexedEngine::load`]
//! parses the whole input into a document tree plus a tag → nodes index, and
//! [`IndexedEngine::query`] answers a single query using the index (falling
//! back to full tree evaluation only for predicated queries, whose anchors it
//! still locates through the index).

use crate::domxpath::eval_query;
use crate::result::BaselineResult;
use ppt_xmlstream::{Document, NodeId, XmlError};
use ppt_xpath::{parse_query, Axis, NodeTest, Query, XPathError};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A loaded, indexed XML document.
#[derive(Debug)]
pub struct IndexedStore {
    doc: Document,
    by_tag: HashMap<Vec<u8>, Vec<NodeId>>,
    load_time: Duration,
    bytes: usize,
}

impl IndexedStore {
    /// Time spent parsing and indexing.
    pub fn load_time(&self) -> Duration {
        self.load_time
    }

    /// Approximate memory footprint of the store.
    pub fn heap_bytes(&self) -> usize {
        self.doc.heap_bytes()
            + self
                .by_tag
                .iter()
                .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }

    /// Load throughput in MB/s — the number that bounds a DBMS used in a
    /// streaming setting.
    pub fn load_throughput_mbs(&self) -> f64 {
        let secs = self.load_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1_000_000.0 / secs
    }
}

/// The indexed query engine.
#[derive(Debug)]
pub struct IndexedEngine {
    queries: Vec<Query>,
}

impl IndexedEngine {
    /// Parses the query set.
    pub fn new<S: AsRef<str>>(queries: &[S]) -> Result<Self, XPathError> {
        let queries: Result<Vec<Query>, XPathError> =
            queries.iter().map(|q| parse_query(q.as_ref())).collect();
        Ok(IndexedEngine { queries: queries? })
    }

    /// Loads `data`: parses the tree and builds the tag index. This is the
    /// expensive phase of Fig 12.
    pub fn load(&self, data: &[u8]) -> Result<IndexedStore, XmlError> {
        let start = Instant::now();
        let doc = Document::parse(data)?;
        let mut by_tag: HashMap<Vec<u8>, Vec<NodeId>> = HashMap::new();
        for id in doc.ids() {
            by_tag.entry(doc.name(id).to_vec()).or_default().push(id);
        }
        Ok(IndexedStore { doc, by_tag, load_time: start.elapsed(), bytes: data.len() })
    }

    /// Answers query `q` from the store, returning the match count and the
    /// query time.
    pub fn query(&self, store: &IndexedStore, q: usize) -> (usize, Duration) {
        let query = &self.queries[q];
        let start = Instant::now();
        let count = if query.path.has_predicates()
            || query.path.has_reverse_axes()
            || query.path.steps.iter().any(|s| !matches!(s.test, NodeTest::Name(_)))
        {
            // Predicates / reverse axes / non-name tests: evaluate on the tree
            // (the index still made the load cheap to amortise).
            eval_query(&store.doc, query).len()
        } else {
            // Pure name path: candidates from the last step's postings list,
            // verified by walking ancestors backwards through the steps.
            self.count_by_index(store, query)
        };
        (count, start.elapsed())
    }

    fn count_by_index(&self, store: &IndexedStore, query: &Query) -> usize {
        let steps = &query.path.steps;
        // The upward verification walk is deterministic (and therefore exact)
        // only when every step after the first uses the child axis; otherwise
        // fall back to full tree evaluation.
        let upward_exact = steps.iter().skip(1).all(|s| s.axis == Axis::Child);
        if !upward_exact {
            return eval_query(&store.doc, query).len();
        }
        // UNWRAP-OK: the parser rejects empty paths, so `steps` is non-empty.
        let last = match &steps.last().expect("non-empty path").test {
            NodeTest::Name(n) => n.as_bytes(),
            _ => return eval_query(&store.doc, query).len(),
        };
        let Some(candidates) = store.by_tag.get(last) else { return 0 };
        candidates.iter().filter(|&&node| path_matches_upwards(&store.doc, node, steps)).count()
    }

    /// Loads and runs every query (the composite used by throughput-style
    /// comparisons).
    pub fn run(&self, data: &[u8]) -> Result<BaselineResult, XmlError> {
        let start = Instant::now();
        let store = self.load(data)?;
        let mut match_counts = Vec::with_capacity(self.queries.len());
        let mut query_time = Duration::ZERO;
        for q in 0..self.queries.len() {
            let (count, dt) = self.query(&store, q);
            match_counts.push(count);
            query_time += dt;
        }
        Ok(BaselineResult {
            match_counts,
            split_time: store.load_time,
            query_time,
            total_time: start.elapsed(),
            bytes: data.len(),
            threads: 1,
            idle_fraction: 0.0,
            working_set_bytes: store.heap_bytes(),
        })
    }
}

/// Verifies that `node`'s ancestor chain matches `steps` ending at `node`.
/// Exact only when every step after the first uses the child axis (the caller
/// guarantees this), so the walk upward is fully deterministic.
fn path_matches_upwards(doc: &Document, node: NodeId, steps: &[ppt_xpath::Step]) -> bool {
    fn name_of(test: &NodeTest) -> &[u8] {
        match test {
            NodeTest::Name(n) => n.as_bytes(),
            _ => b"",
        }
    }
    let mut idx = steps.len() - 1;
    let mut cur = node;
    if doc.name(cur) != name_of(&steps[idx].test) {
        return false;
    }
    while idx > 0 {
        // `steps[idx].axis` relates the element of step `idx-1` (the ancestor)
        // to the element of step `idx`. The caller guarantees it is Child.
        match doc.node(cur).parent {
            Some(p) if doc.name(p) == name_of(&steps[idx - 1].test) => cur = p,
            _ => return false,
        }
        idx -= 1;
    }
    // `cur` is the element matched by the first step.
    match steps[0].axis {
        // `/name`: the first step must have matched the document root.
        Axis::Child => doc.node(cur).parent.is_none(),
        // `//name`: any depth is fine.
        Axis::Descendant => true,
        Axis::Parent | Axis::Ancestor => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Vec<u8> {
        let mut s = String::from("<s><cs>");
        for i in 0..20 {
            s.push_str(&format!("<c><a><d><t><k>w{i}</k></t></d></a><d>p{i}</d></c>"));
        }
        s.push_str("</cs><ps>");
        for i in 0..10 {
            let extra = if i % 2 == 0 { "<ph/>" } else { "" };
            s.push_str(&format!("<p>{extra}<n>name{i}</n></p>"));
        }
        s.push_str("</ps></s>");
        s.into_bytes()
    }

    #[test]
    fn index_queries_match_the_dom_oracle() {
        let queries =
            ["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c//k", "/s/cs/c[a/d/t/k]/d", "/s/ps/p[ph]/n"];
        let data = doc();
        let engine = IndexedEngine::new(&queries).unwrap();
        let result = engine.run(&data).unwrap();
        let oracle =
            crate::FragmentDomEngine::new(&queries).unwrap().run_whole_document(&data).unwrap();
        assert_eq!(result.match_counts, oracle.match_counts);
        assert_eq!(result.match_counts[0], 20);
        assert_eq!(result.match_counts[4], 5);
    }

    #[test]
    fn load_is_slower_than_individual_queries() {
        let data = doc();
        let engine = IndexedEngine::new(&["/s/cs/c/a/d/t/k"]).unwrap();
        let store = engine.load(&data).unwrap();
        let (_, query_time) = engine.query(&store, 0);
        assert!(store.load_time() >= query_time, "index loading dominates single-query time");
        assert!(store.heap_bytes() > data.len() / 2);
        assert!(store.load_throughput_mbs() > 0.0);
    }

    #[test]
    fn descendant_paths_verify_upwards_correctly() {
        let data = b"<s><x><c><k/></c></x><c><j><k/></j></c><k/></s>".to_vec();
        let engine = IndexedEngine::new(&["//c//k", "/s/c//k", "//k"]).unwrap();
        let r = engine.run(&data).unwrap();
        assert_eq!(r.match_counts, vec![2, 1, 3]);
    }

    #[test]
    fn malformed_document_fails_to_load() {
        let engine = IndexedEngine::new(&["/a"]).unwrap();
        assert!(engine.load(b"<a><b></a>").is_err());
    }
}
