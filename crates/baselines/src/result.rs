//! Common result type reported by every baseline engine.

use std::time::Duration;

/// What a baseline engine reports after a run. The fields mirror the
/// quantities the paper's figures need: per-phase times (split vs. query vs.
/// load), match counts for correctness checks, idle time for Fig 20 and a
/// working-set estimate for the Fig 9 proxy.
#[derive(Debug, Clone, Default)]
pub struct BaselineResult {
    /// Result matches per user query.
    pub match_counts: Vec<usize>,
    /// Time spent in the sequential splitting / loading phase.
    pub split_time: Duration,
    /// Time spent in the parallel (or single-threaded) query phase.
    pub query_time: Duration,
    /// End-to-end wall-clock time.
    pub total_time: Duration,
    /// Bytes processed.
    pub bytes: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Fraction of the query phase the workers spent idle (0.0–1.0).
    pub idle_fraction: f64,
    /// Peak per-worker heap footprint estimate in bytes.
    pub working_set_bytes: usize,
}

impl BaselineResult {
    /// Throughput in MB/s over the total time.
    pub fn throughput_mbs(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1_000_000.0 / secs
    }

    /// Total matches across all queries.
    pub fn total_matches(&self) -> usize {
        self.match_counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_totals() {
        let r = BaselineResult {
            match_counts: vec![2, 3],
            bytes: 5_000_000,
            total_time: Duration::from_millis(50),
            ..Default::default()
        };
        assert_eq!(r.total_matches(), 5);
        assert!((r.throughput_mbs() - 100.0).abs() < 1e-9);
        assert_eq!(BaselineResult::default().throughput_mbs(), 0.0);
    }
}
