//! A complete XPath evaluator over the in-memory [`Document`] tree.
//!
//! This evaluator supports the full AST of `ppt-xpath` — child, descendant,
//! `parent::` and `ancestor::` axes, wildcards, attributes, `text()` tests and
//! arbitrarily nested boolean predicates — evaluated directly with standard
//! tree-walking semantics. It is used by the DOM baseline ("PugiXML-like"),
//! by the indexed baseline for predicate verification, and by the integration
//! tests as the semantic oracle the PP-Transducer must agree with.

use ppt_xmlstream::{Document, NodeId};
use ppt_xpath::{Axis, NodeTest, Path, Predicate, Query, Step};

/// Evaluates an absolute query against a document, returning the matching
/// element nodes in document order (deduplicated).
pub fn eval_query(doc: &Document, query: &Query) -> Vec<NodeId> {
    // The virtual context of an absolute path is "above" the root element:
    // the first step selects the root (or, for a descendant first step, any
    // element).
    let mut context: Vec<NodeId> = vec![];
    let mut first = true;
    let mut nodes: Vec<NodeId> = Vec::new();
    for (i, step) in query.path.steps.iter().enumerate() {
        nodes = if first {
            first = false;
            initial_step(doc, step)
        } else {
            apply_step(doc, &context, step)
        };
        nodes = apply_predicate(doc, nodes, step);
        if i + 1 < query.path.len() && nodes.is_empty() {
            return Vec::new();
        }
        context = nodes.clone();
    }
    dedup_document_order(nodes)
}

/// Convenience: number of matches of `query`.
pub fn count_query(doc: &Document, query: &Query) -> usize {
    eval_query(doc, query).len()
}

fn initial_step(doc: &Document, step: &Step) -> Vec<NodeId> {
    let root = doc.root();
    match step.axis {
        Axis::Child => {
            if element_test_matches(doc, root, &step.test) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => {
            let mut out = Vec::new();
            if element_test_matches(doc, root, &step.test) {
                out.push(root);
            }
            out.extend(
                doc.descendants(root)
                    .into_iter()
                    .filter(|&n| element_test_matches(doc, n, &step.test)),
            );
            out
        }
        Axis::Parent | Axis::Ancestor => Vec::new(),
    }
}

fn apply_step(doc: &Document, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    // Attribute and text() tests select attribute/text nodes of the element
    // reached by the axis; we report the owning element as the match (the
    // same convention the transducer runtime uses for its synthetic
    // attribute/text symbols).
    if matches!(step.test, NodeTest::Attribute(_) | NodeTest::Text(_)) {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child | Axis::Parent => context.to_vec(),
            Axis::Descendant => {
                context.iter().flat_map(|&n| std::iter::once(n).chain(doc.descendants(n))).collect()
            }
            Axis::Ancestor => {
                let mut out = Vec::new();
                for &n in context {
                    let mut cur = doc.node(n).parent;
                    while let Some(p) = cur {
                        out.push(p);
                        cur = doc.node(p).parent;
                    }
                }
                out
            }
        };
        return candidates
            .into_iter()
            .filter(|&n| element_test_matches(doc, n, &step.test))
            .collect();
    }
    let mut out = Vec::new();
    for &node in context {
        match step.axis {
            Axis::Child => {
                for &c in doc.children(node) {
                    if element_test_matches(doc, c, &step.test) {
                        out.push(c);
                    }
                }
            }
            Axis::Descendant => {
                for d in doc.descendants(node) {
                    if element_test_matches(doc, d, &step.test) {
                        out.push(d);
                    }
                }
            }
            Axis::Parent => {
                if let Some(p) = doc.node(node).parent {
                    if element_test_matches(doc, p, &step.test) {
                        out.push(p);
                    }
                }
            }
            Axis::Ancestor => {
                let mut cur = doc.node(node).parent;
                while let Some(p) = cur {
                    if element_test_matches(doc, p, &step.test) {
                        out.push(p);
                    }
                    cur = doc.node(p).parent;
                }
            }
        }
    }
    out
}

fn apply_predicate(doc: &Document, nodes: Vec<NodeId>, step: &Step) -> Vec<NodeId> {
    match &step.predicate {
        None => nodes,
        Some(pred) => nodes.into_iter().filter(|&n| eval_predicate(doc, n, pred)).collect(),
    }
}

fn eval_predicate(doc: &Document, node: NodeId, pred: &Predicate) -> bool {
    match pred {
        Predicate::Path(path) => !eval_relative(doc, node, path).is_empty(),
        Predicate::And(a, b) => eval_predicate(doc, node, a) && eval_predicate(doc, node, b),
        Predicate::Or(a, b) => eval_predicate(doc, node, a) || eval_predicate(doc, node, b),
        Predicate::Not(a) => !eval_predicate(doc, node, a),
    }
}

/// Evaluates a relative path from a context node (used for predicates).
fn eval_relative(doc: &Document, node: NodeId, path: &Path) -> Vec<NodeId> {
    let mut context = vec![node];
    for step in &path.steps {
        context = apply_step(doc, &context, step);
        context = apply_predicate(doc, context, step);
        if context.is_empty() {
            return context;
        }
    }
    context
}

fn element_test_matches(doc: &Document, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(n) => doc.name(node) == n.as_bytes(),
        NodeTest::Wildcard => true,
        NodeTest::Attribute(a) => {
            doc.node(node).attrs.iter().any(|(k, _)| k.as_slice() == a.as_bytes())
        }
        NodeTest::Text(s) => {
            let text = &doc.node(node).text;
            trim(text) == s.as_bytes()
        }
    }
}

fn trim(mut s: &[u8]) -> &[u8] {
    while s.first().is_some_and(|b| b.is_ascii_whitespace()) {
        s = &s[1..];
    }
    while s.last().is_some_and(|b| b.is_ascii_whitespace()) {
        s = &s[..s.len() - 1];
    }
    s
}

fn dedup_document_order(mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    nodes.sort_by_key(|n| n.0);
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppt_xpath::parse_query;

    fn count(xml: &[u8], query: &str) -> usize {
        let doc = Document::parse(xml).unwrap();
        count_query(&doc, &parse_query(query).unwrap())
    }

    #[test]
    fn child_and_descendant_paths() {
        let xml = b"<a><b><c/></b><b><c/><c/></b><d><c/></d></a>";
        assert_eq!(count(xml, "/a/b/c"), 3);
        assert_eq!(count(xml, "//c"), 4);
        assert_eq!(count(xml, "/a//c"), 4);
        assert_eq!(count(xml, "/a/d/c"), 1);
        assert_eq!(count(xml, "/x"), 0);
    }

    #[test]
    fn wildcards_attributes_and_text() {
        let xml = br#"<a><b id="1">hello</b><c>world</c></a>"#;
        assert_eq!(count(xml, "/a/*"), 2);
        assert_eq!(count(xml, "/a/b/@id"), 1);
        assert_eq!(count(xml, "/a/c/@id"), 0);
        assert_eq!(count(xml, "/a/b/text(hello)"), 1);
        assert_eq!(count(xml, "/a/b/text(world)"), 0);
        assert_eq!(count(xml, "/a/text(hello)"), 0, "the text sits below b, not directly below a");
        assert_eq!(count(xml, "//@id"), 1);
    }

    #[test]
    fn text_test_in_a_predicate() {
        let xml = b"<a><b>hello</b><b>world</b></a>";
        let doc = Document::parse(xml).unwrap();
        let q = parse_query("/a/b[text(hello)]").unwrap();
        assert_eq!(eval_query(&doc, &q).len(), 1);
    }

    #[test]
    fn predicates() {
        let xml = b"<s><p><x/><n/></p><p><n/></p><p><x/><y/><n/></p></s>";
        assert_eq!(count(xml, "/s/p[x]/n"), 2);
        assert_eq!(count(xml, "/s/p[x and y]/n"), 1);
        assert_eq!(count(xml, "/s/p[x or y]/n"), 2);
        assert_eq!(count(xml, "/s/p[not(x)]/n"), 1);
        assert_eq!(count(xml, "/s/p[descendant::x]/n"), 2);
    }

    #[test]
    fn parent_and_ancestor_axes() {
        let xml = b"<s><r><sa><item><name/></item></sa><eu><item><name/></item></eu></r></s>";
        assert_eq!(count(xml, "/s/r/*/item[parent::sa]/name"), 1);
        assert_eq!(count(xml, "/s/r/*/item[parent::sa or parent::eu]/name"), 2);
        let xml2 = b"<r><li><p><k/></p><t><k/></t></li><li><t><x/></t><k/></li></r>";
        assert_eq!(count(xml2, "//k/ancestor::li/t/k"), 1);
        assert_eq!(count(xml2, "//k/ancestor::li"), 2);
    }

    #[test]
    fn nested_elements_are_handled() {
        let xml = b"<a><p><x/><n/><p><n/></p></p></a>";
        assert_eq!(count(xml, "//p[x]/n"), 1);
        assert_eq!(count(xml, "//p/n"), 2);
        assert_eq!(count(xml, "//p//n"), 2);
    }

    #[test]
    fn results_are_deduplicated() {
        // //a//c could reach the same c through multiple a ancestors.
        let xml = b"<a><a><c/></a></a>";
        assert_eq!(count(xml, "//a//c"), 1);
        assert_eq!(count(xml, "//a"), 2);
    }
}
