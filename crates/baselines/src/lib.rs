//! Baseline XML query engines — the comparison points of the paper's
//! evaluation (§5, "Comparison to other approaches").
//!
//! Every baseline is built from scratch on the same substrates as the
//! PP-Transducer (the `ppt-xmlstream` lexer/DOM and the `ppt-automaton`
//! transducer) so that the comparison measures *strategies*, not codebases:
//!
//! | Engine | Models | Strategy |
//! |--------|--------|----------|
//! | [`SequentialStreamEngine`] | XMLTK / MxQuery (single-threaded) | one in-order transducer pass |
//! | [`FragmentStreamEngine`] | "XMLTK (split)" | sequential well-formed-fragment split, parallel in-order transducers |
//! | [`FragmentSaxEngine`] | Expat + transducer | as above, but materialising SAX events through a shared allocator |
//! | [`FragmentDomEngine`] | PugiXML + XPath | sequential split, parallel DOM build + tree-walk XPath |
//! | [`IndexedEngine`] | MonetDB / Sedna | sequential load + index build, then index-assisted queries |
//!
//! The [`domxpath`] module contains a complete XPath evaluator over the
//! in-memory document tree (including predicates and reverse axes); besides
//! powering the DOM and indexed baselines it doubles as the semantic oracle
//! for the integration test-suite.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod domxpath;
pub mod fragment_dom;
pub mod fragment_sax;
pub mod fragment_stream;
pub mod indexed;
pub mod result;
pub mod sequential;

pub use fragment_dom::FragmentDomEngine;
pub use fragment_sax::FragmentSaxEngine;
pub use fragment_stream::FragmentStreamEngine;
pub use indexed::IndexedEngine;
pub use result::BaselineResult;
pub use sequential::SequentialStreamEngine;
