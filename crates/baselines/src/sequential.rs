//! Single-threaded streaming baseline (XMLTK / MxQuery-like) and the shared
//! in-order execution helper used by every fragment-based baseline.

use crate::result::BaselineResult;
use ppt_automaton::{StateId, Transducer};
use ppt_core::filter::apply_filters;
use ppt_core::parallel::ResolvedMatch;
use ppt_xmlstream::{Lexer, XmlEvent};
use ppt_xpath::{compile_queries, QueryPlan, XPathError};
use std::time::Instant;

/// Runs the in-order transducer over `slice`, starting from `start_state` at
/// element depth `start_depth`, resolving element spans locally. Elements that
/// do not close inside the slice end at the end of the slice.
///
/// This is the execution core shared by the sequential baseline and the
/// fragment-parallel baselines (each fragment is processed by one call).
pub fn run_inorder_with_spans(
    t: &Transducer,
    slice: &[u8],
    abs_offset: usize,
    start_state: StateId,
    start_depth: u32,
) -> Vec<ResolvedMatch> {
    let mut matches: Vec<ResolvedMatch> = Vec::new();
    let mut state = start_state;
    let mut state_stack: Vec<StateId> = Vec::with_capacity(32);
    // Open elements: (absolute position, number of matches recorded at it).
    let mut open_stack: Vec<(usize, Vec<usize>)> = Vec::with_capacity(32);

    let full = t.needs_full_events();
    let handle = |ev: XmlEvent<'_>,
                  state: &mut StateId,
                  state_stack: &mut Vec<StateId>,
                  open_stack: &mut Vec<(usize, Vec<usize>)>,
                  matches: &mut Vec<ResolvedMatch>| {
        match ev {
            XmlEvent::Open { name, pos } => {
                let abs = abs_offset + pos;
                let next = t.step(*state, t.classify_name(name));
                state_stack.push(*state);
                *state = next;
                let depth = start_depth + state_stack.len() as u32;
                let mut here = Vec::new();
                for &q in t.output(next) {
                    here.push(matches.len());
                    matches.push(ResolvedMatch { pos: abs, end: usize::MAX, depth, subquery: q });
                }
                open_stack.push((abs, here));
            }
            XmlEvent::Close { pos, .. } => {
                if let Some(prev) = state_stack.pop() {
                    *state = prev;
                }
                if let Some((_, match_idxs)) = open_stack.pop() {
                    let end = abs_offset
                        + slice[pos..]
                            .iter()
                            .position(|&b| b == b'>')
                            .map(|o| pos + o + 1)
                            .unwrap_or(slice.len());
                    for i in match_idxs {
                        matches[i].end = end;
                    }
                }
            }
            XmlEvent::Attr { name, pos, .. } => {
                if let Some(sym) = t.classify_attr(name) {
                    let next = t.step(*state, sym);
                    let depth = start_depth + state_stack.len() as u32 + 1;
                    for &q in t.output(next) {
                        matches.push(ResolvedMatch {
                            pos: abs_offset + pos,
                            end: abs_offset + pos,
                            depth,
                            subquery: q,
                        });
                    }
                }
            }
            XmlEvent::Text { text, pos } => {
                let trimmed = ppt_automaton::exec::trim_ws(text);
                if trimmed.is_empty() {
                    return;
                }
                if let Some(sym) = t.classify_text(trimmed) {
                    let next = t.step(*state, sym);
                    let depth = start_depth + state_stack.len() as u32 + 1;
                    for &q in t.output(next) {
                        matches.push(ResolvedMatch {
                            pos: abs_offset + pos,
                            end: abs_offset + pos + text.len(),
                            depth,
                            subquery: q,
                        });
                    }
                }
            }
        }
    };

    if full {
        for ev in Lexer::new(slice) {
            handle(ev, &mut state, &mut state_stack, &mut open_stack, &mut matches);
        }
    } else {
        for ev in Lexer::tags_only(slice) {
            handle(ev, &mut state, &mut state_stack, &mut open_stack, &mut matches);
        }
    }

    let slice_end = abs_offset + slice.len();
    for m in &mut matches {
        if m.end == usize::MAX {
            m.end = slice_end;
        }
    }
    matches
}

/// The single-threaded streaming baseline: one in-order transducer pass over
/// the whole stream (how XMLTK or MxQuery process a query set without data
/// parallelism).
#[derive(Debug, Clone)]
pub struct SequentialStreamEngine {
    plan: QueryPlan,
    transducer: Transducer,
}

impl SequentialStreamEngine {
    /// Compiles the engine for a query set.
    pub fn new<S: AsRef<str>>(queries: &[S]) -> Result<Self, XPathError> {
        let plan = compile_queries(queries)?;
        let transducer = Transducer::from_plan(&plan);
        Ok(SequentialStreamEngine { plan, transducer })
    }

    /// The compiled plan (used by harnesses for reporting).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Processes `data` on a single thread.
    pub fn run(&self, data: &[u8]) -> BaselineResult {
        let start = Instant::now();
        let mut matches =
            run_inorder_with_spans(&self.transducer, data, 0, self.transducer.initial(), 0);
        matches.sort_by_key(|m| m.pos);
        let query_time = start.elapsed();
        let outcome = apply_filters(&self.plan, &matches);
        BaselineResult {
            match_counts: outcome.matches.iter().map(|m| m.len()).collect(),
            split_time: Default::default(),
            query_time,
            total_time: start.elapsed(),
            bytes: data.len(),
            threads: 1,
            idle_fraction: 0.0,
            working_set_bytes: 64 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";

    #[test]
    fn sequential_baseline_matches_ppt() {
        let queries = ["/a/b/c", "//d", "/a/b[d]"];
        let baseline = SequentialStreamEngine::new(&queries).unwrap();
        let ppt = ppt_core::Engine::from_queries(&queries).unwrap();
        let b = baseline.run(DOC);
        let p = ppt.run(DOC);
        let ppt_counts: Vec<usize> = (0..queries.len()).map(|i| p.match_count(i)).collect();
        assert_eq!(b.match_counts, ppt_counts);
        assert_eq!(b.threads, 1);
        assert_eq!(b.bytes, DOC.len());
    }

    #[test]
    fn inorder_spans_cover_elements() {
        let t = Transducer::from_queries(&["/a/b"]).unwrap();
        let matches = run_inorder_with_spans(&t, DOC, 0, t.initial(), 0);
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert!(DOC[m.pos..m.end].starts_with(b"<b>"));
            assert!(DOC[m.pos..m.end].ends_with(b"</b>"));
            assert_eq!(m.depth, 2);
        }
    }

    #[test]
    fn inorder_with_offset_and_start_state() {
        // Process only the content of <a> as a fragment, starting from the
        // state after /a with depth 1 — the way fragment baselines do.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let root_sym = t.classify_name(b"a");
        let after_root = t.step(t.initial(), root_sym);
        let fragment = &DOC[3..31]; // everything between <a> and </a>
        let matches = run_inorder_with_spans(&t, fragment, 3, after_root, 1);
        assert_eq!(matches.len(), 1);
        assert_eq!(&DOC[matches[0].pos..matches[0].pos + 3], b"<c>");
        assert_eq!(matches[0].depth, 3);
    }

    #[test]
    fn unclosed_elements_end_at_slice_end() {
        let t = Transducer::from_queries(&["/a"]).unwrap();
        let matches = run_inorder_with_spans(&t, b"<a><b>", 0, t.initial(), 0);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].end, 6);
    }
}
