//! "XMLTK (split)"-style baseline: a sequential well-formed-fragment split
//! followed by parallel in-order transducer passes over the fragments.
//!
//! This is the parallelisation strategy the paper applies to existing stream
//! processors for a fair comparison (§5): because fragments must be
//! well-formed, the splitter has to track element nesting over the whole
//! input, which is the sequential bottleneck that caps this engine's
//! scalability.

use crate::result::BaselineResult;
use crate::sequential::run_inorder_with_spans;
use ppt_automaton::Transducer;
use ppt_core::filter::apply_filters;
use ppt_core::parallel::ResolvedMatch;
use ppt_xmlstream::fragment::{split_well_formed, FragmentSplit};
use ppt_xpath::{compile_queries, QueryPlan, XPathError};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Default fragment target size (same order as the paper's 10 MB skip).
pub const DEFAULT_FRAGMENT_SIZE: usize = 1 << 20;

/// Parallelised stream-processor baseline over well-formed fragments.
#[derive(Debug, Clone)]
pub struct FragmentStreamEngine {
    plan: QueryPlan,
    transducer: Transducer,
    fragment_size: usize,
}

/// Shared scaffold for fragment-parallel engines: splits sequentially, then
/// runs `work` over every fragment on a pool of `threads` workers, returning
/// per-fragment results, the split duration, the query-phase duration and the
/// idle fraction.
pub(crate) fn fragment_parallel<T: Send, F>(
    data: &[u8],
    fragment_size: usize,
    threads: usize,
    work: F,
) -> (FragmentSplit, Vec<T>, Duration, Duration, f64)
where
    F: Fn(&FragmentSplit, std::ops::Range<usize>) -> T + Sync,
{
    let split_start = Instant::now();
    let split = split_well_formed(data, fragment_size);
    let split_time = split_start.elapsed();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        // UNWRAP-OK: pool construction only fails on thread-spawn exhaustion,
        // which is unrecoverable for a benchmark baseline.
        .expect("failed to build rayon pool");
    let query_start = Instant::now();
    let timed: Vec<(T, Duration)> = pool.install(|| {
        split
            .fragments
            .par_iter()
            .map(|frag| {
                let t0 = Instant::now();
                let out = work(&split, frag.clone());
                (out, t0.elapsed())
            })
            .collect()
    });
    let query_time = query_start.elapsed();
    let busy: Duration = timed.iter().map(|(_, d)| *d).sum();
    let capacity = query_time.as_secs_f64() * threads.max(1) as f64;
    // The sequential split keeps every worker idle, so it counts towards idle
    // time just as it does in the paper's measurements.
    let total_capacity = capacity + split_time.as_secs_f64() * threads.max(1) as f64;
    let idle = if total_capacity > 0.0 {
        ((total_capacity - busy.as_secs_f64()).max(0.0)) / total_capacity
    } else {
        0.0
    };
    let results = timed.into_iter().map(|(t, _)| t).collect();
    (split, results, split_time, query_time, idle)
}

impl FragmentStreamEngine {
    /// Compiles the engine for a query set.
    pub fn new<S: AsRef<str>>(queries: &[S]) -> Result<Self, XPathError> {
        let plan = compile_queries(queries)?;
        let transducer = Transducer::from_plan(&plan);
        Ok(FragmentStreamEngine { plan, transducer, fragment_size: DEFAULT_FRAGMENT_SIZE })
    }

    /// Sets the target fragment size in bytes.
    pub fn fragment_size(mut self, bytes: usize) -> Self {
        self.fragment_size = bytes.max(1);
        self
    }

    /// Processes `data` with `threads` workers.
    pub fn run(&self, data: &[u8], threads: usize) -> BaselineResult {
        let start = Instant::now();
        let t = &self.transducer;
        let root_state_of =
            |split: &FragmentSplit| t.step(t.initial(), t.classify_name(&split.root_name));
        let (split, per_fragment, split_time, query_time, idle) =
            fragment_parallel(data, self.fragment_size, threads, |split, range| {
                run_inorder_with_spans(
                    t,
                    &data[range.clone()],
                    range.start,
                    root_state_of(split),
                    1,
                )
            });

        // Matches on the root element itself (fragments exclude it).
        let mut matches: Vec<ResolvedMatch> = Vec::new();
        if !split.root_name.is_empty() {
            let root_state = root_state_of(&split);
            for &q in t.output(root_state) {
                matches.push(ResolvedMatch { pos: 0, end: data.len(), depth: 1, subquery: q });
            }
        }
        for frag_matches in per_fragment {
            matches.extend(frag_matches);
        }
        matches.sort_by_key(|m| m.pos);
        let outcome = apply_filters(&self.plan, &matches);
        BaselineResult {
            match_counts: outcome.matches.iter().map(|m| m.len()).collect(),
            split_time,
            query_time,
            total_time: start.elapsed(),
            bytes: data.len(),
            threads,
            idle_fraction: idle,
            working_set_bytes: 64 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Vec<u8> {
        let mut s = String::from("<a>");
        for i in 0..50 {
            s.push_str(&format!("<b><d>x{i}</d></b><b><c>y{i}</c></b>"));
        }
        s.push_str("</a>");
        s.into_bytes()
    }

    #[test]
    fn fragment_stream_matches_ppt() {
        let queries = ["/a/b/c", "//d", "/a/b[d]"];
        let data = doc();
        let engine = FragmentStreamEngine::new(&queries).unwrap().fragment_size(64);
        let ppt = ppt_core::Engine::from_queries(&queries).unwrap();
        let b = engine.run(&data, 3);
        let p = ppt.run(&data);
        let ppt_counts: Vec<usize> = (0..queries.len()).map(|i| p.match_count(i)).collect();
        assert_eq!(b.match_counts, ppt_counts);
        assert!(b.split_time >= Duration::ZERO);
        assert_eq!(b.threads, 3);
    }

    #[test]
    fn root_level_matches_are_reported() {
        let engine = FragmentStreamEngine::new(&["/a", "/a/b"]).unwrap().fragment_size(16);
        let data = doc();
        let r = engine.run(&data, 2);
        assert_eq!(r.match_counts[0], 1);
        assert_eq!(r.match_counts[1], 100);
    }

    #[test]
    fn single_fragment_degenerates_to_sequential() {
        let queries = ["//c"];
        let data = doc();
        let engine = FragmentStreamEngine::new(&queries).unwrap().fragment_size(usize::MAX / 2);
        let r = engine.run(&data, 1);
        assert_eq!(r.match_counts[0], 50);
    }
}
