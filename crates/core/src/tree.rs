//! The double-tree representation of a mapping (§4.2, Algs 3–6, Figs 5/6).
//!
//! A naive mapping engine performs one transition per entry per input symbol,
//! i.e. work proportional to the number of possible starting states. The key
//! observation of §4.2 is that the per-symbol transition function depends only
//! on the *finishing* state and the topmost symbol of the *finishing* stack,
//! so all entries that share a finishing state can be processed at once.
//!
//! The structure is two trees joined at their leaves:
//!
//! * the **finish tree**: its first level holds the distinct finishing states;
//!   deeper levels hold finishing-stack symbols (level 2 = top of stack);
//! * the **start tree**: its first level holds starting states; deeper levels
//!   hold starting-stack symbols in consumption order.
//!
//! Every root-to-root path is one map entry. Because all entries consume the
//! same event sequence, their stacks always have equal length, so all start
//! leaves sit at the same depth and every finish node either links directly to
//! start leaves (empty finish stack) or has children (non-empty stack), never
//! both.
//!
//! Per input symbol the engine touches only the first level of the finish
//! tree: `fpush` inserts a node directly below a first-level node, `fpop`
//! promotes a child to the first level (or fans out through `funknown` when
//! the stack is empty), and `add_node` merges nodes that end up with the same
//! state so redundant computation is never repeated.

use crate::mapping::{ChunkMatch, MapEntry, Mapping};
use ppt_automaton::{StateId, SubQueryId, Transducer};
use ppt_xmlstream::Symbol;

#[derive(Debug, Clone)]
struct StartNode {
    /// Starting state (first level) or consumed stack symbol (deeper levels).
    symbol: StateId,
    /// Parent start node (towards the start root); `None` for first-level
    /// nodes.
    parent: Option<usize>,
    /// Matches recorded while this node was a leaf.
    matches: Vec<ChunkMatch>,
}

#[derive(Debug, Clone)]
struct FinishNode {
    /// Finishing state (first level) or pushed stack symbol (deeper levels).
    state: StateId,
    /// Children: deeper stack symbols (level 2 = top of the stack).
    children: Vec<usize>,
    /// Start-tree leaves whose entry's finish path ends at this node.
    start_leaves: Vec<usize>,
}

/// The double tree. One instance processes one chunk.
#[derive(Debug, Clone)]
pub struct DoubleTree {
    start_nodes: Vec<StartNode>,
    finish_nodes: Vec<FinishNode>,
    /// Current first level of the finish tree (children of the finish root).
    level1: Vec<usize>,
    /// Total number of `f` applications performed (per first-level node and
    /// per `funknown` fan-out) — the work measure compared against sequential
    /// transitions for the §3.3 overhead figure.
    pub transitions: u64,
    /// Peak number of first-level finish nodes observed.
    pub peak_level1: usize,
}

impl DoubleTree {
    /// Tree for the first chunk of the stream: the single entry
    /// `(q₀, ε) → (q₀, ε, ε)`.
    pub fn initial(t: &Transducer) -> DoubleTree {
        let mut tree = DoubleTree::empty();
        tree.add_identity(t.initial());
        tree
    }

    /// Tree for an out-of-order chunk: one identity entry per state.
    pub fn identity(t: &Transducer) -> DoubleTree {
        let mut tree = DoubleTree::empty();
        for q in 0..t.num_states() {
            tree.add_identity(q);
        }
        tree
    }

    fn empty() -> DoubleTree {
        DoubleTree {
            start_nodes: Vec::new(),
            finish_nodes: Vec::new(),
            level1: Vec::new(),
            transitions: 0,
            peak_level1: 0,
        }
    }

    fn add_identity(&mut self, q: StateId) {
        let s = self.start_nodes.len();
        self.start_nodes.push(StartNode { symbol: q, parent: None, matches: Vec::new() });
        let f = self.finish_nodes.len();
        self.finish_nodes.push(FinishNode {
            state: q,
            children: Vec::new(),
            start_leaves: vec![s],
        });
        self.level1.push(f);
        self.peak_level1 = self.peak_level1.max(self.level1.len());
    }

    /// Number of first-level finish nodes (= distinct finishing states).
    pub fn distinct_finish_states(&self) -> usize {
        self.level1.len()
    }

    /// Records `m` on every start leaf reachable below finish node `node`.
    fn record_match(&mut self, node: usize, m: ChunkMatch) {
        let mut leaves: Vec<usize> = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            leaves.extend_from_slice(&self.finish_nodes[n].start_leaves);
            stack.extend_from_slice(&self.finish_nodes[n].children);
        }
        for leaf in leaves {
            self.start_nodes[leaf].matches.push(m);
        }
    }

    /// Alg 3: inserts `node` into the new first level, merging with an
    /// existing node of the same state (recursively merging children and
    /// concatenating start-leaf lists).
    fn add_node(&mut self, node: usize, new_level1: &mut Vec<usize>) {
        if let Some(&existing) = new_level1
            .iter()
            .find(|&&n| self.finish_nodes[n].state == self.finish_nodes[node].state)
        {
            self.merge_into(node, existing);
        } else {
            new_level1.push(node);
        }
    }

    /// Merges finish node `src` into `dst` (same state), recursively.
    fn merge_into(&mut self, src: usize, dst: usize) {
        let src_leaves = std::mem::take(&mut self.finish_nodes[src].start_leaves);
        self.finish_nodes[dst].start_leaves.extend(src_leaves);
        let src_children = std::mem::take(&mut self.finish_nodes[src].children);
        for ch in src_children {
            let ch_state = self.finish_nodes[ch].state;
            if let Some(&existing) = self.finish_nodes[dst]
                .children
                .iter()
                .find(|&&c| self.finish_nodes[c].state == ch_state)
            {
                self.merge_into(ch, existing);
            } else {
                self.finish_nodes[dst].children.push(ch);
            }
        }
    }

    /// Processes an opening tag (`fpush`, Alg 5) for every first-level node.
    pub fn step_open(&mut self, t: &Transducer, sym: Symbol, pos: usize, rel_depth: i64) {
        let old_level1 = std::mem::take(&mut self.level1);
        let mut new_level1 = Vec::with_capacity(old_level1.len());
        for node in old_level1 {
            self.transitions += 1;
            let state = self.finish_nodes[node].state;
            let next = t.step(state, sym);
            // The pushed-symbol node takes over the node's children and direct
            // start leaves; the first-level node then represents the new
            // finishing state with the pushed symbol as its only child.
            let pushed = self.finish_nodes.len();
            let children = std::mem::take(&mut self.finish_nodes[node].children);
            let start_leaves = std::mem::take(&mut self.finish_nodes[node].start_leaves);
            self.finish_nodes.push(FinishNode { state, children, start_leaves });
            self.finish_nodes[node].state = next;
            self.finish_nodes[node].children = vec![pushed];

            for &q in t.output(next) {
                self.record_match(
                    node,
                    ChunkMatch { pos, end: usize::MAX, rel_depth, subquery: q },
                );
            }
            self.add_node(node, &mut new_level1);
        }
        self.level1 = new_level1;
        self.peak_level1 = self.peak_level1.max(self.level1.len());
    }

    /// Processes a closing tag (`fpop`/`funknown`, Alg 6) for every
    /// first-level node.
    pub fn step_close(&mut self, t: &Transducer, sym: Symbol) {
        let old_level1 = std::mem::take(&mut self.level1);
        let mut new_level1 = Vec::with_capacity(old_level1.len());
        for node in old_level1 {
            let state = self.finish_nodes[node].state;
            let sources = t.pop_sources(state, sym).to_vec();
            if self.finish_nodes[node].children.is_empty() {
                self.transitions += sources.len().max(1) as u64;
                // funknown: fan out over every legally poppable symbol; each
                // start leaf grows a child recording the newly-assumed symbol.
                let leaves = std::mem::take(&mut self.finish_nodes[node].start_leaves);
                for &p in &sources {
                    let mut new_leaves = Vec::with_capacity(leaves.len());
                    for &s in &leaves {
                        let ns = self.start_nodes.len();
                        self.start_nodes.push(StartNode {
                            symbol: p,
                            parent: Some(s),
                            matches: Vec::new(),
                        });
                        new_leaves.push(ns);
                    }
                    let nf = self.finish_nodes.len();
                    self.finish_nodes.push(FinishNode {
                        state: p,
                        children: Vec::new(),
                        start_leaves: new_leaves,
                    });
                    self.add_node(nf, &mut new_level1);
                }
                // Entries whose state admits no pop under `sym` are discarded
                // (their start leaves simply become unreachable).
            } else {
                // fpop: promote the child holding the popped symbol; children
                // holding symbols that cannot be popped here are impossible
                // execution paths and are discarded.
                let children = std::mem::take(&mut self.finish_nodes[node].children);
                self.transitions += children.len() as u64;
                for ch in children {
                    let z = self.finish_nodes[ch].state;
                    if sources.contains(&z) {
                        // δpop(state, sym, z) = z: the child's state already
                        // equals the post-pop state, so no update is needed.
                        self.add_node(ch, &mut new_level1);
                    }
                }
            }
        }
        self.level1 = new_level1;
        self.peak_level1 = self.peak_level1.max(self.level1.len());
    }

    /// Probe transition for synthetic attribute/text symbols: records outputs
    /// without modifying the tree.
    pub fn step_probe(&mut self, t: &Transducer, sym: Symbol, pos: usize, rel_depth: i64) {
        let level1 = self.level1.clone();
        for node in level1 {
            self.transitions += 1;
            let state = self.finish_nodes[node].state;
            let next = t.step(state, sym);
            let outputs: Vec<SubQueryId> = t.output(next).to_vec();
            for q in outputs {
                self.record_match(
                    node,
                    ChunkMatch { pos, end: usize::MAX, rel_depth, subquery: q },
                );
            }
        }
    }

    /// Extracts the mapping represented by the tree (used for the join phase
    /// and for differential testing against the naive engine).
    pub fn extract(&self) -> Mapping {
        let mut entries = Vec::new();
        for &top in &self.level1 {
            let mut stack_path = Vec::new();
            self.extract_rec(top, top, &mut stack_path, &mut entries);
        }
        Mapping { entries }
    }

    fn extract_rec(
        &self,
        node: usize,
        level1: usize,
        stack_path: &mut Vec<StateId>,
        entries: &mut Vec<MapEntry>,
    ) {
        let fnode = &self.finish_nodes[node];
        for &leaf in &fnode.start_leaves {
            // Walk the start tree upwards: the leaf is the last consumed stack
            // symbol, the first-level ancestor is the starting state.
            let mut upward: Vec<usize> = Vec::new();
            let mut cur = Some(leaf);
            while let Some(i) = cur {
                upward.push(i);
                cur = self.start_nodes[i].parent;
            }
            // UNWRAP-OK: the loop above pushed at least `leaf` into `upward`.
            let start_state = self.start_nodes[*upward.last().expect("non-empty path")].symbol;
            let start_stack: Vec<StateId> = upward
                .iter()
                .rev()
                .skip(1) // drop the first-level node (the starting state)
                .map(|&i| self.start_nodes[i].symbol)
                .collect();
            let mut outputs = Vec::new();
            for &i in upward.iter().rev() {
                outputs.extend_from_slice(&self.start_nodes[i].matches);
            }
            // `stack_path` holds the finish stack from the top of the stack
            // (level 2) down to `node`; the MapEntry convention wants the top
            // at the end of the vector.
            let finish_stack: Vec<StateId> = stack_path.iter().rev().copied().collect();
            entries.push(MapEntry {
                start_state,
                start_stack,
                finish_state: self.finish_nodes[level1].state,
                finish_stack,
                outputs,
            });
        }
        for &ch in &fnode.children {
            stack_path.push(self.finish_nodes[ch].state);
            self.extract_rec(ch, level1, stack_path, entries);
            stack_path.pop();
        }
    }

    /// Approximate heap footprint of the per-chunk tree in bytes. Per §5.2 the
    /// thread-local trees are small enough to stay cache-resident; this is the
    /// quantity the Fig 9 working-set proxy reports for the PP-Transducer.
    pub fn heap_bytes(&self) -> usize {
        self.start_nodes.capacity() * std::mem::size_of::<StartNode>()
            + self.finish_nodes.capacity() * std::mem::size_of::<FinishNode>()
            + self
                .start_nodes
                .iter()
                .map(|n| n.matches.capacity() * std::mem::size_of::<ChunkMatch>())
                .sum::<usize>()
            + self
                .finish_nodes
                .iter()
                .map(|n| {
                    n.children.capacity() * std::mem::size_of::<usize>()
                        + n.start_leaves.capacity() * std::mem::size_of::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppt_xmlstream::{Lexer, XmlEvent};

    fn paper() -> Transducer {
        Transducer::from_queries(&["/a/b/c"]).unwrap()
    }

    /// Runs both engines over the same bytes and compares the extracted
    /// mappings structurally.
    fn run_both(t: &Transducer, bytes: &[u8], first: bool) -> (Mapping, Mapping) {
        let mut naive = if first { Mapping::initial(t) } else { Mapping::identity(t) };
        let mut tree = if first { DoubleTree::initial(t) } else { DoubleTree::identity(t) };
        let mut depth = 0i64;
        for ev in Lexer::tags_only(bytes) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    depth += 1;
                    let sym = t.classify_name(name);
                    naive.step_open(t, sym, pos, depth);
                    tree.step_open(t, sym, pos, depth);
                }
                XmlEvent::Close { name, .. } => {
                    depth -= 1;
                    let sym = t.classify_name(name);
                    naive.step_close(t, sym);
                    tree.step_close(t, sym);
                }
                _ => {}
            }
        }
        let mut extracted = tree.extract();
        naive.normalise();
        extracted.normalise();
        (naive, extracted)
    }

    #[test]
    fn tree_matches_naive_on_first_chunk() {
        let t = paper();
        let (naive, tree) = run_both(&t, b"<a><b><d></d></b>", true);
        assert_eq!(naive, tree);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn tree_matches_naive_on_out_of_order_chunk() {
        let t = paper();
        let (naive, tree) = run_both(&t, b"<b><c></c></b></a>", false);
        assert_eq!(naive, tree);
        assert_eq!(tree.len(), 5, "M5 has five entries");
    }

    #[test]
    fn tree_matches_naive_on_malformed_chunks() {
        let t = Transducer::from_queries(&["/a/b/c", "//k", "/a//d"]).unwrap();
        let chunks: &[&[u8]] =
            &[b"</x></y><a><k/>", b"<b><c></c></b></a><a>", b"</q></q></q>", b"<a><b>", b""];
        for chunk in chunks {
            let (naive, tree) = run_both(&t, chunk, false);
            assert_eq!(naive, tree, "divergence on chunk {:?}", String::from_utf8_lossy(chunk));
        }
    }

    #[test]
    fn tree_performs_fewer_transitions_than_naive_entry_work() {
        // The whole point of the tree (§4.2): per-symbol work is proportional
        // to the number of distinct finishing states, not the number of
        // entries.
        let t = Transducer::from_queries(&["/a/b/c/d/e", "//k//m", "/x/y"]).unwrap();
        let mut doc = Vec::new();
        for _ in 0..50 {
            doc.extend_from_slice(b"<a><b><c><d><e></e></d></c></b><k><m></m></k></a>");
        }
        let mut naive = Mapping::identity(&t);
        let mut tree = DoubleTree::identity(&t);
        let mut naive_transitions = 0u64;
        for ev in Lexer::tags_only(&doc) {
            match ev {
                XmlEvent::Open { name, pos } => {
                    let sym = t.classify_name(name);
                    naive_transitions += naive.step_open(&t, sym, pos, 0);
                    tree.step_open(&t, sym, pos, 0);
                }
                XmlEvent::Close { name, .. } => {
                    let sym = t.classify_name(name);
                    naive_transitions += naive.step_close(&t, sym);
                    tree.step_close(&t, sym);
                }
                _ => {}
            }
        }
        assert!(
            tree.transitions < naive_transitions,
            "tree ({}) must do less work than naive ({})",
            tree.transitions,
            naive_transitions
        );
        // And they still agree.
        let mut a = naive.clone();
        let mut b = tree.extract();
        a.normalise();
        b.normalise();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_are_attributed_to_the_right_start_states() {
        let t = paper();
        let (_, tree) = run_both(&t, b"<b><c></c></b></a>", false);
        // Only the entry that started in the state "after /a/b was opened"
        // carries the /a/b/c match.
        let with_output: Vec<&MapEntry> =
            tree.entries.iter().filter(|e| !e.outputs.is_empty()).collect();
        assert_eq!(with_output.len(), 1);
        let a = t.classify_name(b"a");
        let s2 = t.step(t.initial(), a);
        assert_eq!(with_output[0].start_state, s2);
    }

    #[test]
    fn peak_level1_tracks_convergence() {
        let t = paper();
        let mut tree = DoubleTree::identity(&t);
        assert_eq!(tree.distinct_finish_states(), t.num_states() as usize);
        tree.step_open(&t, t.classify_name(b"zzz"), 0, 1);
        assert_eq!(tree.distinct_finish_states(), 1, "everything converges on the sink");
        assert_eq!(tree.peak_level1, t.num_states() as usize);
    }

    #[test]
    fn probe_does_not_change_structure() {
        let t = Transducer::from_queries(&["/a/@id"]).unwrap();
        let mut tree = DoubleTree::initial(&t);
        tree.step_open(&t, t.classify_name(b"a"), 0, 1);
        let before = tree.extract();
        let sym = t.classify_attr(b"id").unwrap();
        tree.step_probe(&t, sym, 3, 2);
        let after = tree.extract();
        assert_eq!(before.len(), after.len());
        assert_eq!(after.entries[0].outputs.len(), 1);
        assert_eq!(before.entries[0].finish_stack, after.entries[0].finish_stack);
    }

    #[test]
    fn heap_bytes_is_small_and_bounded() {
        let t = Transducer::from_queries(&["/a/b/c", "//k"]).unwrap();
        let mut doc = Vec::new();
        for _ in 0..200 {
            doc.extend_from_slice(b"<a><b><c/></b><k/></a>");
        }
        let mut tree = DoubleTree::identity(&t);
        for ev in Lexer::tags_only(&doc) {
            match ev {
                XmlEvent::Open { name, pos } => tree.step_open(&t, t.classify_name(name), pos, 0),
                XmlEvent::Close { name, .. } => tree.step_close(&t, t.classify_name(name)),
                _ => {}
            }
        }
        // The tree stays small even after processing many elements (matches
        // accumulate, structure does not).
        assert!(tree.heap_bytes() < 1 << 20, "tree should stay well under 1 MiB");
    }
}
