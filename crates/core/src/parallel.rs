//! The split → parallel → join pipeline (§3.2 phases i–iii).
//!
//! [`StreamProcessor`] is the work-horse: it accepts one or more contiguous
//! windows of the XML stream, splits each window into arbitrary chunks,
//! processes the chunks out-of-order on a rayon pool, and folds the resulting
//! mappings into an accumulated mapping with the unification function of §4.1.
//! Feeding the stream window-by-window keeps memory bounded for unbounded
//! streams (the constant-memory property claimed in §1); feeding a single
//! window is what [`crate::engine::Engine::run`] does for in-memory data.

use crate::chunk::{process_chunk, ChunkOutput, EngineKind};
use crate::join::PrefixFolder;
use crate::stats::RunStats;
use ppt_automaton::Transducer;
use ppt_xmlstream::split_chunks;
use rayon::prelude::*;
use std::time::Instant;

/// A sub-query match with every position resolved: absolute byte offsets and
/// absolute element depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedMatch {
    /// Byte offset of the opening tag.
    pub pos: usize,
    /// Byte offset just past the closing tag ([`usize::MAX`] when spans were
    /// not requested, or the end of the processed input when the element never
    /// closes).
    pub end: usize,
    /// Element depth (root element = 1).
    pub depth: u32,
    /// The basic sub-query that matched.
    pub subquery: u32,
}

/// Configuration of the parallel pipeline.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Target chunk size in bytes (the paper's default is 10 MB; Fig 16 shows
    /// the execution time is flat for anything above ~1 MB).
    pub chunk_size: usize,
    /// Number of worker threads; `None` uses rayon's global pool.
    pub threads: Option<usize>,
    /// Which per-chunk engine to use.
    pub engine: EngineKind,
    /// Whether to resolve element end offsets (needed by predicate filters and
    /// by callers that want to extract the matched data).
    pub resolve_spans: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            chunk_size: 1 << 20,
            threads: None,
            engine: EngineKind::Tree,
            resolve_spans: true,
        }
    }
}

/// Incremental parallel processor. Feed contiguous windows of the stream in
/// order, then call [`StreamProcessor::finish`].
#[derive(Debug)]
pub struct StreamProcessor<'t> {
    transducer: &'t Transducer,
    config: ParallelConfig,
    pool: Option<rayon::ThreadPool>,
    /// Eager in-order fold of the per-chunk mappings.
    folder: PrefixFolder,
    /// Matches drained from the fold so far (document order).
    collected: Vec<ResolvedMatch>,
    /// Bytes consumed so far (= absolute offset of the next window).
    consumed: usize,
    /// Cross-chunk close ladder (absolute position, absolute depth after).
    ladder: Vec<(usize, i64)>,
    stats: RunStats,
}

impl<'t> StreamProcessor<'t> {
    /// Creates a processor for `transducer` with `config`.
    pub fn new(transducer: &'t Transducer, config: ParallelConfig) -> StreamProcessor<'t> {
        let pool = config.threads.map(|n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n.max(1))
                .build()
                // UNWRAP-OK: pool construction only fails on thread-spawn
                // exhaustion; there is no degraded mode to fall back to.
                .expect("failed to build rayon pool")
        });
        let threads = config.threads.unwrap_or_else(rayon::current_num_threads);
        let mut stats = RunStats {
            threads,
            shared_table_bytes: transducer.table_bytes(),
            ..RunStats::default()
        };
        stats.peak_finish_states = 0;
        StreamProcessor {
            transducer,
            config,
            pool,
            folder: PrefixFolder::new(transducer),
            collected: Vec::new(),
            consumed: 0,
            ladder: Vec::new(),
            stats,
        }
    }

    /// Number of bytes fed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Splits `window` into chunks, processes them in parallel and folds them
    /// into the accumulated mapping.
    pub fn feed(&mut self, window: &[u8]) {
        if window.is_empty() {
            return;
        }
        let total_start = Instant::now();

        // Phase (i): split.
        let split_start = Instant::now();
        let chunks = split_chunks(window, self.config.chunk_size);
        self.stats.timings.split += split_start.elapsed();
        self.stats.chunks += chunks.len();

        // Phase (ii): parallel out-of-order chunk processing.
        let parallel_start = Instant::now();
        let t = self.transducer;
        let kind = self.config.engine;
        let spans = self.config.resolve_spans;
        let base = self.consumed;
        let first_global = self.folder.chunks() == 0;
        let work = |chunks: &[ppt_xmlstream::Chunk]| -> Vec<ChunkOutput> {
            chunks
                .par_iter()
                .map(|c| {
                    process_chunk(
                        t,
                        &window[c.range.clone()],
                        base + c.range.start,
                        c.index,
                        first_global && c.index == 0,
                        kind,
                        spans,
                    )
                })
                .collect()
        };
        let outputs: Vec<ChunkOutput> = match &self.pool {
            Some(pool) => pool.install(|| work(&chunks)),
            None => work(&chunks),
        };
        let parallel_elapsed = parallel_start.elapsed();
        self.stats.timings.parallel += parallel_elapsed;

        // Worker busy/idle accounting (Fig 20).
        let busy: std::time::Duration = outputs.iter().map(|o| o.stats.busy).sum();
        self.stats.worker_busy += busy;
        let capacity = parallel_elapsed.as_secs_f64() * self.stats.threads as f64;
        if capacity > 0.0 {
            let idle = (capacity - busy.as_secs_f64()).max(0.0) / capacity;
            // Weighted running average over windows by parallel time.
            let prev_weight = (self.stats.timings.parallel - parallel_elapsed).as_secs_f64();
            let new_weight = parallel_elapsed.as_secs_f64();
            let total_weight = prev_weight + new_weight;
            self.stats.idle_fraction = if total_weight > 0.0 {
                (self.stats.idle_fraction * prev_weight + idle * new_weight) / total_weight
            } else {
                idle
            };
        }

        // Phase (iii): sequential join.
        let join_start = Instant::now();
        for out in outputs {
            self.stats.parallel_transitions += out.stats.transitions;
            self.stats.tag_events += out.stats.tag_events;
            self.stats.peak_finish_states =
                self.stats.peak_finish_states.max(out.stats.peak_finish_states);
            self.stats.working_set_bytes =
                self.stats.working_set_bytes.max(out.stats.working_set_bytes);

            // The folder rebases depths, unifies, and drains the matches the
            // fold made final.
            let mut delta = self.folder.fold(out.mapping, out.depth_delta, out.ladder);
            self.ladder.extend(std::mem::take(&mut delta.ladder));
            self.collected.extend(delta.take_resolved_matches());
        }
        self.stats.timings.join += join_start.elapsed();

        self.consumed += window.len();
        self.stats.bytes += window.len();
        self.stats.timings.total += total_start.elapsed();
    }

    /// Finishes processing: the matches of the execution path that starts from
    /// the transducer's initial state were drained eagerly at every fold;
    /// resolves element spans that crossed chunk boundaries and returns the
    /// matches in document order together with the collected statistics.
    pub fn finish(mut self) -> (Vec<ResolvedMatch>, RunStats) {
        let finish_start = Instant::now();
        let mut matches = std::mem::take(&mut self.collected);
        matches.sort_by_key(|m| m.pos);

        if self.config.resolve_spans {
            resolve_spans(&mut matches, &mut self.ladder, self.consumed);
        }

        self.stats.subquery_matches = matches.len();
        self.stats.timings.join += finish_start.elapsed();
        self.stats.timings.total += finish_start.elapsed();
        (matches, self.stats)
    }
}

/// Resolves the `end` of matches whose element closed in a later chunk, using
/// the cross-chunk close ladder. `total_len` caps elements that never close.
fn resolve_spans(matches: &mut [ResolvedMatch], ladder: &mut [(usize, i64)], total_len: usize) {
    ladder.sort_by_key(|&(pos, _)| pos);
    // Sweep matches and ladder events in position order, keeping a stack of
    // unresolved matches (their depths are strictly increasing because an
    // unresolved inner element implies an unresolved outer one).
    let mut pending: Vec<usize> = Vec::new();
    let mut ladder_iter = ladder.iter().copied().peekable();
    for i in 0..matches.len() {
        // Apply every ladder event that occurs before this match.
        while let Some(&(pos, depth_after)) = ladder_iter.peek() {
            if pos <= matches[i].pos {
                while let Some(&idx) = pending.last() {
                    if (matches[idx].depth as i64) > depth_after {
                        matches[idx].end = pos;
                        pending.pop();
                    } else {
                        break;
                    }
                }
                ladder_iter.next();
            } else {
                break;
            }
        }
        if matches[i].end == usize::MAX {
            pending.push(i);
        }
    }
    // Remaining ladder events.
    for (pos, depth_after) in ladder_iter {
        while let Some(&idx) = pending.last() {
            if (matches[idx].depth as i64) > depth_after {
                matches[idx].end = pos;
                pending.pop();
            } else {
                break;
            }
        }
    }
    // Elements that never close end at the end of the processed input.
    for idx in pending {
        matches[idx].end = total_len;
    }
}

/// Convenience wrapper: processes an in-memory slice in one window.
pub fn run_parallel(
    t: &Transducer,
    data: &[u8],
    config: ParallelConfig,
) -> (Vec<ResolvedMatch>, RunStats) {
    let mut proc = StreamProcessor::new(t, config);
    proc.feed(data);
    proc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppt_automaton::run_sequential;

    const DOC: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";

    fn config(chunk: usize, threads: usize) -> ParallelConfig {
        ParallelConfig {
            chunk_size: chunk,
            threads: Some(threads),
            engine: EngineKind::Tree,
            resolve_spans: true,
        }
    }

    fn positions(matches: &[ResolvedMatch]) -> Vec<(usize, u32)> {
        matches.iter().map(|m| (m.pos, m.subquery)).collect()
    }

    #[test]
    fn parallel_equals_sequential_for_every_chunk_size() {
        let t = Transducer::from_queries(&["/a/b/c", "//b", "//d"]).unwrap();
        let seq: Vec<(usize, u32)> =
            run_sequential(&t, DOC).iter().map(|m| (m.pos, m.subquery)).collect();
        for chunk_size in [1usize, 2, 3, 5, 7, 11, 17, 100] {
            let (matches, stats) = run_parallel(&t, DOC, config(chunk_size, 2));
            assert_eq!(positions(&matches), seq, "chunk size {chunk_size}");
            assert!(stats.chunks >= 1);
            assert_eq!(stats.bytes, DOC.len());
        }
    }

    #[test]
    fn spans_are_resolved_across_chunks() {
        let t = Transducer::from_queries(&["/a", "/a/b"]).unwrap();
        // Tiny chunks force both <a> and the first <b> to close in later
        // chunks.
        let (matches, _) = run_parallel(&t, DOC, config(4, 2));
        for m in &matches {
            assert_ne!(m.end, usize::MAX);
            let slice = &DOC[m.pos..m.end];
            assert!(slice.starts_with(b"<a>") || slice.starts_with(b"<b>"));
            assert!(slice.ends_with(b"</a>") || slice.ends_with(b"</b>"));
        }
        let a_match = matches.iter().find(|m| m.depth == 1).unwrap();
        assert_eq!(&DOC[a_match.pos..a_match.end], DOC);
    }

    #[test]
    fn depths_are_rebased_across_chunks() {
        let t = Transducer::from_queries(&["//d", "//c"]).unwrap();
        let (matches, _) = run_parallel(&t, DOC, config(5, 3));
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert_eq!(m.depth, 3, "both d and c sit at depth 3");
        }
    }

    #[test]
    fn streaming_windows_give_the_same_answer() {
        let t = Transducer::from_queries(&["/a/b/c", "//d"]).unwrap();
        let seq: Vec<(usize, u32)> =
            run_sequential(&t, DOC).iter().map(|m| (m.pos, m.subquery)).collect();
        // Feed the document in windows whose boundaries fall on '<'.
        let mut proc = StreamProcessor::new(&t, config(6, 2));
        proc.feed(&DOC[..17]);
        proc.feed(&DOC[17..27]);
        proc.feed(&DOC[27..]);
        let (matches, stats) = proc.finish();
        assert_eq!(positions(&matches), seq);
        assert_eq!(stats.bytes, DOC.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let t = Transducer::from_queries(&["/a"]).unwrap();
        let (matches, stats) = run_parallel(&t, b"", ParallelConfig::default());
        assert!(matches.is_empty());
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn stats_report_overhead_and_phases() {
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let mut doc = Vec::new();
        doc.extend_from_slice(b"<a>");
        for _ in 0..500 {
            doc.extend_from_slice(b"<b><c></c></b>");
        }
        doc.extend_from_slice(b"</a>");
        let (matches, stats) = run_parallel(&t, &doc, config(256, 4));
        assert_eq!(matches.len(), 500);
        assert!(stats.overhead_factor() >= 1.0);
        assert!(stats.parallel_transitions >= stats.tag_events);
        assert!(stats.chunks > 1);
        assert!(stats.timings.total >= stats.timings.parallel);
        assert!(stats.working_set_bytes > 0);
        assert!(stats.shared_table_bytes > 0);
    }

    #[test]
    fn naive_engine_agrees_with_tree_engine_end_to_end() {
        let t = Transducer::from_queries(&["/a/b/c", "//b"]).unwrap();
        let tree_cfg = config(5, 2);
        let naive_cfg = ParallelConfig { engine: EngineKind::Naive, ..config(5, 2) };
        let (a, _) = run_parallel(&t, DOC, tree_cfg);
        let (b, _) = run_parallel(&t, DOC, naive_cfg);
        assert_eq!(positions(&a), positions(&b));
    }
}
