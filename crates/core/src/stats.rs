//! Execution statistics collected by the PP-Transducer runtime.
//!
//! The evaluation section of the paper reports, besides raw throughput,
//! several internal quantities: the breakdown of execution time into the
//! parallel / join / filter phases (Fig 13, Fig 16), the transition-count
//! overhead of out-of-order execution (§3.3), worker idle time (Fig 20) and
//! cache-related working-set sizes (Fig 9). [`RunStats`] carries all of them
//! so the benchmark harness can regenerate those figures.

use std::time::Duration;

/// Wall-clock duration of each phase of a run (§3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Splitting the input into chunks (sequential).
    pub split: Duration,
    /// Out-of-order chunk processing (parallel).
    pub parallel: Duration,
    /// Unifying the per-chunk mappings (sequential).
    pub join: Duration,
    /// Predicate recombination (sequential).
    pub filter: Duration,
    /// End-to-end wall-clock time.
    pub total: Duration,
}

/// Statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Input size in bytes.
    pub bytes: usize,
    /// Number of chunks processed.
    pub chunks: usize,
    /// Number of worker threads used for the parallel phase.
    pub threads: usize,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Transducer transitions performed by the out-of-order engines (per
    /// first-level node / per entry, including `funknown` fan-out).
    pub parallel_transitions: u64,
    /// Number of tag events consumed (= transitions an in-order execution
    /// would have performed). The ratio of the two is the §3.3 overhead.
    pub tag_events: u64,
    /// Sum of per-chunk processing times across workers.
    pub worker_busy: Duration,
    /// Fraction of the parallel phase workers spent idle (0.0–1.0) — the
    /// quantity plotted in Fig 20.
    pub idle_fraction: f64,
    /// Largest number of distinct finishing states observed in any chunk.
    pub peak_finish_states: usize,
    /// Total number of basic sub-query matches that survived the join.
    pub subquery_matches: usize,
    /// Largest per-chunk double-tree footprint in bytes (the thread-local
    /// working set of §5.2 / Fig 9).
    pub working_set_bytes: usize,
    /// Size of the shared transition tables in bytes.
    pub shared_table_bytes: usize,
}

impl RunStats {
    /// Processing throughput in MB/s (decimal megabytes, as in the paper's
    /// figures), measured over the total wall-clock time.
    pub fn throughput_mbs(&self) -> f64 {
        let secs = self.timings.total.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1_000_000.0 / secs
    }

    /// Throughput of the parallel phase alone in MB/s.
    pub fn parallel_throughput_mbs(&self) -> f64 {
        let secs = self.timings.parallel.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1_000_000.0 / secs
    }

    /// The §3.3 convergence overhead: out-of-order transitions divided by the
    /// transitions a purely sequential execution would perform. Values close
    /// to 1 mean the state mappings converged quickly.
    pub fn overhead_factor(&self) -> f64 {
        if self.tag_events == 0 {
            return 1.0;
        }
        self.parallel_transitions as f64 / self.tag_events as f64
    }

    /// Per-core throughput in MB/s (Figs 14, 15, 17/18).
    pub fn throughput_per_core_mbs(&self) -> f64 {
        if self.threads == 0 {
            return 0.0;
        }
        self.throughput_mbs() / self.threads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            bytes: 10_000_000,
            chunks: 10,
            threads: 4,
            timings: PhaseTimings {
                split: Duration::from_millis(1),
                parallel: Duration::from_millis(80),
                join: Duration::from_millis(5),
                filter: Duration::from_millis(4),
                total: Duration::from_millis(100),
            },
            parallel_transitions: 130,
            tag_events: 100,
            worker_busy: Duration::from_millis(200),
            idle_fraction: 0.25,
            peak_finish_states: 5,
            subquery_matches: 42,
            working_set_bytes: 4096,
            shared_table_bytes: 1024,
        }
    }

    #[test]
    fn throughput_is_bytes_over_total_time() {
        let s = sample();
        assert!((s.throughput_mbs() - 100.0).abs() < 1e-9);
        assert!((s.throughput_per_core_mbs() - 25.0).abs() < 1e-9);
        assert!(s.parallel_throughput_mbs() > s.throughput_mbs());
    }

    #[test]
    fn overhead_factor_is_ratio_of_transitions() {
        let s = sample();
        assert!((s.overhead_factor() - 1.3).abs() < 1e-9);
        let empty = RunStats::default();
        assert_eq!(empty.overhead_factor(), 1.0);
        assert_eq!(empty.throughput_mbs(), 0.0);
        assert_eq!(empty.throughput_per_core_mbs(), 0.0);
    }
}
