//! Map entries and the naive mapping engine (§4.1, Alg 1).
//!
//! A *mapping* is a set of [`MapEntry`]s, each recording: if the transducer
//! had been in state `start_state` with (unknown) stack `start_stack` at the
//! beginning of the chunk, it would now be in `finish_state` with
//! `finish_stack`, having emitted `outputs`.
//!
//! The naive engine applies the per-entry transition function `f` to every
//! entry independently. It is quadratic in the number of states and exists as
//! the executable specification the tree engine (§4.2) is differentially
//! tested against, and to quantify the benefit of the tree representation in
//! the ablation benchmarks.
//!
//! ## Conventions
//!
//! * `finish_stack`: top of stack at the **end** of the `Vec` (natural
//!   push/pop).
//! * `start_stack`: symbols consumed from the pre-chunk stack in consumption
//!   order — index 0 is the first symbol popped, i.e. the symbol that was on
//!   top of the stack when the chunk began.
//! * `rel_depth` of a match: the element nesting depth relative to the chunk
//!   start (first open tag of the chunk produces depth 1); it is rebased to an
//!   absolute depth during the join.

use ppt_automaton::{StateId, SubQueryId, Transducer};
use ppt_xmlstream::Symbol;

/// One output-tape symbol: a sub-query match found while processing a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMatch {
    /// Byte offset of the opening tag (absolute within the whole input).
    pub pos: usize,
    /// Byte offset one past the element's closing tag, or [`usize::MAX`] when
    /// the element does not close within the same chunk (resolved later).
    pub end: usize,
    /// Nesting depth relative to the chunk start (may exceed the chunk-local
    /// element count when the chunk starts deep inside the document; it is
    /// rebased during the join).
    pub rel_depth: i64,
    /// Which basic sub-query matched.
    pub subquery: SubQueryId,
}

/// One entry of a mapping: `(q_s, z_s) → (q_f, z_f, o)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntry {
    /// Starting state `q_s`.
    pub start_state: StateId,
    /// Starting stack `z_s` (symbols popped from the pre-chunk stack, first
    /// popped at index 0).
    pub start_stack: Vec<StateId>,
    /// Finishing state `q_f`.
    pub finish_state: StateId,
    /// Finishing stack `z_f` (symbols pushed but not yet popped, top at the
    /// end).
    pub finish_stack: Vec<StateId>,
    /// Output tape `o`: the sub-query matches this execution path produced.
    pub outputs: Vec<ChunkMatch>,
}

impl MapEntry {
    /// The identity entry for state `q`: `(q, ε) → (q, ε, ε)`.
    pub fn identity(q: StateId) -> MapEntry {
        MapEntry {
            start_state: q,
            start_stack: Vec::new(),
            finish_state: q,
            finish_stack: Vec::new(),
            outputs: Vec::new(),
        }
    }
}

/// A complete mapping: the set of entries for one chunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mapping {
    /// The entries. Each starting state/stack pair appears at most once.
    pub entries: Vec<MapEntry>,
}

impl Mapping {
    /// The mapping used for the first chunk of the stream: the single entry
    /// `{(q₀, ε) → (q₀, ε, ε)}` (§4.1).
    pub fn initial(t: &Transducer) -> Mapping {
        Mapping { entries: vec![MapEntry::identity(t.initial())] }
    }

    /// The mapping used for an out-of-order chunk: one identity entry per
    /// state, `{(q, ε) → (q, ε, ε) | q ∈ Q}` (§4.1).
    pub fn identity(t: &Transducer) -> Mapping {
        Mapping { entries: (0..t.num_states()).map(MapEntry::identity).collect() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no execution path survives (the chunk is inconsistent with
    /// every considered starting state).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of *distinct finishing states* across the entries — the
    /// convergence measure of §3.3: the smaller this gets, the less work each
    /// further input symbol costs.
    pub fn distinct_finish_states(&self) -> usize {
        let mut states: Vec<StateId> = self.entries.iter().map(|e| e.finish_state).collect();
        states.sort_unstable();
        states.dedup();
        states.len()
    }

    /// Applies an opening tag carrying `sym` (the push transition `fpush`,
    /// Alg 1) to every entry. Returns the number of per-entry transitions
    /// performed.
    pub fn step_open(&mut self, t: &Transducer, sym: Symbol, pos: usize, rel_depth: i64) -> u64 {
        let mut transitions = 0;
        for e in &mut self.entries {
            let next = t.step(e.finish_state, sym);
            e.finish_stack.push(e.finish_state);
            e.finish_state = next;
            transitions += 1;
            for &q in t.output(next) {
                e.outputs.push(ChunkMatch { pos, end: usize::MAX, rel_depth, subquery: q });
            }
        }
        transitions
    }

    /// Applies a closing tag carrying `sym` to every entry: `fpop` when the
    /// finishing stack is non-empty, `funknown` otherwise (Alg 1). Entries
    /// whose execution is inconsistent with the input are discarded
    /// (`f(m, c) = ∅`).
    pub fn step_close(&mut self, t: &Transducer, sym: Symbol) -> u64 {
        let mut transitions = 0;
        let mut next_entries = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            let mut e = e;
            match e.finish_stack.pop() {
                Some(z) => {
                    // fpop: defined only when the push `z --sym--> finish_state`
                    // exists; otherwise the path is impossible and is dropped.
                    transitions += 1;
                    if t.step(z, sym) == e.finish_state {
                        e.finish_state = z;
                        next_entries.push(e);
                    }
                }
                None => {
                    // funknown: consider every state that could legally be
                    // popped here; each becomes its own entry.
                    let sources = t.pop_sources(e.finish_state, sym);
                    transitions += sources.len().max(1) as u64;
                    for &z in sources {
                        let mut fanned = e.clone();
                        fanned.start_stack.push(z);
                        fanned.finish_state = z;
                        next_entries.push(fanned);
                    }
                }
            }
        }
        self.entries = next_entries;
        transitions
    }

    /// Applies a *probe* transition for a synthetic attribute/text symbol: the
    /// transducer output of `δ(q_f, sym)` is recorded but the state and stack
    /// are unchanged (the synthetic element is opened and closed in one step).
    pub fn step_probe(&mut self, t: &Transducer, sym: Symbol, pos: usize, rel_depth: i64) -> u64 {
        let mut transitions = 0;
        for e in &mut self.entries {
            let next = t.step(e.finish_state, sym);
            transitions += 1;
            for &q in t.output(next) {
                e.outputs.push(ChunkMatch { pos, end: usize::MAX, rel_depth, subquery: q });
            }
        }
        transitions
    }

    /// Looks up the entry for a given starting state with an empty starting
    /// stack (convenience for tests).
    pub fn entry_for_start(&self, q: StateId) -> Option<&MapEntry> {
        self.entries.iter().find(|e| e.start_state == q && e.start_stack.is_empty())
    }

    /// Sorts entries by (start state, start stack) so mappings can be compared
    /// structurally in tests.
    pub fn normalise(&mut self) {
        self.entries.sort_by(|a, b| {
            (a.start_state, &a.start_stack, a.finish_state, &a.finish_stack).cmp(&(
                b.start_state,
                &b.start_stack,
                b.finish_state,
                &b.finish_stack,
            ))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppt_automaton::Transducer;

    /// Builds the transducer of the paper's running example (Fig 3).
    fn paper() -> Transducer {
        Transducer::from_queries(&["/a/b/c"]).unwrap()
    }

    /// Symbol helper.
    fn sym(t: &Transducer, name: &str) -> Symbol {
        t.classify_name(name.as_bytes())
    }

    #[test]
    fn initial_and_identity_mappings() {
        let t = paper();
        let init = Mapping::initial(&t);
        assert_eq!(init.len(), 1);
        assert_eq!(init.entries[0].start_state, t.initial());
        assert_eq!(init.entries[0].finish_state, t.initial());

        let ident = Mapping::identity(&t);
        assert_eq!(ident.len(), t.num_states() as usize);
        for e in &ident.entries {
            assert_eq!(e.start_state, e.finish_state);
            assert!(e.start_stack.is_empty() && e.finish_stack.is_empty());
        }
    }

    #[test]
    fn first_chunk_produces_m1() {
        // Chunk 1 of the running example: <a><b><d></d></b>  (lines 1-4).
        // Expected mapping M1 = {(1, ε) → (2, [1], ε)}.
        let t = paper();
        let mut m = Mapping::initial(&t);
        let a = sym(&t, "a");
        let b = sym(&t, "b");
        let d = sym(&t, "d");
        m.step_open(&t, a, 0, 1);
        m.step_open(&t, b, 3, 2);
        m.step_open(&t, d, 6, 3);
        m.step_close(&t, d);
        m.step_close(&t, b);
        assert_eq!(m.len(), 1);
        let e = &m.entries[0];
        assert_eq!(e.start_state, t.initial());
        assert!(e.start_stack.is_empty());
        // Finish state = state after /a, finish stack = [initial].
        let s2 = t.step(t.initial(), a);
        assert_eq!(e.finish_state, s2);
        assert_eq!(e.finish_stack, vec![t.initial()]);
        assert!(e.outputs.is_empty());
    }

    #[test]
    fn second_chunk_produces_m5() {
        // Chunk 2 of the running example: <b><c></c></b></a>  (lines 5-8).
        // Expected M5 (in the paper's numbering):
        //   (0,[0])→(0,ε), (0,[2])→(2,ε), (0,[3])→(3,ε), (0,[4])→(4,ε),
        //   (2,[1])→(1,ε, output 1)
        let t = paper();
        let a = sym(&t, "a");
        let b = sym(&t, "b");
        let c = sym(&t, "c");
        let s1 = t.initial();
        let s2 = t.step(s1, a);
        let s3 = t.step(s2, b);
        let s4 = t.step(s3, c);
        let sink = t.step(s1, b);

        let mut m = Mapping::identity(&t);
        m.step_open(&t, b, 0, 1);
        m.step_open(&t, c, 3, 2);
        // M3 check: the entry starting in s2 must have produced the output.
        let m3_entry = m.entry_for_start(s2).unwrap();
        assert_eq!(m3_entry.finish_state, s4);
        assert_eq!(m3_entry.finish_stack, vec![s2, s3]);
        assert_eq!(m3_entry.outputs.len(), 1);

        m.step_close(&t, c);
        m.step_close(&t, b);
        // M4: identity again but the s2 entry carries the match.
        assert_eq!(m.len(), t.num_states() as usize);
        for e in &m.entries {
            assert_eq!(e.start_state, e.finish_state);
            assert!(e.finish_stack.is_empty());
        }
        assert_eq!(m.entry_for_start(s2).unwrap().outputs.len(), 1);

        m.step_close(&t, a);
        // M5: five entries.
        m.normalise();
        assert_eq!(m.len(), 5);
        // The entry that started in s2 popped the unknown symbol s1 and ends
        // in s1 carrying the output.
        let matched: Vec<&MapEntry> = m.entries.iter().filter(|e| e.start_state == s2).collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].start_stack, vec![s1]);
        assert_eq!(matched[0].finish_state, s1);
        assert!(matched[0].finish_stack.is_empty());
        assert_eq!(matched[0].outputs.len(), 1);
        // The sink-started entries fan out over states {sink, s3, s4, sink?}
        // — exactly the states with an `a` push into the sink.
        let from_sink: Vec<&MapEntry> =
            m.entries.iter().filter(|e| e.start_state == sink).collect();
        assert_eq!(from_sink.len(), 4);
        for e in &from_sink {
            assert_eq!(e.start_stack.len(), 1);
            assert_eq!(e.finish_state, e.start_stack[0]);
            assert!(e.outputs.is_empty());
        }
        // Entries that started in s1, s3 and s4 are discarded: no pop into
        // those states exists under </a>.
        assert!(m.entry_for_start(s1).is_none());
        assert!(!m.entries.iter().any(|e| e.start_state == s3));
        assert!(!m.entries.iter().any(|e| e.start_state == s4));
    }

    #[test]
    fn all_entries_share_stack_depths() {
        // Invariant used by the tree engine: because every entry processes the
        // same events, finishing-stack and starting-stack lengths are equal
        // across entries at all times.
        let t = Transducer::from_queries(&["/a/b/c", "//k"]).unwrap();
        let doc = b"<x><a><b><k/></b></a></x><a><b><c/></b></a>";
        let mut m = Mapping::identity(&t);
        let mut depth = 0i64;
        for ev in ppt_xmlstream::Lexer::tags_only(doc) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, pos } => {
                    depth += 1;
                    m.step_open(&t, t.classify_name(name), pos, depth);
                }
                ppt_xmlstream::XmlEvent::Close { name, .. } => {
                    depth -= 1;
                    m.step_close(&t, t.classify_name(name));
                }
                _ => {}
            }
            let flens: Vec<usize> = m.entries.iter().map(|e| e.finish_stack.len()).collect();
            let slens: Vec<usize> = m.entries.iter().map(|e| e.start_stack.len()).collect();
            assert!(flens.windows(2).all(|w| w[0] == w[1]), "finish stacks diverged");
            assert!(slens.windows(2).all(|w| w[0] == w[1]), "start stacks diverged");
        }
    }

    #[test]
    fn convergence_reduces_distinct_finish_states() {
        // After a couple of nested opens, every starting state funnels into a
        // small number of finishing states.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let mut m = Mapping::identity(&t);
        assert_eq!(m.distinct_finish_states(), t.num_states() as usize);
        m.step_open(&t, sym(&t, "x"), 0, 1);
        // Every state moves to the sink on an unknown element.
        assert_eq!(m.distinct_finish_states(), 1);
    }

    #[test]
    fn probe_records_matches_without_touching_state() {
        let t = Transducer::from_queries(&["/a/@id"]).unwrap();
        let mut m = Mapping::initial(&t);
        let a = sym(&t, "a");
        m.step_open(&t, a, 0, 1);
        let before: Vec<(StateId, usize)> =
            m.entries.iter().map(|e| (e.finish_state, e.finish_stack.len())).collect();
        let attr_sym = t.classify_attr(b"id").unwrap();
        m.step_probe(&t, attr_sym, 3, 2);
        let after: Vec<(StateId, usize)> =
            m.entries.iter().map(|e| (e.finish_state, e.finish_stack.len())).collect();
        assert_eq!(before, after);
        assert_eq!(m.entries[0].outputs.len(), 1);
    }

    #[test]
    fn malformed_chunk_discards_impossible_paths() {
        // A close tag for which no state has a pop transition in the current
        // configuration discards those entries rather than panicking.
        let t = paper();
        let mut m = Mapping::initial(&t);
        m.step_open(&t, sym(&t, "a"), 0, 1);
        // Closing `b` while the stack holds the state pushed for `a` is
        // inconsistent: t.step(initial, b) != state-after-a.
        m.step_close(&t, sym(&t, "b"));
        assert!(m.is_empty());
    }
}
