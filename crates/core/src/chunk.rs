//! Out-of-order processing of one XML chunk (§3.2 phase ii).
//!
//! A chunk is an arbitrary byte range of the input (produced by
//! [`ppt_xmlstream::split_chunks`]); it need not be well-formed. The chunk is
//! lexed into tag events and driven through either the naive mapping engine or
//! the double-tree engine, producing a [`Mapping`] from every possible
//! starting state to its finishing state plus the sub-query matches emitted
//! along each path.
//!
//! Besides the mapping, the chunk records what the join phase needs to stitch
//! results back together:
//!
//! * `depth_delta` — how much deeper (or shallower) the document is at the end
//!   of the chunk than at its start, used to rebase the relative depths of
//!   matches;
//! * `ladder` — for every closing tag that closes an element opened in an
//!   *earlier* chunk, the position after the tag and the relative depth it
//!   returns to; this is what resolves element spans that cross chunk
//!   boundaries.

use crate::mapping::Mapping;
use crate::tree::DoubleTree;
use ppt_automaton::{run_sequential_with_stats, Transducer};
use ppt_xmlstream::{Lexer, XmlEvent};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which per-chunk engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The double-tree engine of §4.2 (default).
    #[default]
    Tree,
    /// The naive one-transition-per-entry engine of §4.1 (reference /
    /// ablation).
    Naive,
}

/// Counters collected while processing one chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkStats {
    /// Out-of-order transitions performed.
    pub transitions: u64,
    /// Tag events consumed.
    pub tag_events: u64,
    /// Peak number of distinct finishing states.
    pub peak_finish_states: usize,
    /// Wall-clock time spent processing the chunk.
    pub busy: Duration,
    /// Approximate heap footprint of the per-chunk engine state.
    pub working_set_bytes: usize,
}

/// The result of processing one chunk.
#[derive(Debug, Clone)]
pub struct ChunkOutput {
    /// Chunk sequence number.
    pub index: usize,
    /// The state mapping (matches carry absolute byte offsets and
    /// chunk-relative depths).
    pub mapping: Mapping,
    /// Depth at the end of the chunk relative to its start.
    pub depth_delta: i64,
    /// `(position after the closing tag, relative depth after the close)` for
    /// every close of an element opened in an earlier chunk.
    pub ladder: Vec<(usize, i64)>,
    /// Absolute stream offset just past the chunk's last byte. Joining this
    /// chunk makes the stream final up to here — the online joiner uses it as
    /// the release frontier for retained payload windows.
    pub end_offset: usize,
    /// Counters.
    pub stats: ChunkStats,
}

enum ChunkEngine {
    Tree(DoubleTree),
    Naive(Mapping, u64),
}

impl ChunkEngine {
    fn new(t: &Transducer, kind: EngineKind, is_first: bool) -> ChunkEngine {
        match kind {
            EngineKind::Tree => ChunkEngine::Tree(if is_first {
                DoubleTree::initial(t)
            } else {
                DoubleTree::identity(t)
            }),
            EngineKind::Naive => ChunkEngine::Naive(
                if is_first { Mapping::initial(t) } else { Mapping::identity(t) },
                0,
            ),
        }
    }

    fn step_open(&mut self, t: &Transducer, sym: ppt_xmlstream::Symbol, pos: usize, depth: i64) {
        match self {
            ChunkEngine::Tree(tree) => tree.step_open(t, sym, pos, depth),
            ChunkEngine::Naive(m, n) => *n += m.step_open(t, sym, pos, depth),
        }
    }

    fn step_close(&mut self, t: &Transducer, sym: ppt_xmlstream::Symbol) {
        match self {
            ChunkEngine::Tree(tree) => tree.step_close(t, sym),
            ChunkEngine::Naive(m, n) => *n += m.step_close(t, sym),
        }
    }

    fn step_probe(&mut self, t: &Transducer, sym: ppt_xmlstream::Symbol, pos: usize, depth: i64) {
        match self {
            ChunkEngine::Tree(tree) => tree.step_probe(t, sym, pos, depth),
            ChunkEngine::Naive(m, n) => *n += m.step_probe(t, sym, pos, depth),
        }
    }

    fn transitions(&self) -> u64 {
        match self {
            ChunkEngine::Tree(tree) => tree.transitions,
            ChunkEngine::Naive(_, n) => *n,
        }
    }

    fn peak_states(&self) -> usize {
        match self {
            ChunkEngine::Tree(tree) => tree.peak_level1,
            ChunkEngine::Naive(m, _) => m.distinct_finish_states().max(m.len()),
        }
    }

    fn working_set(&self) -> usize {
        match self {
            ChunkEngine::Tree(tree) => tree.heap_bytes(),
            ChunkEngine::Naive(m, _) => m.len() * std::mem::size_of::<crate::mapping::MapEntry>(),
        }
    }

    fn into_mapping(self) -> Mapping {
        match self {
            ChunkEngine::Tree(tree) => tree.extract(),
            ChunkEngine::Naive(m, _) => m,
        }
    }
}

/// Position just past the `>` of the tag that starts at `pos` in `slice`.
fn tag_end(slice: &[u8], pos: usize) -> usize {
    slice[pos..].iter().position(|&b| b == b'>').map(|off| pos + off + 1).unwrap_or(slice.len())
}

/// Processes one chunk out of order.
///
/// * `slice` — the chunk's bytes;
/// * `abs_offset` — the chunk's starting offset in the whole stream (added to
///   every recorded position);
/// * `is_first` — `true` only for the very first chunk of the stream, which
///   starts from the single initial state rather than from all states;
/// * `need_spans` — when `true`, element end positions are resolved for
///   matches whose element closes inside the chunk, and the cross-chunk close
///   ladder is recorded.
pub fn process_chunk(
    t: &Transducer,
    slice: &[u8],
    abs_offset: usize,
    index: usize,
    is_first: bool,
    kind: EngineKind,
    need_spans: bool,
) -> ChunkOutput {
    let started = Instant::now();
    let mut engine = ChunkEngine::new(t, kind, is_first);
    let mut rel_depth: i64 = 0;
    let mut tag_events: u64 = 0;
    let mut ladder: Vec<(usize, i64)> = Vec::new();
    let mut open_stack: Vec<usize> = Vec::new();
    let mut spans: HashMap<usize, usize> = HashMap::new();

    let full_events = t.needs_full_events();
    let handle = |ev: XmlEvent<'_>,
                  engine: &mut ChunkEngine,
                  rel_depth: &mut i64,
                  tag_events: &mut u64,
                  ladder: &mut Vec<(usize, i64)>,
                  open_stack: &mut Vec<usize>,
                  spans: &mut HashMap<usize, usize>| {
        match ev {
            XmlEvent::Open { name, pos } => {
                *rel_depth += 1;
                *tag_events += 1;
                let abs = abs_offset + pos;
                engine.step_open(t, t.classify_name(name), abs, *rel_depth);
                if need_spans {
                    open_stack.push(abs);
                }
            }
            XmlEvent::Close { name, pos } => {
                *tag_events += 1;
                engine.step_close(t, t.classify_name(name));
                if need_spans {
                    let end = abs_offset + tag_end(slice, pos);
                    match open_stack.pop() {
                        Some(open_pos) => {
                            spans.insert(open_pos, end);
                        }
                        None => ladder.push((end, *rel_depth - 1)),
                    }
                }
                *rel_depth -= 1;
            }
            XmlEvent::Attr { name, pos, .. } => {
                if let Some(sym) = t.classify_attr(name) {
                    engine.step_probe(t, sym, abs_offset + pos, *rel_depth + 1);
                }
            }
            XmlEvent::Text { text, pos } => {
                let trimmed = ppt_automaton::exec::trim_ws(text);
                if trimmed.is_empty() {
                    return;
                }
                if let Some(sym) = t.classify_text(trimmed) {
                    engine.step_probe(t, sym, abs_offset + pos, *rel_depth + 1);
                }
            }
        }
    };

    if full_events {
        for ev in Lexer::new(slice) {
            handle(
                ev,
                &mut engine,
                &mut rel_depth,
                &mut tag_events,
                &mut ladder,
                &mut open_stack,
                &mut spans,
            );
        }
    } else {
        for ev in Lexer::tags_only(slice) {
            handle(
                ev,
                &mut engine,
                &mut rel_depth,
                &mut tag_events,
                &mut ladder,
                &mut open_stack,
                &mut spans,
            );
        }
    }

    let transitions = engine.transitions();
    let peak_finish_states = engine.peak_states();
    let working_set_bytes = engine.working_set();
    let mut mapping = engine.into_mapping();

    if need_spans && !spans.is_empty() {
        for entry in &mut mapping.entries {
            for m in &mut entry.outputs {
                if let Some(&end) = spans.get(&m.pos) {
                    m.end = end;
                }
            }
        }
    }

    ChunkOutput {
        index,
        mapping,
        depth_delta: rel_depth,
        ladder,
        end_offset: abs_offset + slice.len(),
        stats: ChunkStats {
            transitions,
            tag_events,
            peak_finish_states,
            busy: started.elapsed(),
            working_set_bytes,
        },
    }
}

/// Convenience used by tests and the overhead experiment: the number of
/// transitions an in-order execution performs on the same bytes.
pub fn sequential_transitions(t: &Transducer, data: &[u8]) -> u64 {
    run_sequential_with_stats(t, data).1.transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::unify_mappings;

    const DOC: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";

    #[test]
    fn single_chunk_equals_sequential_matches() {
        let t = Transducer::from_queries(&["/a/b/c", "//d"]).unwrap();
        let out = process_chunk(&t, DOC, 0, 0, true, EngineKind::Tree, true);
        assert_eq!(out.mapping.len(), 1);
        let e = &out.mapping.entries[0];
        let seq = ppt_automaton::run_sequential(&t, DOC);
        assert_eq!(e.outputs.len(), seq.len());
        let mut expected: Vec<(usize, u32)> = seq.iter().map(|m| (m.pos, m.subquery)).collect();
        let mut got: Vec<(usize, u32)> = e.outputs.iter().map(|m| (m.pos, m.subquery)).collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(expected, got);
        assert_eq!(out.depth_delta, 0);
        assert!(out.ladder.is_empty());
        assert_eq!(out.end_offset, DOC.len());
    }

    #[test]
    fn two_chunks_unify_to_the_sequential_result() {
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        // Split at the '<' of the second <b> (offset 17).
        let split = 17;
        let first = process_chunk(&t, &DOC[..split], 0, 0, true, EngineKind::Tree, true);
        let second = process_chunk(&t, &DOC[split..], split, 1, false, EngineKind::Tree, true);
        assert_eq!(first.depth_delta, 1, "the first chunk leaves <a> open");
        assert_eq!(second.depth_delta, -1);
        assert_eq!(first.end_offset, split);
        assert_eq!(second.end_offset, DOC.len());
        let joined = unify_mappings(&first.mapping, &second.mapping);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.entries[0].outputs.len(), 1);
        // The match's absolute position points at the <c> tag.
        let pos = joined.entries[0].outputs[0].pos;
        assert_eq!(&DOC[pos..pos + 3], b"<c>");
    }

    #[test]
    fn spans_resolve_within_a_chunk() {
        let t = Transducer::from_queries(&["/a/b"]).unwrap();
        let out = process_chunk(&t, DOC, 0, 0, true, EngineKind::Tree, true);
        let e = &out.mapping.entries[0];
        assert_eq!(e.outputs.len(), 2);
        for m in &e.outputs {
            assert_ne!(m.end, usize::MAX);
            assert!(DOC[m.pos..m.end].starts_with(b"<b>"));
            assert!(DOC[m.pos..m.end].ends_with(b"</b>"));
        }
    }

    #[test]
    fn cross_chunk_closes_are_recorded_on_the_ladder() {
        let t = Transducer::from_queries(&["/a"]).unwrap();
        let split = 17;
        let second = process_chunk(&t, &DOC[split..], split, 1, false, EngineKind::Tree, true);
        // The second chunk closes </a>, an element opened in the first chunk.
        assert_eq!(second.ladder.len(), 1);
        let (end, depth_after) = second.ladder[0];
        assert_eq!(end, DOC.len());
        assert_eq!(depth_after, -1);
    }

    #[test]
    fn naive_and_tree_chunks_agree() {
        let t = Transducer::from_queries(&["/a/b/c", "//k", "/x//y"]).unwrap();
        let doc = b"<x><a><b><c/><k/></b></a><y><k/></y></x>";
        for split in [0usize, 3, 6, 13, 25] {
            let (left, right) = doc.split_at(split);
            for (slice, first, off) in [(left, true, 0usize), (right, split == 0, split)] {
                let a = process_chunk(&t, slice, off, 0, first, EngineKind::Tree, true);
                let b = process_chunk(&t, slice, off, 0, first, EngineKind::Naive, true);
                let mut ma = a.mapping.clone();
                let mut mb = b.mapping.clone();
                ma.normalise();
                mb.normalise();
                assert_eq!(ma, mb, "split at {split}");
                assert_eq!(a.depth_delta, b.depth_delta);
                assert_eq!(a.ladder, b.ladder);
            }
        }
    }

    #[test]
    fn sequential_transition_count_matches_tag_events() {
        let t = Transducer::from_queries(&["/a/b"]).unwrap();
        let out = process_chunk(&t, DOC, 0, 0, true, EngineKind::Tree, false);
        assert_eq!(out.stats.tag_events, 10);
        assert_eq!(sequential_transitions(&t, DOC), 10);
        // A first chunk has a single execution path, so out-of-order cost
        // equals in-order cost.
        assert_eq!(out.stats.transitions, 10);
    }

    #[test]
    fn out_of_order_chunk_has_bounded_overhead() {
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let mut doc = Vec::new();
        for _ in 0..100 {
            doc.extend_from_slice(b"<b><c></c></b>");
        }
        let out = process_chunk(&t, &doc, 0, 0, false, EngineKind::Tree, false);
        let seq = sequential_transitions(&t, &doc);
        let overhead = out.stats.transitions as f64 / seq as f64;
        // §3.3: for reasonable chunk sizes the overhead stays in the low
        // single digits (the paper reports 1.1×–3×).
        assert!(overhead < 4.0, "overhead {overhead} too large");
        assert!(overhead >= 1.0);
    }
}
