//! The **Parallel Pushdown Transducer** (PP-Transducer) — the paper's core
//! contribution (§3 and §4).
//!
//! A PP-Transducer executes a set of streaming XPath queries against an XML
//! byte stream with data parallelism. The stream is split at *arbitrary* byte
//! boundaries into chunks; each chunk is processed out-of-order by modelling
//! the pushdown transducer from **every possible starting state**, producing a
//! *mapping* from starting state/stack to finishing state/stack and output
//! tape; the per-chunk mappings are then unified in an inexpensive sequential
//! join, and a final filter phase recombines sub-query matches into the user's
//! original (possibly predicated) queries.
//!
//! Module map (paper section in parentheses):
//!
//! * [`mapping`] — map entries and the naive set-of-entries engine with the
//!   transition functions `fplain`/`fpush`/`fpop`/`funknown` (§4.1, Alg 1).
//! * [`join`] — the unification function `j`/`J` merging two mappings
//!   (§4.1, Alg 2).
//! * [`tree`] — the double-tree data structure that processes all entries
//!   sharing a finishing state at once (§4.2, Algs 3–6, Figs 5/6).
//! * [`chunk`] — out-of-order processing of a single chunk (either engine).
//! * [`parallel`] — the split → parallel → join pipeline on a rayon pool
//!   (§3.2 phases i–iii).
//! * [`filter`] — predicate recombination for rewritten queries (§3.2 phase
//!   iv).
//! * [`stats`] — phase timings, transition counts, worker idle time and
//!   working-set proxies used by the evaluation harness.
//! * [`engine`] — the public façade: build an [`engine::Engine`] from query
//!   strings, run it over byte slices or readers.

// PR-8 hardening: no unsafe code belongs in this crate, and every public
// type must be debuggable from test failures and operator logs.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod chunk;
pub mod engine;
pub mod filter;
pub mod join;
pub mod mapping;
pub mod parallel;
pub mod stats;
pub mod tree;

pub use chunk::{process_chunk, ChunkOutput, EngineKind};
pub use engine::{Engine, EngineBuilder, EngineConfig, QueryMatch, QueryResult};
pub use mapping::{ChunkMatch, MapEntry, Mapping};
pub use parallel::{run_parallel, ParallelConfig, ResolvedMatch, StreamProcessor};
pub use stats::RunStats;
