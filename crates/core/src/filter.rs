//! The filter phase (§3.2 phase iv): recombining basic sub-query matches into
//! the user's original, possibly predicated, queries.
//!
//! For a rewritten query the plan records an *anchor* sub-query (matching the
//! element the predicate is attached to), a boolean
//! [`PredicateExpr`](ppt_xpath::PredicateExpr) over
//! predicate sub-queries and one or more *result* sub-queries. The filter
//! walks all matches in document order, associates every predicate and result
//! match with the anchor occurrences that contain it, evaluates the predicate
//! per anchor occurrence and keeps exactly the result matches whose anchor
//! satisfies it.
//!
//! Association uses element spans (start/end byte offsets) plus depth
//! information: when the path from the anchor to a sub-query match uses only
//! child steps its depth relative to the anchor is fixed, so matches are
//! attributed to the anchor at exactly that depth; when it uses descendant
//! steps any containing anchor qualifies. Both rules follow directly from
//! XPath semantics.

use crate::parallel::ResolvedMatch;
use ppt_xpath::{BasicAxis, CompiledQuery, QueryPlan};

/// A match of one of the user's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMatch {
    /// Byte offset of the matched element's opening tag.
    pub start: usize,
    /// Byte offset just past the matched element's closing tag.
    pub end: usize,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
}

/// The outcome of the filter phase.
#[derive(Debug, Clone, Default)]
pub struct FilterOutcome {
    /// Result matches per user query, in document order.
    pub matches: Vec<Vec<QueryMatch>>,
    /// Total number of basic sub-query matches attributed to each user query
    /// before filtering (Table 2's "# sub-matches" column).
    pub submatch_counts: Vec<usize>,
}

/// Relationship between a sub-query and its anchor prefix.
#[derive(Debug, Clone, Copy)]
struct SuffixInfo {
    /// Number of steps after the anchor prefix.
    len: usize,
    /// `true` when every suffix step uses the child axis, i.e. the match's
    /// depth relative to the anchor is exactly `len`.
    exact: bool,
}

fn suffix_info(plan: &QueryPlan, anchor: usize, sub: usize) -> SuffixInfo {
    let anchor_steps = &plan.subqueries[anchor].steps;
    let sub_steps = &plan.subqueries[sub].steps;
    if sub_steps.len() < anchor_steps.len() || sub_steps[..anchor_steps.len()] != anchor_steps[..] {
        // Defensive: the rewriter always builds predicate/result sub-queries
        // by extending the anchor; if not, fall back to containment-only
        // attribution.
        return SuffixInfo {
            len: sub_steps.len().saturating_sub(anchor_steps.len()),
            exact: false,
        };
    }
    let suffix = &sub_steps[anchor_steps.len()..];
    SuffixInfo { len: suffix.len(), exact: suffix.iter().all(|s| s.axis == BasicAxis::Child) }
}

/// Applies the per-query filters to the resolved sub-query matches.
///
/// `matches` must be sorted by position (the join phase guarantees this).
pub fn apply_filters(plan: &QueryPlan, matches: &[ResolvedMatch]) -> FilterOutcome {
    // Index matches by sub-query once.
    let mut by_subquery: Vec<Vec<&ResolvedMatch>> = vec![Vec::new(); plan.subqueries.len()];
    for m in matches {
        if let Some(v) = by_subquery.get_mut(m.subquery as usize) {
            v.push(m);
        }
    }

    let mut outcome = FilterOutcome::default();
    for query in &plan.queries {
        let submatches: usize = query.all_subqueries.iter().map(|&s| by_subquery[s].len()).sum();
        outcome.submatch_counts.push(submatches);
        outcome.matches.push(filter_query(plan, query, &by_subquery));
    }
    outcome
}

/// Applies one query's filter to a self-contained slice of resolved matches
/// (sorted by position).
///
/// The online runtime uses this to filter *scopes* — maximal runs of the
/// stream during which at least one anchor occurrence was open. Because
/// predicate and result sub-queries extend the anchor's path, every match
/// they produce is contained in some anchor occurrence, so filtering each
/// closed scope independently is equivalent to filtering the whole stream at
/// once.
pub fn filter_single_query(
    plan: &QueryPlan,
    query_index: usize,
    matches: &[ResolvedMatch],
) -> Vec<QueryMatch> {
    let query = &plan.queries[query_index];
    let mut by_subquery: Vec<Vec<&ResolvedMatch>> = vec![Vec::new(); plan.subqueries.len()];
    for m in matches {
        if let Some(v) = by_subquery.get_mut(m.subquery as usize) {
            v.push(m);
        }
    }
    filter_query(plan, query, &by_subquery)
}

fn filter_query(
    plan: &QueryPlan,
    query: &CompiledQuery,
    by_subquery: &[Vec<&ResolvedMatch>],
) -> Vec<QueryMatch> {
    match &query.filter {
        None => {
            // Union of the result sub-queries (already each in document
            // order); merge and deduplicate by position.
            let mut out: Vec<QueryMatch> = query
                .result_subqueries
                .iter()
                .flat_map(|&s| by_subquery[s].iter().map(|m| to_query_match(m)))
                .collect();
            out.sort_by_key(|m| m.start);
            out.dedup_by_key(|m| m.start);
            out
        }
        Some(filter) => {
            let anchors = &by_subquery[filter.anchor];
            if anchors.is_empty() {
                return Vec::new();
            }
            let pred_subqueries = filter.predicate.subqueries();

            // For every anchor occurrence, which predicate sub-queries hold.
            let mut satisfied: Vec<Vec<bool>> =
                vec![vec![false; plan.subqueries.len()]; anchors.len()];
            for &ps in &pred_subqueries {
                let info = suffix_info(plan, filter.anchor, ps);
                attribute(anchors, &by_subquery[ps], info, |anchor_idx, _| {
                    satisfied[anchor_idx][ps] = true;
                });
            }
            let anchor_ok: Vec<bool> =
                (0..anchors.len()).map(|i| filter.predicate.eval(&|s| satisfied[i][s])).collect();

            // Keep result matches attributed to at least one satisfied anchor.
            let mut out: Vec<QueryMatch> = Vec::new();
            for &rs in &query.result_subqueries {
                let info = suffix_info(plan, filter.anchor, rs);
                let results = &by_subquery[rs];
                let mut keep = vec![false; results.len()];
                attribute(anchors, results, info, |anchor_idx, result_idx| {
                    if anchor_ok[anchor_idx] {
                        keep[result_idx] = true;
                    }
                });
                for (i, m) in results.iter().enumerate() {
                    if keep[i] {
                        out.push(to_query_match(m));
                    }
                }
            }
            out.sort_by_key(|m| m.start);
            out.dedup_by_key(|m| m.start);
            out
        }
    }
}

fn to_query_match(m: &ResolvedMatch) -> QueryMatch {
    QueryMatch { start: m.pos, end: m.end, depth: m.depth }
}

/// Sweeps `items` (sorted by position) against `anchors` (sorted by position)
/// and calls `hit(anchor_index, item_index)` for every anchor occurrence the
/// item is attributed to.
fn attribute<F: FnMut(usize, usize)>(
    anchors: &[&ResolvedMatch],
    items: &[&ResolvedMatch],
    info: SuffixInfo,
    mut hit: F,
) {
    // Stack of anchors whose span contains the current position.
    let mut open: Vec<usize> = Vec::new();
    let mut next_anchor = 0usize;
    for (item_idx, item) in items.iter().enumerate() {
        // Open anchors that start at or before the item. An anchor whose span
        // starts at the same position as the item is the item itself matching
        // the anchor sub-query (possible when the result equals the anchor);
        // it must be considered containing.
        while next_anchor < anchors.len() && anchors[next_anchor].pos <= item.pos {
            open.push(next_anchor);
            next_anchor += 1;
        }
        // Drop anchors that closed before the item.
        open.retain(|&a| anchors[a].end > item.pos || anchors[a].pos == item.pos);
        for &a in open.iter().rev() {
            let anchor = anchors[a];
            let contains = item.pos >= anchor.pos && item.pos < anchor.end.max(anchor.pos + 1);
            if !contains {
                continue;
            }
            if info.exact && info.len > 0 {
                if item.depth as i64 == anchor.depth as i64 + info.len as i64 {
                    hit(a, item_idx);
                    break; // exactly one anchor can be at that depth
                }
            } else if info.len == 0 {
                // The result sub-query equals the anchor: the item *is* the
                // anchor occurrence.
                if item.pos == anchor.pos {
                    hit(a, item_idx);
                    break;
                }
            } else {
                // Descendant suffix: every containing anchor qualifies.
                hit(a, item_idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{run_parallel, ParallelConfig};
    use ppt_automaton::Transducer;
    use ppt_xpath::compile_queries;

    fn run(queries: &[&str], xml: &[u8]) -> (FilterOutcome, QueryPlan) {
        let plan = compile_queries(queries).unwrap();
        let t = Transducer::from_plan(&plan);
        let (matches, _) = run_parallel(&t, xml, ParallelConfig::default());
        (apply_filters(&plan, &matches), plan)
    }

    #[test]
    fn plain_query_passes_through() {
        let (out, _) = run(&["/a/b"], b"<a><b/><b/><c/></a>");
        assert_eq!(out.matches[0].len(), 2);
        assert_eq!(out.submatch_counts[0], 2);
    }

    #[test]
    fn predicate_keeps_only_anchors_that_satisfy_it() {
        // /a/p[x]/n : only persons with an <x> child contribute their <n>.
        let xml = b"<a><p><x/><n/></p><p><n/></p><p><x/><n/><n/></p></a>";
        let (out, _) = run(&["/a/p[x]/n"], xml);
        assert_eq!(out.matches[0].len(), 3, "two from the first p... ");
        // Sub-matches: anchors (3) + x (2) + n (4) = 9.
        assert_eq!(out.submatch_counts[0], 9);
    }

    #[test]
    fn and_or_predicates() {
        let xml = b"<s><p><ph/><n/></p><p><h/><n/></p><p><z/><n/></p></s>";
        let (out, _) = run(&["/s/p[ph or h]/n"], xml);
        assert_eq!(out.matches[0].len(), 2);
        let (out, _) = run(&["/s/p[ph and h]/n"], xml);
        assert_eq!(out.matches[0].len(), 0);
        let xml2 = b"<s><p><ph/><h/><n/></p><p><ph/><n/></p></s>";
        let (out, _) = run(&["/s/p[ph and h]/n"], xml2);
        assert_eq!(out.matches[0].len(), 1);
    }

    #[test]
    fn not_predicate() {
        let xml = b"<s><p><x/><n/></p><p><n/></p></s>";
        let (out, _) = run(&["/s/p[not(x)]/n"], xml);
        assert_eq!(out.matches[0].len(), 1);
    }

    #[test]
    fn descendant_predicate_counts_any_depth() {
        // /s/c[descendant::k]/d
        let xml = b"<s><c><a><k/></a><d/></c><c><d/></c></s>";
        let (out, _) = run(&["/s/c[descendant::k]/d"], xml);
        assert_eq!(out.matches[0].len(), 1);
    }

    #[test]
    fn nested_anchor_attribution_is_exact_for_child_suffixes() {
        // //p[x]/n with nested p elements: the inner p has no x, so its n must
        // not be reported even though the outer p (which has an x) contains
        // it.
        let xml = b"<root><p><x/><n/><p><n/></p></p></root>";
        let (out, _) = run(&["//p[x]/n"], xml);
        assert_eq!(out.matches[0].len(), 1);
        // And the reported n is the outer one (depth 3).
        assert_eq!(out.matches[0][0].depth, 3);
    }

    #[test]
    fn nested_anchor_attribution_for_descendant_predicates() {
        // //li[.//k]/t : the outer li contains a k (deep inside), the inner li
        // does not.
        let xml = b"<root><li><x><k/></x><t/><li><t/></li></li></root>";
        let plan = compile_queries(&["//k/ancestor::li/t/k"]).unwrap();
        // Build an equivalent check with a simpler query that exercises the
        // descendant-predicate path.
        drop(plan);
        let (out, _) = run(&["//li[k]/t"], xml);
        // Neither li has a *child* k, so nothing matches with a child
        // predicate...
        assert_eq!(out.matches[0].len(), 0);
        // ...but with a descendant predicate the outer li qualifies.
        let (out, _) = run(&["//li[descendant::k]/t"], xml);
        assert_eq!(out.matches[0].len(), 1);
        assert_eq!(out.matches[0][0].depth, 3);
    }

    #[test]
    fn b1_style_union_of_alternative_paths() {
        let xml = b"<s><r><sa><item><name/></item></sa><na><item><name/></item></na>\
                    <eu><item><name/></item></eu></r></s>";
        let (out, _) = run(&["/s/r/*/item[parent::sa or parent::na]/name"], xml);
        assert_eq!(out.matches[0].len(), 2, "only the sa and na items count");
    }

    #[test]
    fn b2_style_ancestor_query() {
        // //k/ancestor::li/t/k — li elements that contain a k anywhere report
        // their /t/k children.
        let xml = b"<root>\
            <li><p><k/></p><t><k/></t></li>\
            <li><t><k/></t></li>\
            <li><p><k/></p><t><x/></t></li>\
            </root>";
        let (out, _) = run(&["//k/ancestor::li/t/k"], xml);
        // First li: has k descendants -> its t/k counts.
        // Second li: its only k is under t, which is still a descendant -> counts.
        // Third li: has a k descendant but no t/k child -> nothing to report.
        assert_eq!(out.matches[0].len(), 2);
    }

    #[test]
    fn multiple_queries_are_filtered_independently() {
        let xml = b"<a><p><x/><n/></p><p><n/></p></a>";
        let (out, plan) = run(&["/a/p[x]/n", "/a/p/n", "//n"], xml);
        assert_eq!(plan.queries.len(), 3);
        assert_eq!(out.matches[0].len(), 1);
        assert_eq!(out.matches[1].len(), 2);
        assert_eq!(out.matches[2].len(), 2);
    }

    #[test]
    fn predicate_on_last_step() {
        // /a/b[c]: report the b elements themselves when they have a c child.
        let xml = b"<a><b><c/></b><b><d/></b></a>";
        let (out, _) = run(&["/a/b[c]"], xml);
        assert_eq!(out.matches[0].len(), 1);
        assert_eq!(out.matches[0][0].depth, 2);
    }

    #[test]
    fn empty_input_produces_empty_outcome() {
        let (out, _) = run(&["/a/b[c]/d", "/x"], b"");
        assert_eq!(out.matches.len(), 2);
        assert!(out.matches.iter().all(|m| m.is_empty()));
        assert!(out.submatch_counts.iter().all(|&c| c == 0));
    }
}
