//! The public façade: compile a query set once, run it over XML bytes or
//! readers.
//!
//! ```
//! use ppt_core::engine::Engine;
//!
//! let engine = Engine::builder()
//!     .add_query("/a/b/c")
//!     .unwrap()
//!     .add_query("//d")
//!     .unwrap()
//!     .build()
//!     .unwrap();
//! let result = engine.run(b"<a><b><d></d></b><b><c></c></b></a>");
//! assert_eq!(result.match_count(0), 1);
//! assert_eq!(result.match_count(1), 1);
//! ```

use crate::chunk::EngineKind;
use crate::filter::apply_filters;
pub use crate::filter::QueryMatch;
use crate::parallel::{run_parallel, ParallelConfig, StreamProcessor};
use crate::stats::RunStats;
use ppt_automaton::Transducer;
use ppt_xpath::{compile_queries, QueryPlan, XPathError};
use std::io::Read;
use std::time::Instant;

/// Runtime configuration of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target chunk size in bytes for the split phase (default 1 MiB; the
    /// paper's prototype defaults to 10 MB, Fig 16 shows anything ≥ 1 MB
    /// behaves the same).
    pub chunk_size: usize,
    /// Number of worker threads (`None` = rayon's default, usually the number
    /// of logical cores).
    pub threads: Option<usize>,
    /// Per-chunk engine: the double tree (default) or the naive mapping.
    pub engine: EngineKind,
    /// Resolve element end offsets. Forced on when any query carries a
    /// predicate filter.
    pub resolve_spans: bool,
    /// Window size used by [`Engine::run_reader`] (default 16 MiB).
    pub window_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            chunk_size: 1 << 20,
            threads: None,
            engine: EngineKind::Tree,
            resolve_spans: true,
            window_size: 16 << 20,
        }
    }
}

/// Builder for [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    queries: Vec<String>,
    config: EngineConfig,
}

impl EngineBuilder {
    /// Creates an empty builder.
    pub fn new() -> EngineBuilder {
        EngineBuilder { queries: Vec::new(), config: EngineConfig::default() }
    }

    /// Adds one XPath query; the query is parsed eagerly so errors surface
    /// immediately.
    pub fn add_query(mut self, query: &str) -> Result<EngineBuilder, XPathError> {
        ppt_xpath::parse_query(query)?;
        self.queries.push(query.to_string());
        Ok(self)
    }

    /// Adds several queries at once.
    pub fn add_queries<S: AsRef<str>>(
        mut self,
        queries: &[S],
    ) -> Result<EngineBuilder, XPathError> {
        for q in queries {
            ppt_xpath::parse_query(q.as_ref())?;
            self.queries.push(q.as_ref().to_string());
        }
        Ok(self)
    }

    /// Sets the target chunk size in bytes.
    pub fn chunk_size(mut self, bytes: usize) -> EngineBuilder {
        self.config.chunk_size = bytes.max(1);
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.config.threads = Some(threads.max(1));
        self
    }

    /// Selects the per-chunk engine.
    pub fn engine_kind(mut self, kind: EngineKind) -> EngineBuilder {
        self.config.engine = kind;
        self
    }

    /// Enables or disables element-span resolution (forced on for predicated
    /// queries).
    pub fn resolve_spans(mut self, enable: bool) -> EngineBuilder {
        self.config.resolve_spans = enable;
        self
    }

    /// Sets the window size used for streaming readers.
    pub fn window_size(mut self, bytes: usize) -> EngineBuilder {
        self.config.window_size = bytes.max(4096);
        self
    }

    /// Compiles the query set into an [`Engine`].
    pub fn build(self) -> Result<Engine, XPathError> {
        Engine::with_config(&self.queries, self.config)
    }
}

/// A compiled PP-Transducer engine, cheap to share across runs.
#[derive(Debug, Clone)]
pub struct Engine {
    plan: QueryPlan,
    transducer: Transducer,
    config: EngineConfig,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Compiles an engine from query strings with the default configuration.
    pub fn from_queries<S: AsRef<str>>(queries: &[S]) -> Result<Engine, XPathError> {
        Engine::with_config(queries, EngineConfig::default())
    }

    /// Compiles an engine from query strings with an explicit configuration.
    pub fn with_config<S: AsRef<str>>(
        queries: &[S],
        mut config: EngineConfig,
    ) -> Result<Engine, XPathError> {
        let plan = compile_queries(queries)?;
        // Predicate filtering needs element spans.
        if plan.queries.iter().any(|q| q.filter.is_some()) {
            config.resolve_spans = true;
        }
        let transducer = Transducer::from_plan(&plan);
        Ok(Engine { plan, transducer, config })
    }

    /// Wraps an already-compiled plan + transducer pair into an engine.
    ///
    /// This is the assembly point for *incrementally merged* automata (the
    /// subscription layer unions NFAs across attach events and re-determinises
    /// under a state budget, rather than recompiling from query strings). The
    /// caller is responsible for `transducer` actually being the compilation
    /// of `plan`; the usual invariant — predicated queries force span
    /// resolution — is applied here exactly as in [`Engine::with_config`].
    pub fn from_compiled(
        plan: QueryPlan,
        transducer: Transducer,
        mut config: EngineConfig,
    ) -> Engine {
        if plan.queries.iter().any(|q| q.filter.is_some()) {
            config.resolve_spans = true;
        }
        Engine { plan, transducer, config }
    }

    /// The compiled query plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The compiled pushdown transducer.
    pub fn transducer(&self) -> &Transducer {
        &self.transducer
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn parallel_config(&self) -> ParallelConfig {
        ParallelConfig {
            chunk_size: self.config.chunk_size,
            threads: self.config.threads,
            engine: self.config.engine,
            resolve_spans: self.config.resolve_spans,
        }
    }

    /// Runs the engine over an in-memory byte slice using the parallel
    /// pipeline (split → parallel → join → filter).
    pub fn run(&self, data: &[u8]) -> QueryResult {
        let (matches, stats) = run_parallel(&self.transducer, data, self.parallel_config());
        self.finish(matches, stats)
    }

    /// Runs the engine strictly in order on a single thread (one chunk, one
    /// execution path). This is the "PPT (1 thread)" configuration of Fig 11
    /// and the semantic reference for differential tests.
    pub fn run_sequential(&self, data: &[u8]) -> QueryResult {
        let config = ParallelConfig {
            chunk_size: data.len().max(1),
            threads: Some(1),
            engine: self.config.engine,
            resolve_spans: self.config.resolve_spans,
        };
        let (matches, stats) = run_parallel(&self.transducer, data, config);
        self.finish(matches, stats)
    }

    /// Runs the engine over a reader, processing the stream window-by-window
    /// with bounded memory. The [`ppt_xmlstream::WindowSplitter`] cuts windows
    /// at tag boundaries and carries partial tags across windows, so chunks
    /// never straddle a window and no tag is ever lexed in two halves.
    ///
    /// This call blocks until the reader is exhausted and returns every match
    /// at once. For *online* results — matches emitted while the stream is
    /// still flowing, many sessions multiplexed over one worker pool — use
    /// the `ppt-runtime` crate, which drives the same split → transduce →
    /// fold pipeline through dedicated pipelined stages.
    pub fn run_reader<R: Read>(&self, mut reader: R) -> std::io::Result<QueryResult> {
        let mut proc = StreamProcessor::new(&self.transducer, self.parallel_config());
        let mut splitter = ppt_xmlstream::WindowSplitter::new(self.config.window_size);
        ppt_xmlstream::pump_reader(&mut reader, |bytes| {
            splitter.push(bytes);
            while let Some(window) = splitter.pop_window() {
                proc.feed(&window);
            }
            true
        })?;
        if let Some(window) = splitter.finish() {
            proc.feed(&window);
        }
        let (matches, stats) = proc.finish();
        Ok(self.finish(matches, stats))
    }

    fn finish(
        &self,
        matches: Vec<crate::parallel::ResolvedMatch>,
        mut stats: RunStats,
    ) -> QueryResult {
        let filter_start = Instant::now();
        let outcome = apply_filters(&self.plan, &matches);
        stats.timings.filter = filter_start.elapsed();
        stats.timings.total += stats.timings.filter;
        QueryResult {
            query_matches: outcome.matches,
            submatch_counts: outcome.submatch_counts,
            subquery_match_total: matches.len(),
            stats,
        }
    }
}

/// The result of one engine run.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Matches per user query, in the order queries were added.
    pub query_matches: Vec<Vec<QueryMatch>>,
    /// Total basic sub-query matches attributed to each query before
    /// filtering (Table 2's "# sub-matches").
    pub submatch_counts: Vec<usize>,
    /// Total basic sub-query matches across the whole run.
    pub subquery_match_total: usize,
    /// Execution statistics.
    pub stats: RunStats,
}

impl QueryResult {
    /// Number of result matches for query `q`.
    pub fn match_count(&self, q: usize) -> usize {
        self.query_matches.get(q).map(|m| m.len()).unwrap_or(0)
    }

    /// The matches of query `q`.
    pub fn matches(&self, q: usize) -> &[QueryMatch] {
        self.query_matches.get(q).map(|m| m.as_slice()).unwrap_or(&[])
    }

    /// Total number of result matches across all queries.
    pub fn total_matches(&self) -> usize {
        self.query_matches.iter().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";

    #[test]
    fn builder_and_run() {
        let engine = Engine::builder()
            .add_query("/a/b/c")
            .unwrap()
            .add_query("//d")
            .unwrap()
            .chunk_size(8)
            .threads(2)
            .build()
            .unwrap();
        let result = engine.run(DOC);
        assert_eq!(result.match_count(0), 1);
        assert_eq!(result.match_count(1), 1);
        assert_eq!(result.total_matches(), 2);
        // The /a/b/c match's span covers exactly "<c></c>".
        let m = result.matches(0)[0];
        assert_eq!(&DOC[m.start..m.end], b"<c></c>");
    }

    #[test]
    fn invalid_queries_fail_at_build_time() {
        assert!(Engine::builder().add_query("a/b").is_err());
        assert!(Engine::from_queries(&["/a[b"]).is_err());
        assert!(Engine::from_queries(&["/a/parent::b"]).is_err());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let engine = Engine::builder()
            .add_queries(&["/a/b/c", "//b", "/a/b[d]"])
            .unwrap()
            .chunk_size(4)
            .threads(3)
            .build()
            .unwrap();
        let par = engine.run(DOC);
        let seq = engine.run_sequential(DOC);
        assert_eq!(par.query_matches, seq.query_matches);
        assert_eq!(par.submatch_counts, seq.submatch_counts);
    }

    #[test]
    fn reader_api_matches_in_memory_run() {
        let engine = Engine::builder()
            .add_queries(&["/a/b/c", "//d"])
            .unwrap()
            .chunk_size(4)
            .window_size(4096)
            .build()
            .unwrap();
        let from_slice = engine.run(DOC);
        let from_reader = engine.run_reader(std::io::Cursor::new(DOC.to_vec())).unwrap();
        assert_eq!(from_slice.query_matches, from_reader.query_matches);
    }

    #[test]
    fn predicated_queries_force_span_resolution() {
        let engine =
            Engine::builder().add_query("/a/b[d]").unwrap().resolve_spans(false).build().unwrap();
        assert!(engine.config().resolve_spans);
        let result = engine.run(DOC);
        assert_eq!(result.match_count(0), 1);
    }

    #[test]
    fn stats_are_populated() {
        let engine =
            Engine::builder().add_query("//b").unwrap().chunk_size(6).threads(2).build().unwrap();
        let result = engine.run(DOC);
        let s = &result.stats;
        assert_eq!(s.bytes, DOC.len());
        assert!(s.chunks >= 2);
        assert_eq!(s.threads, 2);
        assert!(s.tag_events > 0);
        assert!(s.overhead_factor() >= 1.0);
        assert_eq!(result.subquery_match_total, 2);
    }

    #[test]
    fn empty_document() {
        let engine = Engine::from_queries(&["/a"]).unwrap();
        let result = engine.run(b"");
        assert_eq!(result.total_matches(), 0);
        let result = engine.run_reader(std::io::empty()).unwrap();
        assert_eq!(result.total_matches(), 0);
    }
}
