//! Unification of mappings (§4.1, Alg 2).
//!
//! Two map entries unify when (i) the finishing state of the first equals the
//! starting state of the second and (ii) the stacks are consistent: the
//! symbols the second chunk popped from its pre-existing stack must be exactly
//! the symbols the first chunk left on top of its finishing stack (rule 4,
//! applied recursively). When one side runs out first, the leftover carries
//! through to the unified entry (rules 1–3). Outputs concatenate in document
//! order. Pairs that cannot be unified are discarded (rule 5).

use crate::mapping::{ChunkMatch, MapEntry, Mapping};
use ppt_automaton::{StateId, Transducer};

/// Attempts to unify two entries, `first` describing the earlier part of the
/// stream and `second` the later part. Returns `None` when the pair cannot be
/// unified (rule 5).
pub fn unify_entries(first: &MapEntry, second: &MapEntry) -> Option<MapEntry> {
    // Condition (i): the first entry must finish in the state the second
    // started from.
    if first.finish_state != second.start_state {
        return None;
    }
    // Condition (ii) / rule 4: the second chunk pops symbols from the top of
    // the first chunk's leftover stack. `second.start_stack[0]` is the first
    // symbol it popped, which must be the top (= last element) of
    // `first.finish_stack`, and so on.
    let mut remaining_finish = first.finish_stack.clone();
    let mut consumed = 0usize;
    while consumed < second.start_stack.len() {
        match remaining_finish.pop() {
            Some(top) => {
                if top != second.start_stack[consumed] {
                    return None; // mismatching stack symbol
                }
                consumed += 1;
            }
            None => break, // the first chunk's stack is exhausted (rule 3)
        }
    }

    // Whatever the second chunk popped beyond the first chunk's pushes came
    // from before the first chunk: it extends the unified starting stack.
    let mut start_stack = first.start_stack.clone();
    start_stack.extend_from_slice(&second.start_stack[consumed..]);

    // The unified finishing stack: the second chunk's pushes on top of the
    // first chunk's surviving pushes.
    let mut finish_stack = remaining_finish;
    finish_stack.extend_from_slice(&second.finish_stack);

    let mut outputs = first.outputs.clone();
    outputs.extend_from_slice(&second.outputs);

    Some(MapEntry {
        start_state: first.start_state,
        start_stack,
        finish_state: second.finish_state,
        finish_stack,
        outputs,
    })
}

/// Unifies two mappings: the cross product of entries, keeping successful
/// unifications (`J` of §4.1).
pub fn unify_mappings(first: &Mapping, second: &Mapping) -> Mapping {
    let mut entries = Vec::new();
    for a in &first.entries {
        for b in &second.entries {
            if let Some(e) = unify_entries(a, b) {
                entries.push(e);
            }
        }
    }
    Mapping { entries }
}

/// What one [`PrefixFolder::fold`] step made final: the sub-query matches and
/// close-ladder events of the folded chunk, rebased to absolute depths.
#[derive(Debug, Clone, Default)]
pub struct FoldDelta {
    /// Newly-final matches of the real (initial-state) execution path, in
    /// document order, with `rel_depth` rebased to the absolute depth.
    pub matches: Vec<ChunkMatch>,
    /// The chunk's cross-chunk close events `(position after the closing tag,
    /// absolute depth after the close)`.
    pub ladder: Vec<(usize, i64)>,
}

impl FoldDelta {
    /// Drains the matches as [`crate::parallel::ResolvedMatch`]es (the
    /// canonical absolute-position form every consumer wants), clamping the
    /// rebased depth at zero exactly as the batch pipeline does.
    pub fn take_resolved_matches(&mut self) -> Vec<crate::parallel::ResolvedMatch> {
        std::mem::take(&mut self.matches)
            .into_iter()
            .map(|m| crate::parallel::ResolvedMatch {
                pos: m.pos,
                end: m.end,
                depth: m.rel_depth.max(0) as u32,
                subquery: m.subquery,
            })
            .collect()
    }
}

/// Eager left-fold of per-chunk mappings (§4.1's `J`, applied incrementally).
///
/// The batch pipeline accumulates every chunk's outputs and selects the
/// execution path that started in the initial state only at the very end. For
/// an *unbounded* stream that is not an option: the accumulated output tape
/// would grow with the stream. `PrefixFolder` exploits that the entry keyed
/// `(initial state, empty stack)` is unique in the accumulated mapping (the
/// transducer is deterministic, and which stack depth a chunk pops below is a
/// function of the tag structure alone) and that unification only ever
/// *appends* to its output tape — so after every fold the outputs accumulated
/// so far are final. [`PrefixFolder::fold`] therefore drains them out of the
/// mapping and hands them to the caller, keeping the accumulated state `O(1)`
/// in the stream length. This is what lets the online runtime emit matches
/// while the stream is still flowing.
#[derive(Debug)]
pub struct PrefixFolder {
    initial: StateId,
    accumulated: Option<Mapping>,
    /// Absolute element depth at the end of the folded prefix.
    depth: i64,
    chunks: usize,
}

impl PrefixFolder {
    /// Creates a folder for streams processed by `transducer`.
    pub fn new(transducer: &Transducer) -> PrefixFolder {
        PrefixFolder { initial: transducer.initial(), accumulated: None, depth: 0, chunks: 0 }
    }

    /// Creates a folder whose state is what [`PrefixFolder::new`] +folding the
    /// already-consumed prefix *would* have produced under `transducer`, given
    /// only the prefix's open-tag path (outermost first).
    ///
    /// This is the mid-stream engine-swap primitive of the subscription layer:
    /// because the transducer is deterministic and pops always restore the
    /// pushed state, the `(initial, ε)` entry after any prefix is a pure
    /// function of the still-open tag path — so a *new* (merged) transducer
    /// can take over an in-flight stream by replaying that path alone. Matches
    /// completed by the prefix are deliberately not reconstructed: outputs
    /// start empty, which gives attach-time semantics (a subscriber sees
    /// matches whose element opens at or after the swap point).
    ///
    /// `chunks` seeds the folded-chunk counter (purely informational).
    pub fn resume<'a, I>(transducer: &Transducer, open_path: I, chunks: usize) -> PrefixFolder
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let initial = transducer.initial();
        let mut state = initial;
        let mut stack: Vec<StateId> = Vec::new();
        for name in open_path {
            stack.push(state);
            state = transducer.step(state, transducer.classify_name(name));
        }
        let depth = stack.len() as i64;
        let accumulated = Mapping {
            entries: vec![MapEntry {
                start_state: initial,
                start_stack: Vec::new(),
                finish_state: state,
                finish_stack: stack,
                outputs: Vec::new(),
            }],
        };
        PrefixFolder { initial, accumulated: Some(accumulated), depth, chunks }
    }

    /// Absolute element depth at the end of the folded prefix.
    pub fn depth(&self) -> i64 {
        self.depth
    }

    /// Number of chunks folded so far.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Number of live entries in the accumulated mapping.
    pub fn entry_count(&self) -> usize {
        self.accumulated.as_ref().map(|m| m.entries.len()).unwrap_or(0)
    }

    /// Folds the next **in-order** chunk's output into the accumulated
    /// mapping. `mapping`, `depth_delta` and `ladder` are the fields of a
    /// [`crate::chunk::ChunkOutput`] (matches carry chunk-relative depths; the
    /// very first chunk must have been processed with `is_first = true`).
    ///
    /// Returns the matches this fold made final, already rebased to absolute
    /// depths, and the rebased ladder events.
    pub fn fold(
        &mut self,
        mut mapping: Mapping,
        depth_delta: i64,
        ladder: Vec<(usize, i64)>,
    ) -> FoldDelta {
        // Rebase chunk-relative depths to absolute stream depths.
        for entry in &mut mapping.entries {
            for m in &mut entry.outputs {
                m.rel_depth += self.depth;
            }
        }
        let ladder: Vec<(usize, i64)> =
            ladder.into_iter().map(|(pos, rel_after)| (pos, rel_after + self.depth)).collect();
        self.depth += depth_delta;
        self.chunks += 1;

        self.accumulated = Some(match self.accumulated.take() {
            None => mapping,
            Some(acc) => unify_mappings(&acc, &mapping),
        });

        FoldDelta { matches: self.drain_prefix_outputs(), ladder }
    }

    /// Drains the output tape of the `(initial, ε)` entry — the matches of the
    /// real execution path, final as of the folded prefix.
    fn drain_prefix_outputs(&mut self) -> Vec<ChunkMatch> {
        let Some(acc) = self.accumulated.as_mut() else {
            return Vec::new();
        };
        for entry in &mut acc.entries {
            if entry.start_state == self.initial && entry.start_stack.is_empty() {
                return std::mem::take(&mut entry.outputs);
            }
        }
        Vec::new()
    }

    /// Consumes the folder, returning the accumulated mapping (with the
    /// already-drained outputs removed). `None` when nothing was folded.
    pub fn into_mapping(self) -> Option<Mapping> {
        self.accumulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ChunkMatch, Mapping};
    use ppt_automaton::Transducer;
    use ppt_xmlstream::Symbol;

    fn entry(qs: u32, zs: &[u32], qf: u32, zf: &[u32], outs: usize) -> MapEntry {
        MapEntry {
            start_state: qs,
            start_stack: zs.to_vec(),
            finish_state: qf,
            finish_stack: zf.to_vec(),
            outputs: (0..outs)
                .map(|i| ChunkMatch { pos: i, end: usize::MAX, rel_depth: 1, subquery: 0 })
                .collect(),
        }
    }

    #[test]
    fn rule1_no_stacks() {
        // j((qs, zs, q, ε, o1), (q, ε, qf, zf, o2)) with empty stacks.
        let a = entry(1, &[], 2, &[], 1);
        let b = entry(2, &[], 3, &[], 2);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_state, 1);
        assert_eq!(u.finish_state, 3);
        assert!(u.start_stack.is_empty() && u.finish_stack.is_empty());
        assert_eq!(u.outputs.len(), 3);
    }

    #[test]
    fn rule2_first_entry_keeps_its_finish_stack() {
        // First chunk left [7, 8] on the stack (8 on top); second chunk never
        // touched it.
        let a = entry(1, &[], 2, &[7, 8], 0);
        let b = entry(2, &[], 3, &[9], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.finish_stack, vec![7, 8, 9], "second chunk's pushes sit on top");
        assert!(u.start_stack.is_empty());
    }

    #[test]
    fn rule3_second_entry_extends_the_start_stack() {
        // The second chunk popped deeper than the first chunk pushed.
        let a = entry(1, &[5], 2, &[], 0);
        let b = entry(2, &[6, 7], 3, &[], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_stack, vec![5, 6, 7]);
        assert!(u.finish_stack.is_empty());
    }

    #[test]
    fn rule4_common_symbols_cancel() {
        // First chunk pushed [3, 4] (4 on top); second chunk popped 4 then 3
        // and then one more unknown symbol 9.
        let a = entry(1, &[], 2, &[3, 4], 0);
        let b = entry(2, &[4, 3, 9], 5, &[6], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_stack, vec![9]);
        assert_eq!(u.finish_stack, vec![6]);
        assert_eq!(u.finish_state, 5);
    }

    #[test]
    fn rule5_failures() {
        // Mismatching states.
        assert!(unify_entries(&entry(1, &[], 2, &[], 0), &entry(3, &[], 4, &[], 0)).is_none());
        // Mismatching stack symbols: first pushed 3 on top but second popped 4.
        assert!(unify_entries(&entry(1, &[], 2, &[3], 0), &entry(2, &[4], 5, &[], 0)).is_none());
    }

    #[test]
    fn outputs_concatenate_in_order() {
        let mut a = entry(1, &[], 2, &[], 0);
        a.outputs.push(ChunkMatch { pos: 10, end: usize::MAX, rel_depth: 1, subquery: 0 });
        let mut b = entry(2, &[], 3, &[], 0);
        b.outputs.push(ChunkMatch { pos: 20, end: usize::MAX, rel_depth: 1, subquery: 1 });
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.outputs.iter().map(|m| m.pos).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn paper_worked_example_m1_joined_with_m5() {
        // Reproduces the end of §4.1: joining M1 with M5 yields the single
        // entry {(1, ε) → (1, ε, 1)} — the document matches /a/b/c once.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let sym = |n: &str| -> Symbol { t.classify_name(n.as_bytes()) };
        let chunk1 = b"<a><b><d></d></b>";
        let chunk2 = b"<b><c></c></b></a>";

        let mut m1 = Mapping::initial(&t);
        let mut depth = 0i64;
        for ev in ppt_xmlstream::Lexer::tags_only(chunk1) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, pos } => {
                    depth += 1;
                    m1.step_open(&t, sym(std::str::from_utf8(name).unwrap()), pos, depth);
                }
                ppt_xmlstream::XmlEvent::Close { name, .. } => {
                    depth -= 1;
                    m1.step_close(&t, sym(std::str::from_utf8(name).unwrap()));
                }
                _ => {}
            }
        }
        let mut m5 = Mapping::identity(&t);
        for ev in ppt_xmlstream::Lexer::tags_only(chunk2) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, pos } => {
                    m5.step_open(&t, sym(std::str::from_utf8(name).unwrap()), pos, 0);
                }
                ppt_xmlstream::XmlEvent::Close { name, .. } => {
                    m5.step_close(&t, sym(std::str::from_utf8(name).unwrap()));
                }
                _ => {}
            }
        }

        let joined = unify_mappings(&m1, &m5);
        assert_eq!(joined.len(), 1, "exactly one execution path is consistent");
        let e = &joined.entries[0];
        assert_eq!(e.start_state, t.initial());
        assert_eq!(e.finish_state, t.initial());
        assert!(e.start_stack.is_empty() && e.finish_stack.is_empty());
        assert_eq!(e.outputs.len(), 1, "the single /a/b/c match survives the join");
    }

    #[test]
    fn prefix_folder_drains_matches_incrementally() {
        use crate::chunk::{process_chunk, EngineKind};
        let t = Transducer::from_queries(&["/a/b", "//d"]).unwrap();
        let doc: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";
        // Split at every '<' position: many tiny chunks.
        let cuts: Vec<usize> =
            doc.iter().enumerate().filter(|(_, &b)| b == b'<').map(|(i, _)| i).collect();
        let mut folder = PrefixFolder::new(&t);
        let mut drained: Vec<(usize, u32, i64)> = Vec::new();
        let mut bounds = cuts.clone();
        bounds.push(doc.len());
        for (index, w) in bounds.windows(2).enumerate() {
            let out = process_chunk(
                &t,
                &doc[w[0]..w[1]],
                w[0],
                index,
                index == 0,
                EngineKind::Tree,
                false,
            );
            let delta = folder.fold(out.mapping, out.depth_delta, out.ladder);
            drained.extend(delta.matches.iter().map(|m| (m.pos, m.subquery, m.rel_depth)));
        }
        let expected: Vec<(usize, u32, i64)> = ppt_automaton::run_sequential(&t, doc)
            .iter()
            .map(|m| (m.pos, m.subquery, m.depth as i64))
            .collect();
        assert_eq!(drained, expected, "incremental drains equal the in-order run");
        assert_eq!(folder.depth(), 0, "well-formed document returns to depth 0");
        // The accumulated entry's tape was drained at every step.
        let acc = folder.into_mapping().unwrap();
        let initial_entry = acc
            .entries
            .iter()
            .find(|e| e.start_state == t.initial() && e.start_stack.is_empty())
            .unwrap();
        assert!(initial_entry.outputs.is_empty());
    }

    #[test]
    fn prefix_folder_rebases_ladder_events() {
        use crate::chunk::{process_chunk, EngineKind};
        let t = Transducer::from_queries(&["/a"]).unwrap();
        let doc: &[u8] = b"<a><b><d></d></b><b><c></c></b></a>";
        let split = 17; // the '<' of the second <b>
        let mut folder = PrefixFolder::new(&t);
        let first = process_chunk(&t, &doc[..split], 0, 0, true, EngineKind::Tree, true);
        let d1 = folder.fold(first.mapping, first.depth_delta, first.ladder);
        assert!(d1.ladder.is_empty());
        assert_eq!(folder.depth(), 1, "<a> is still open");
        let second = process_chunk(&t, &doc[split..], split, 1, false, EngineKind::Tree, true);
        let d2 = folder.fold(second.mapping, second.depth_delta, second.ladder);
        // </a> closes an element opened in the first chunk: one ladder event at
        // the end of the document, returning to absolute depth 0.
        assert_eq!(d2.ladder, vec![(doc.len(), 0)]);
    }

    #[test]
    fn resumed_folder_equals_a_folder_that_saw_the_prefix() {
        use crate::chunk::{process_chunk, EngineKind};
        let t = Transducer::from_queries(&["/a/b", "//d", "//b/c"]).unwrap();
        let doc: &[u8] = b"<a><b><d></d></b><b><c></c></b><d></d></a>";
        let split = 17; // the '<' of the second <b>; open path is [a]
        let resume_path: Vec<&[u8]> = vec![b"a"];

        let mut resumed = PrefixFolder::resume(&t, resume_path.iter().copied(), 1);
        assert_eq!(resumed.depth(), 1);
        assert_eq!(resumed.chunks(), 1);

        // Fold the suffix into the resumed folder; it must drain exactly the
        // sequential matches whose opening tag sits at/after the split.
        let out = process_chunk(&t, &doc[split..], split, 1, false, EngineKind::Tree, false);
        let delta = resumed.fold(out.mapping, out.depth_delta, out.ladder);
        let drained: Vec<(usize, u32, i64)> =
            delta.matches.iter().map(|m| (m.pos, m.subquery, m.rel_depth)).collect();
        let expected: Vec<(usize, u32, i64)> = ppt_automaton::run_sequential(&t, doc)
            .iter()
            .filter(|m| m.pos >= split)
            .map(|m| (m.pos, m.subquery, m.depth as i64))
            .collect();
        assert!(!expected.is_empty());
        assert_eq!(drained, expected);
        assert_eq!(resumed.depth(), 0, "suffix closes the document");
    }

    #[test]
    fn resume_with_empty_path_matches_a_fresh_folder_semantics() {
        use crate::chunk::{process_chunk, EngineKind};
        let t = Transducer::from_queries(&["/a/b"]).unwrap();
        let doc: &[u8] = b"<a><b></b></a>";
        let out = process_chunk(&t, doc, 0, 0, true, EngineKind::Tree, false);
        let mut fresh = PrefixFolder::new(&t);
        let from_fresh = fresh.fold(out.mapping.clone(), out.depth_delta, out.ladder.clone());
        let mut resumed = PrefixFolder::resume(&t, std::iter::empty(), 0);
        let from_resumed = resumed.fold(out.mapping, out.depth_delta, out.ladder);
        let key = |d: &FoldDelta| {
            d.matches.iter().map(|m| (m.pos, m.subquery, m.rel_depth)).collect::<Vec<_>>()
        };
        assert_eq!(key(&from_fresh), key(&from_resumed));
        assert_eq!(from_fresh.ladder, from_resumed.ladder);
    }

    #[test]
    fn unify_mappings_is_associative_on_the_example() {
        // Splitting <a><b/><b><c/></b></a> at two different points and joining
        // in either association order yields the same final mapping.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let doc = b"<a><b></b><b><c></c></b></a>";
        let run = |bytes: &[u8], first: bool| -> Mapping {
            let mut m = if first { Mapping::initial(&t) } else { Mapping::identity(&t) };
            for ev in ppt_xmlstream::Lexer::tags_only(bytes) {
                match ev {
                    ppt_xmlstream::XmlEvent::Open { name, pos } => {
                        m.step_open(&t, t.classify_name(name), pos, 0);
                    }
                    ppt_xmlstream::XmlEvent::Close { name, .. } => {
                        m.step_close(&t, t.classify_name(name));
                    }
                    _ => {}
                }
            }
            m
        };
        // Chunk boundaries fall on '<' positions, as the split phase
        // guarantees.
        let a = run(&doc[..6], true);
        let b = run(&doc[6..13], false);
        let c = run(&doc[13..], false);
        let mut left = unify_mappings(&unify_mappings(&a, &b), &c);
        let mut right = unify_mappings(&a, &unify_mappings(&b, &c));
        left.normalise();
        right.normalise();
        assert_eq!(left, right);
        assert_eq!(left.len(), 1);
        assert_eq!(left.entries[0].outputs.len(), 1);
    }
}
