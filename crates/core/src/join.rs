//! Unification of mappings (§4.1, Alg 2).
//!
//! Two map entries unify when (i) the finishing state of the first equals the
//! starting state of the second and (ii) the stacks are consistent: the
//! symbols the second chunk popped from its pre-existing stack must be exactly
//! the symbols the first chunk left on top of its finishing stack (rule 4,
//! applied recursively). When one side runs out first, the leftover carries
//! through to the unified entry (rules 1–3). Outputs concatenate in document
//! order. Pairs that cannot be unified are discarded (rule 5).

use crate::mapping::{MapEntry, Mapping};

/// Attempts to unify two entries, `first` describing the earlier part of the
/// stream and `second` the later part. Returns `None` when the pair cannot be
/// unified (rule 5).
pub fn unify_entries(first: &MapEntry, second: &MapEntry) -> Option<MapEntry> {
    // Condition (i): the first entry must finish in the state the second
    // started from.
    if first.finish_state != second.start_state {
        return None;
    }
    // Condition (ii) / rule 4: the second chunk pops symbols from the top of
    // the first chunk's leftover stack. `second.start_stack[0]` is the first
    // symbol it popped, which must be the top (= last element) of
    // `first.finish_stack`, and so on.
    let mut remaining_finish = first.finish_stack.clone();
    let mut consumed = 0usize;
    while consumed < second.start_stack.len() {
        match remaining_finish.pop() {
            Some(top) => {
                if top != second.start_stack[consumed] {
                    return None; // mismatching stack symbol
                }
                consumed += 1;
            }
            None => break, // the first chunk's stack is exhausted (rule 3)
        }
    }

    // Whatever the second chunk popped beyond the first chunk's pushes came
    // from before the first chunk: it extends the unified starting stack.
    let mut start_stack = first.start_stack.clone();
    start_stack.extend_from_slice(&second.start_stack[consumed..]);

    // The unified finishing stack: the second chunk's pushes on top of the
    // first chunk's surviving pushes.
    let mut finish_stack = remaining_finish;
    finish_stack.extend_from_slice(&second.finish_stack);

    let mut outputs = first.outputs.clone();
    outputs.extend_from_slice(&second.outputs);

    Some(MapEntry {
        start_state: first.start_state,
        start_stack,
        finish_state: second.finish_state,
        finish_stack,
        outputs,
    })
}

/// Unifies two mappings: the cross product of entries, keeping successful
/// unifications (`J` of §4.1).
pub fn unify_mappings(first: &Mapping, second: &Mapping) -> Mapping {
    let mut entries = Vec::new();
    for a in &first.entries {
        for b in &second.entries {
            if let Some(e) = unify_entries(a, b) {
                entries.push(e);
            }
        }
    }
    Mapping { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{ChunkMatch, Mapping};
    use ppt_automaton::Transducer;
    use ppt_xmlstream::Symbol;

    fn entry(
        qs: u32,
        zs: &[u32],
        qf: u32,
        zf: &[u32],
        outs: usize,
    ) -> MapEntry {
        MapEntry {
            start_state: qs,
            start_stack: zs.to_vec(),
            finish_state: qf,
            finish_stack: zf.to_vec(),
            outputs: (0..outs)
                .map(|i| ChunkMatch { pos: i, end: usize::MAX, rel_depth: 1, subquery: 0 })
                .collect(),
        }
    }

    #[test]
    fn rule1_no_stacks() {
        // j((qs, zs, q, ε, o1), (q, ε, qf, zf, o2)) with empty stacks.
        let a = entry(1, &[], 2, &[], 1);
        let b = entry(2, &[], 3, &[], 2);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_state, 1);
        assert_eq!(u.finish_state, 3);
        assert!(u.start_stack.is_empty() && u.finish_stack.is_empty());
        assert_eq!(u.outputs.len(), 3);
    }

    #[test]
    fn rule2_first_entry_keeps_its_finish_stack() {
        // First chunk left [7, 8] on the stack (8 on top); second chunk never
        // touched it.
        let a = entry(1, &[], 2, &[7, 8], 0);
        let b = entry(2, &[], 3, &[9], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.finish_stack, vec![7, 8, 9], "second chunk's pushes sit on top");
        assert!(u.start_stack.is_empty());
    }

    #[test]
    fn rule3_second_entry_extends_the_start_stack() {
        // The second chunk popped deeper than the first chunk pushed.
        let a = entry(1, &[5], 2, &[], 0);
        let b = entry(2, &[6, 7], 3, &[], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_stack, vec![5, 6, 7]);
        assert!(u.finish_stack.is_empty());
    }

    #[test]
    fn rule4_common_symbols_cancel() {
        // First chunk pushed [3, 4] (4 on top); second chunk popped 4 then 3
        // and then one more unknown symbol 9.
        let a = entry(1, &[], 2, &[3, 4], 0);
        let b = entry(2, &[4, 3, 9], 5, &[6], 0);
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.start_stack, vec![9]);
        assert_eq!(u.finish_stack, vec![6]);
        assert_eq!(u.finish_state, 5);
    }

    #[test]
    fn rule5_failures() {
        // Mismatching states.
        assert!(unify_entries(&entry(1, &[], 2, &[], 0), &entry(3, &[], 4, &[], 0)).is_none());
        // Mismatching stack symbols: first pushed 3 on top but second popped 4.
        assert!(unify_entries(&entry(1, &[], 2, &[3], 0), &entry(2, &[4], 5, &[], 0)).is_none());
    }

    #[test]
    fn outputs_concatenate_in_order() {
        let mut a = entry(1, &[], 2, &[], 0);
        a.outputs.push(ChunkMatch { pos: 10, end: usize::MAX, rel_depth: 1, subquery: 0 });
        let mut b = entry(2, &[], 3, &[], 0);
        b.outputs.push(ChunkMatch { pos: 20, end: usize::MAX, rel_depth: 1, subquery: 1 });
        let u = unify_entries(&a, &b).unwrap();
        assert_eq!(u.outputs.iter().map(|m| m.pos).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn paper_worked_example_m1_joined_with_m5() {
        // Reproduces the end of §4.1: joining M1 with M5 yields the single
        // entry {(1, ε) → (1, ε, 1)} — the document matches /a/b/c once.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let sym = |n: &str| -> Symbol { t.classify_name(n.as_bytes()) };
        let chunk1 = b"<a><b><d></d></b>";
        let chunk2 = b"<b><c></c></b></a>";

        let mut m1 = Mapping::initial(&t);
        let mut depth = 0i64;
        for ev in ppt_xmlstream::Lexer::tags_only(chunk1) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, pos } => {
                    depth += 1;
                    m1.step_open(&t, sym(std::str::from_utf8(name).unwrap()), pos, depth);
                }
                ppt_xmlstream::XmlEvent::Close { name, .. } => {
                    depth -= 1;
                    m1.step_close(&t, sym(std::str::from_utf8(name).unwrap()));
                }
                _ => {}
            }
        }
        let mut m5 = Mapping::identity(&t);
        for ev in ppt_xmlstream::Lexer::tags_only(chunk2) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, pos } => {
                    m5.step_open(&t, sym(std::str::from_utf8(name).unwrap()), pos, 0);
                }
                ppt_xmlstream::XmlEvent::Close { name, .. } => {
                    m5.step_close(&t, sym(std::str::from_utf8(name).unwrap()));
                }
                _ => {}
            }
        }

        let joined = unify_mappings(&m1, &m5);
        assert_eq!(joined.len(), 1, "exactly one execution path is consistent");
        let e = &joined.entries[0];
        assert_eq!(e.start_state, t.initial());
        assert_eq!(e.finish_state, t.initial());
        assert!(e.start_stack.is_empty() && e.finish_stack.is_empty());
        assert_eq!(e.outputs.len(), 1, "the single /a/b/c match survives the join");
    }

    #[test]
    fn unify_mappings_is_associative_on_the_example() {
        // Splitting <a><b/><b><c/></b></a> at two different points and joining
        // in either association order yields the same final mapping.
        let t = Transducer::from_queries(&["/a/b/c"]).unwrap();
        let doc = b"<a><b></b><b><c></c></b></a>";
        let run = |bytes: &[u8], first: bool| -> Mapping {
            let mut m = if first { Mapping::initial(&t) } else { Mapping::identity(&t) };
            for ev in ppt_xmlstream::Lexer::tags_only(bytes) {
                match ev {
                    ppt_xmlstream::XmlEvent::Open { name, pos } => {
                        m.step_open(&t, t.classify_name(name), pos, 0);
                    }
                    ppt_xmlstream::XmlEvent::Close { name, .. } => {
                        m.step_close(&t, t.classify_name(name));
                    }
                    _ => {}
                }
            }
            m
        };
        // Chunk boundaries fall on '<' positions, as the split phase
        // guarantees.
        let a = run(&doc[..6], true);
        let b = run(&doc[6..13], false);
        let c = run(&doc[13..], false);
        let mut left = unify_mappings(&unify_mappings(&a, &b), &c);
        let mut right = unify_mappings(&a, &unify_mappings(&b, &c));
        left.normalise();
        right.normalise();
        assert_eq!(left, right);
        assert_eq!(left.len(), 1);
        assert_eq!(left.entries[0].outputs.len(), 1);
    }
}
