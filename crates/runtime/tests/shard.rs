//! Sharded serving: ring-placement properties (determinism, virtual-node
//! balance, ~1/N movement on membership change), end-to-end equivalence of
//! a 4-shard server against the single-runtime reactor in both wire
//! formats, per-shard stats, and the cross-process `shard::forward`
//! building block.

use ppt_core::Engine;
use ppt_runtime::serve::{register, TcpServer};
use ppt_runtime::shard::{forward, HashRing};
use ppt_runtime::{Frame, FrameDecoder, HandshakeRequest, Runtime, ServerMode, WireFormat};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

/// A document with `items` matching `//item/k` elements.
fn make_doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>payload for element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// The batch reference: multiset of (query, start, end) from `Engine::run`.
fn batch_reference(queries: &[&str], doc: &[u8]) -> HashMap<(u32, u64, u64), usize> {
    let engine = Engine::builder().add_queries(queries).unwrap().build().unwrap();
    let result = engine.run(doc);
    let mut expected = HashMap::new();
    for (qi, ms) in result.query_matches.iter().enumerate() {
        for m in ms {
            *expected.entry((qi as u32, m.start as u64, m.end as u64)).or_default() += 1;
        }
    }
    expected
}

// ---------------------------------------------------------------------------
// Ring placement
// ---------------------------------------------------------------------------

#[test]
fn ring_placement_is_deterministic() {
    let a = HashRing::new(8, 64);
    let b = HashRing::new(8, 64);
    for id in (0..20_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 40]) {
        assert_eq!(a.route(id), b.route(id), "stream {id} must place identically");
    }
}

#[test]
fn ring_balance_is_within_tolerance() {
    // 10k sequential stream ids (the worst realistic case: server-assigned
    // ids are consecutive) over 8 shards must spread within a modest factor
    // of the mean — that is what the virtual nodes buy.
    let shards = 8;
    let ring = HashRing::new(shards, 64);
    let mut counts = vec![0u64; shards];
    let ids = 10_000u64;
    for id in 0..ids {
        counts[ring.route(id)] += 1;
    }
    let mean = ids as f64 / shards as f64;
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(min > 0.0, "no shard may be empty: {counts:?}");
    assert!(max / mean < 1.8, "overloaded shard: {counts:?} (max/mean {:.2})", max / mean);
    assert!(min / mean > 0.3, "starved shard: {counts:?} (min/mean {:.2})", min / mean);
}

#[test]
fn adding_a_shard_moves_about_one_nth_and_only_onto_the_new_shard() {
    let ids = 10_000u64;
    let before = HashRing::new(4, 64);
    let after = HashRing::new(5, 64);
    let mut moved = 0u64;
    for id in 0..ids {
        let (a, b) = (before.route(id), after.route(id));
        if a != b {
            moved += 1;
            // The defining consistent-hashing property: growing the ring
            // only moves streams *onto* the new shard; nothing reshuffles
            // between the surviving shards.
            assert_eq!(b, 4, "stream {id} moved {a}→{b}, not onto the new shard");
        }
    }
    let fraction = moved as f64 / ids as f64;
    // Ideal is 1/5; allow generous slack for hash variance.
    assert!(
        (0.08..0.35).contains(&fraction),
        "expected ~1/5 of streams to move, got {fraction:.3}"
    );
}

#[test]
fn removing_a_shard_moves_only_its_own_streams() {
    let ids = 10_000u64;
    let before = HashRing::new(5, 64);
    let after = HashRing::new(4, 64);
    let mut moved = 0u64;
    for id in 0..ids {
        let (a, b) = (before.route(id), after.route(id));
        if a != b {
            moved += 1;
            assert_eq!(a, 4, "stream {id} moved {a}→{b} but its shard was not removed");
        }
    }
    let fraction = moved as f64 / ids as f64;
    assert!(
        (0.08..0.35).contains(&fraction),
        "expected ~1/5 of streams to move, got {fraction:.3}"
    );
}

// ---------------------------------------------------------------------------
// End-to-end: sharded output ≡ single-runtime output
// ---------------------------------------------------------------------------

/// Streams `doc` through one registered connection and returns the decoded
/// frames plus the stream id the server confirmed.
fn run_client(addr: SocketAddr, request: HandshakeRequest, doc: &[u8]) -> (u64, Vec<Frame>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let reg = register(&mut stream, &request).expect("handshake accepted");
    let writer_stream = stream.try_clone().expect("clone");
    let doc_owned = doc.to_vec();
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        for piece in doc_owned.chunks(4096) {
            if writer_stream.write_all(piece).is_err() {
                return;
            }
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read frames to EOF");
    writer.join().expect("writer thread");
    (reg.stream_id, decode_frames(request.format, &raw))
}

fn decode_frames(format: WireFormat, raw: &[u8]) -> Vec<Frame> {
    match format {
        WireFormat::JsonLines => {
            let text = std::str::from_utf8(raw).expect("wire JSON is ASCII");
            text.lines().map(|l| Frame::decode_json(l).expect("every line parses")).collect()
        }
        WireFormat::Binary => {
            let mut decoder = FrameDecoder::new();
            decoder.push(raw);
            let mut frames = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                frames.push(frame);
            }
            decoder.finish().expect("no truncated tail on a clean close");
            frames
        }
    }
}

/// The multiset of (query, start, end, payload) a frame list carries — the
/// byte-identity currency.
type FrameMultiset = HashMap<(u32, u64, u64, Option<Vec<u8>>), usize>;

fn frame_multiset(frames: &[Frame]) -> FrameMultiset {
    let mut set = HashMap::new();
    for f in frames {
        *set.entry((f.query, f.start, f.end, f.payload.clone())).or_insert(0usize) += 1;
    }
    set
}

#[test]
fn sharded_serving_is_byte_identical_to_single_runtime() {
    let queries = ["//item/k", "/stream/item/id"];
    let doc = make_doc(200);
    let expected = batch_reference(&queries, &doc);

    let bind = |shards: usize| {
        let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(4).build());
        let mut builder =
            TcpServer::builder().mode(ServerMode::Reactor).chunk_size(512).window_size(4096);
        if shards > 1 {
            builder = builder.shards(shards).shard_workers(1);
        }
        builder.bind("127.0.0.1:0", runtime).expect("bind")
    };
    let single = bind(1);
    let sharded = bind(4);

    // Several streams per format, ids spread over the ring.
    let stream_ids = [3u64, 11, 42, 1000, 65537];
    for format in [WireFormat::JsonLines, WireFormat::Binary] {
        for &id in &stream_ids {
            let request = HandshakeRequest::new(format)
                .query(queries[0])
                .query(queries[1])
                .retain_bytes(1 << 20)
                .stream_id(id);
            let (_, single_frames) = run_client(single.local_addr(), request.clone(), &doc);
            let (_, sharded_frames) = run_client(sharded.local_addr(), request, &doc);
            assert!(!single_frames.is_empty());
            assert!(sharded_frames.iter().all(|f| f.stream == id));
            assert_eq!(
                frame_multiset(&single_frames),
                frame_multiset(&sharded_frames),
                "stream {id} ({format:?}): sharded output must be byte-identical"
            );
            // And both agree with the batch engine.
            let mut remaining = expected.clone();
            for f in &sharded_frames {
                let key = (f.query, f.start, f.end);
                let n = remaining.get_mut(&key).expect("frame matches a batch result");
                *n -= 1;
                if *n == 0 {
                    remaining.remove(&key);
                }
                let payload = f.payload.as_ref().expect("retention on: payload present");
                assert_eq!(
                    payload.as_slice(),
                    &doc[f.start as usize..f.end as usize],
                    "payload byte-identical to the stream slice"
                );
            }
            assert!(remaining.is_empty(), "batch matches never served: {remaining:?}");
        }
    }

    let stats = sharded.shutdown();
    let placed = (stream_ids.len() * 2) as u64;
    assert_eq!(stats.shards.len(), 4, "one ShardStats entry per shard");
    assert_eq!(stats.router.placements, placed);
    assert!(stats.router.ring_lookups >= placed);
    assert!(stats.router.imbalance >= 1.0);
    assert_eq!(
        stats.shards.iter().map(|s| s.sessions).sum::<u64>(),
        placed,
        "per-shard sessions sum to the placements"
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.frames_out).sum::<u64>(),
        stats.frames_out,
        "per-shard frames sum to the server total"
    );
    assert!(
        stats.shards.iter().filter(|s| s.sessions > 0).all(|s| s.matches > 0),
        "shards that served sessions saw their matches: {:?}",
        stats.shards
    );
    assert!(
        stats.shards.iter().filter(|s| s.sessions > 0).all(|s| s.peak_retained_bytes > 0),
        "retention accounting is per shard: {:?}",
        stats.shards
    );
    assert!(stats.shards.iter().all(|s| s.active_sessions == 0));

    let single_stats = single.shutdown();
    assert_eq!(single_stats.shards.len(), 1, "an unsharded server reports one shard");
    assert_eq!(single_stats.router.placements, placed);
}

#[test]
fn sharded_thread_per_conn_routes_and_serves_identically() {
    let queries = ["//item/k"];
    let doc = make_doc(120);
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .mode(ServerMode::ThreadPerConn)
        .shards(3)
        .shard_workers(1)
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");

    for id in [7u64, 8, 9, 10] {
        let request = HandshakeRequest::new(WireFormat::JsonLines).query(queries[0]).stream_id(id);
        let (confirmed, frames) = run_client(server.local_addr(), request, &doc);
        assert_eq!(confirmed, id);
        let mut remaining = expected.clone();
        for f in &frames {
            let key = (f.query, f.start, f.end);
            let n = remaining.get_mut(&key).expect("frame matches a batch result");
            *n -= 1;
            if *n == 0 {
                remaining.remove(&key);
            }
        }
        assert!(remaining.is_empty());
    }
    let stats = server.shutdown();
    assert_eq!(stats.shards.len(), 3);
    assert_eq!(stats.router.placements, 4);
    assert_eq!(stats.sessions_completed, 4);
}

// ---------------------------------------------------------------------------
// Cross-process forwarding
// ---------------------------------------------------------------------------

#[test]
fn forward_relays_a_stream_byte_identically() {
    let queries = ["//item/k", "/stream/item/id"];
    let doc = make_doc(150);

    let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(4).build());
    let remote = TcpServer::builder()
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind remote");

    // The reference: a direct connection to the same server.
    let request = HandshakeRequest::new(WireFormat::Binary)
        .query(queries[0])
        .query(queries[1])
        .retain_bytes(1 << 20)
        .stream_id(77);
    let (_, direct) = run_client(remote.local_addr(), request.clone(), &doc);

    // The forwarded topology: the stream reaches the remote through the
    // shard::forward building block instead.
    let mut relayed = Vec::new();
    let report =
        forward(remote.local_addr(), &request, &doc[..], &mut relayed).expect("forward succeeds");
    assert_eq!(report.stream_id, 77);
    assert_eq!(report.query_ids, vec![0, 1]);
    assert_eq!(report.bytes_up, doc.len() as u64);
    assert_eq!(report.bytes_down, relayed.len() as u64);

    let forwarded = decode_frames(WireFormat::Binary, &relayed);
    assert!(!forwarded.is_empty());
    assert_eq!(
        frame_multiset(&direct),
        frame_multiset(&forwarded),
        "a forwarded stream must be byte-identical to a direct one"
    );

    // A forward without a stream id learns the remote's assignment.
    let request = HandshakeRequest::new(WireFormat::Binary).query(queries[0]);
    let mut relayed = Vec::new();
    let report =
        forward(remote.local_addr(), &request, &doc[..], &mut relayed).expect("forward succeeds");
    assert_ne!(report.stream_id, 0, "the remote assigned a unique id");
    let forwarded = decode_frames(WireFormat::Binary, &relayed);
    assert!(forwarded.iter().all(|f| f.stream == report.stream_id));

    let stats = remote.shutdown();
    assert_eq!(stats.sessions_completed, 3);
}

// ---------------------------------------------------------------------------
// Shared-stream placement stability
// ---------------------------------------------------------------------------

/// Subscribers of one shared stream account on the same shard as the stream's
/// owner: placement is deterministic in the stream id, so an attach never
/// scatters a stream's connections across shards.
#[test]
fn shared_stream_subscribers_place_on_the_owners_shard() {
    let doc = make_doc(80);

    let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .mode(ServerMode::ThreadPerConn)
        .shards(4)
        .shard_workers(1)
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // Owner registers but holds its bytes until both subscribers attached.
    let mut owner = TcpStream::connect(addr).expect("owner connect");
    let owner_req = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k").stream_id(21);
    let reg = register(&mut owner, &owner_req).expect("owner accepted");
    assert!(!reg.attached);

    let mut readers = Vec::new();
    for _ in 0..2 {
        let mut sub = TcpStream::connect(addr).expect("subscriber connect");
        let sub_req =
            HandshakeRequest::new(WireFormat::JsonLines).query("/stream/item/id").stream_id(21);
        let sub_reg = register(&mut sub, &sub_req).expect("attach accepted");
        assert!(sub_reg.attached, "same live id attaches");
        readers.push(std::thread::spawn(move || {
            let mut raw = Vec::new();
            sub.read_to_end(&mut raw).expect("drain subscriber");
            decode_frames(WireFormat::JsonLines, &raw).len()
        }));
    }

    owner.write_all(&doc).expect("owner stream");
    owner.shutdown(Shutdown::Write).expect("owner half-close");
    let mut raw = Vec::new();
    owner.read_to_end(&mut raw).expect("drain owner");
    assert!(!decode_frames(WireFormat::JsonLines, &raw).is_empty());
    for reader in readers {
        assert!(reader.join().expect("subscriber reader") > 0);
    }

    let stats = server.shutdown();
    assert_eq!(stats.connections.len(), 3, "owner + two subscribers recorded");
    let shards: Vec<usize> = stats.connections.iter().map(|c| c.shard).collect();
    assert!(
        shards.iter().all(|&s| s == shards[0]),
        "all connections of stream 21 share one shard, got {shards:?}"
    );
    // Exactly one placement per connection, all on the owner's shard.
    assert_eq!(stats.router.placements, 3);
}
