//! The observability surface, end to end: the in-band `STATS` verb and the
//! admin HTTP listener against live loaded servers, per-shard metric labels
//! reconciling with the router totals and [`ServerStats`], the event
//! journal, and a property test that scraping never tears a histogram that
//! is being recorded into concurrently.

use ppt_runtime::serve::{register, scrape, ServerMode, TcpServer};
use ppt_runtime::telemetry::{Histogram, HISTOGRAM_BUCKETS};
use ppt_runtime::{HandshakeRequest, Runtime, WireFormat};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn make_doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>payload for element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// Streams `doc` through one registered connection, draining frames to EOF.
fn run_client(addr: SocketAddr, request: HandshakeRequest, doc: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    register(&mut stream, &request).expect("handshake accepted");
    let writer_stream = stream.try_clone().expect("clone");
    let doc_owned = doc.to_vec();
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        let _ = writer_stream.write_all(&doc_owned);
        let _ = writer_stream.shutdown(Shutdown::Write);
    });
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read frames to EOF");
    writer.join().expect("writer thread");
}

// ---------------------------------------------------------------------------
// Exposition-page parsing helpers (what a real scraper would do)
// ---------------------------------------------------------------------------

/// Every sample of family `name` on the page: `(label-block, value)` pairs.
/// Matches exact family names only — `ppt_x` does not match `ppt_x_total`'s
/// samples or `ppt_x_bucket` lines.
fn samples<'a>(page: &'a str, name: &str) -> Vec<(&'a str, f64)> {
    let mut out = Vec::new();
    for line in page.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_prefix(name) else { continue };
        let (labels, value) = match rest.strip_prefix('{') {
            Some(tail) => {
                let Some(close) = tail.find('}') else { continue };
                (&tail[..close], tail[close + 1..].trim())
            }
            None => match rest.strip_prefix(' ') {
                Some(value) => ("", value.trim()),
                None => continue, // a longer metric name sharing the prefix
            },
        };
        out.push((labels, value.parse::<f64>().expect("sample values parse")));
    }
    out
}

/// The single unlabelled sample of family `name`.
fn value(page: &str, name: &str) -> f64 {
    let all = samples(page, name);
    assert_eq!(all.len(), 1, "expected exactly one {name} sample, got {all:?}");
    all[0].1
}

// ---------------------------------------------------------------------------
// The in-band STATS verb
// ---------------------------------------------------------------------------

#[test]
#[cfg(unix)]
fn stats_verb_reconciles_per_shard_labels_with_router_totals() {
    let shards = 4;
    let runtime = Arc::new(Runtime::builder().workers(2).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .shards(shards)
        .shard_workers(2)
        .chunk_size(512)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();
    let doc = make_doc(200);
    let sessions = 12u64;
    for id in 0..sessions {
        let request =
            HandshakeRequest::new(WireFormat::JsonLines).query("//item/k").stream_id(id * 7 + 1);
        run_client(addr, request, &doc);
    }

    let page = scrape(addr).expect("STATS scrape");
    let stats = server.stats();

    // Per-shard label sums must equal the router totals and the ServerStats
    // snapshot — one source of truth, three surfaces.
    let shard_sessions: f64 =
        samples(&page, "ppt_shard_sessions_total").iter().map(|(_, v)| v).sum();
    assert_eq!(shard_sessions as u64, sessions);
    assert_eq!(value(&page, "ppt_router_placements_total") as u64, sessions);
    assert_eq!(stats.router.placements, sessions);
    assert_eq!(value(&page, "ppt_sessions_completed_total") as u64, sessions);
    assert_eq!(stats.sessions_completed, sessions);
    let shard_matches: f64 = samples(&page, "ppt_shard_matches_total").iter().map(|(_, v)| v).sum();
    assert_eq!(shard_matches as u64, sessions * 200, "200 matches per session");
    assert_eq!(
        value(&page, "ppt_frames_out_total") as u64,
        stats.frames_out,
        "frame totals agree with the stats snapshot"
    );

    // Every shard that served a session exposes per-stage latency
    // histograms under its own label.
    for shard in &stats.shards {
        if shard.sessions == 0 {
            continue;
        }
        for stage in ["split", "transduce", "fold", "finalize"] {
            let want = format!("stage=\"{stage}\",shard=\"{}\"", shard.shard);
            let count = samples(&page, "ppt_stage_seconds_count")
                .iter()
                .find(|(labels, _)| *labels == want)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing ppt_stage_seconds_count{{{want}}}"));
            assert!(count > 0.0, "stage {stage} on shard {} recorded nothing", shard.shard);
        }
    }

    // Handshake latency: count covers every session handshake plus the
    // scrape's own, and the p99 extension line is present and finite.
    assert!(value(&page, "ppt_handshake_seconds_count") as u64 >= sessions);
    let p99 = value(&page, "ppt_handshake_seconds_p99");
    assert!(p99.is_finite() && p99 > 0.0, "p99 handshake latency must be finite: {p99}");

    // The scrape itself is accounted — and not as a handshake reject.
    assert_eq!(value(&page, "ppt_scrapes_total") as u64, 1);
    assert_eq!(value(&page, "ppt_handshake_rejects_total") as u64, 0);
    assert_eq!(server.stats().handshake_rejects, 0);
    server.shutdown();
}

#[test]
fn stats_verb_works_in_thread_per_conn_mode() {
    let runtime = Arc::new(Runtime::builder().workers(2).build());
    let server = TcpServer::builder()
        .mode(ServerMode::ThreadPerConn)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();
    run_client(addr, HandshakeRequest::new(WireFormat::JsonLines).query("//item/k"), &make_doc(20));
    let page = scrape(addr).expect("STATS scrape");
    assert_eq!(value(&page, "ppt_sessions_completed_total") as u64, 1);
    assert_eq!(value(&page, "ppt_scrapes_total") as u64, 1);
    // No reactor on this server: its families must not appear.
    assert!(samples(&page, "ppt_reactor_polls_total").is_empty());
    let stats = server.shutdown();
    assert_eq!(stats.handshake_rejects, 0, "a scrape is not a reject");
    assert_eq!(stats.sessions_completed, 1, "a scrape is not a session");
}

// ---------------------------------------------------------------------------
// The admin HTTP listener
// ---------------------------------------------------------------------------

/// One blocking HTTP/1.0 exchange; returns (status-line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().expect("status line").to_string();
    // Content-Length must describe the body exactly — scrapers rely on it.
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("length parses");
    assert_eq!(declared, body.len(), "Content-Length mismatch for {path}");
    (status, body.to_string())
}

#[test]
fn admin_endpoint_serves_metrics_journal_and_404() {
    let runtime = Arc::new(Runtime::builder().workers(2).build());
    let server =
        TcpServer::builder().admin_addr("127.0.0.1:0").bind("127.0.0.1:0", runtime).expect("bind");
    let admin = server.admin_local_addr().expect("admin bound");
    run_client(
        server.local_addr(),
        HandshakeRequest::new(WireFormat::JsonLines).query("//item/k"),
        &make_doc(10),
    );

    let (status, page) = http_get(admin, "/metrics");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert_eq!(value(&page, "ppt_sessions_completed_total") as u64, 1);
    assert!(page.contains("# TYPE ppt_stage_seconds histogram"));

    // `/` is an alias for the metrics page.
    let (status, root_page) = http_get(admin, "/");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(root_page.contains("ppt_accepted_total"));

    // The journal names the session's lifecycle with its stream id.
    let (status, journal) = http_get(admin, "/journal");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(journal.starts_with("# event journal:"), "journal header: {journal:?}");
    for kind in ["registered", "placed", "drained"] {
        assert!(journal.contains(kind), "journal missing {kind:?}:\n{journal}");
    }

    let (status, _) = http_get(admin, "/bogus");
    assert_eq!(status, "HTTP/1.0 404 Not Found");

    // Bare-nc fallback: a non-HTTP line gets the raw metrics page.
    let mut nc = TcpStream::connect(admin).expect("connect");
    nc.write_all(b"\n").expect("bare newline");
    let mut raw = String::new();
    nc.read_to_string(&mut raw).expect("read page");
    assert!(raw.contains("ppt_accepted_total"), "nc fallback serves metrics");

    // The metrics page equals the in-process render (modulo the counters
    // that advanced between scrapes).
    assert!(server.metrics_text().contains("ppt_scrapes_total"));
    server.shutdown();
}

#[test]
fn admin_endpoint_counts_scrapes_and_survives_shutdown() {
    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server =
        TcpServer::builder().admin_addr("127.0.0.1:0").bind("127.0.0.1:0", runtime).expect("bind");
    let admin = server.admin_local_addr().expect("admin bound");
    let (_, first) = http_get(admin, "/metrics");
    let (_, second) = http_get(admin, "/metrics");
    assert_eq!(value(&first, "ppt_scrapes_total") as u64, 1);
    assert_eq!(value(&second, "ppt_scrapes_total") as u64, 2);
    // Shutdown must join the admin thread without wedging.
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Concurrent record-while-scrape: snapshots never tear
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Recorders hammer a histogram while a scraper snapshots it: every
    /// mid-flight snapshot must be internally consistent (cumulative bucket
    /// counts monotone and capped by `count`, quantiles inside the recorded
    /// range), and the final snapshot must account for every record.
    #[test]
    fn snapshots_under_concurrent_records_never_tear(
        values in prop::collection::vec(0u64..1 << 48, 32..256),
        threads in 2usize..5,
    ) {
        let hist = Arc::new(Histogram::new());
        let chunks: Vec<Vec<u64>> =
            values.chunks(values.len().div_ceil(threads)).map(<[u64]>::to_vec).collect();
        let recorders: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let hist = Arc::clone(&hist);
                let chunk = chunk.clone();
                std::thread::spawn(move || {
                    for v in chunk {
                        hist.record(v);
                    }
                })
            })
            .collect();
        // Scrape while the recorders run.
        for _ in 0..50 {
            let snap = hist.snapshot();
            let total: u64 = snap.buckets.iter().sum();
            prop_assert!(total <= snap.count, "bucket total {total} over count {}", snap.count);
            if snap.count > 0 {
                let p50 = snap.quantile(0.5).expect("non-empty");
                let p99 = snap.quantile(0.99).expect("non-empty");
                prop_assert!(p50 <= p99, "quantiles out of order: p50 {p50} > p99 {p99}");
            }
            std::hint::spin_loop();
        }
        for r in recorders {
            r.join().expect("recorder");
        }
        let final_snap = hist.snapshot();
        prop_assert_eq!(final_snap.count, values.len() as u64);
        prop_assert_eq!(final_snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(
            final_snap.buckets.iter().sum::<u64>(),
            values.len() as u64,
            "every record landed in exactly one of the {} buckets",
            HISTOGRAM_BUCKETS
        );
    }
}
