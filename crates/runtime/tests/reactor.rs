//! The poll(2) reactor serving mode, exercised over real localhost sockets:
//! byte-correctness against the batch engine across both wire formats and
//! multiple ingest threads, partial handshake lines spread over many
//! readiness events, outbox backpressure bounding both the egress buffer and
//! the retention ring, mid-stream hang-ups poisoning only their own session,
//! shutdown while the admission gate is exhausted (the self-connect-wake
//! regression), and a proptest over interleaved readable/writable readiness
//! orderings.
#![cfg(unix)]

use ppt_core::Engine;
use ppt_runtime::serve::{register, TcpServer};
use ppt_runtime::{Frame, FrameDecoder, HandshakeRequest, Runtime, ServerMode, WireFormat};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A document with `items` matching `//item/k` elements.
fn make_doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>payload for element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// The batch reference: multiset of (query, start, end) from `Engine::run`.
fn batch_reference(queries: &[&str], doc: &[u8]) -> HashMap<(u32, u64, u64), usize> {
    let engine = Engine::builder().add_queries(queries).unwrap().build().unwrap();
    let result = engine.run(doc);
    let mut expected = HashMap::new();
    for (qi, ms) in result.query_matches.iter().enumerate() {
        for m in ms {
            *expected.entry((qi as u32, m.start as u64, m.end as u64)).or_default() += 1;
        }
    }
    expected
}

/// Decodes the raw frame bytes a client read, per format.
fn decode_frames(format: WireFormat, raw: &[u8]) -> Vec<Frame> {
    match format {
        WireFormat::JsonLines => {
            let text = std::str::from_utf8(raw).expect("wire JSON is ASCII");
            text.lines().map(|l| Frame::decode_json(l).expect("every line parses")).collect()
        }
        WireFormat::Binary => {
            let mut decoder = FrameDecoder::new();
            decoder.push(raw);
            let mut frames = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                frames.push(frame);
            }
            decoder.finish().expect("no truncated tail on a clean close");
            frames
        }
    }
}

/// Connects, registers, streams `doc` in `write_step`-byte pieces (with an
/// optional dawdle between reads), and returns every frame served.
fn run_client(
    addr: SocketAddr,
    request: HandshakeRequest,
    doc: Arc<Vec<u8>>,
    write_step: usize,
    read_delay: Option<Duration>,
) -> Vec<Frame> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let reg = register(&mut stream, &request).expect("handshake accepted");
    assert_eq!(reg.query_ids, (0..request.queries.len() as u32).collect::<Vec<u32>>());

    let format = request.format;
    let writer_stream = stream.try_clone().expect("clone for writer");
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        for piece in doc.chunks(write_step.max(1)) {
            if writer_stream.write_all(piece).is_err() {
                return;
            }
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });

    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if let Some(delay) = read_delay {
                    std::thread::sleep(delay);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    writer.join().expect("writer thread");
    decode_frames(format, &raw)
}

/// Asserts `frames` carry exactly the batch matches, with byte-identical
/// payloads when `doc` is given (retention on).
fn assert_frames_match(
    frames: &[Frame],
    mut expected: HashMap<(u32, u64, u64), usize>,
    doc: Option<&[u8]>,
) {
    for frame in frames {
        let key = (frame.query, frame.start, frame.end);
        let n = expected.get_mut(&key).unwrap_or_else(|| panic!("unexpected frame {key:?}"));
        *n -= 1;
        if *n == 0 {
            expected.remove(&key);
        }
        if let Some(doc) = doc {
            let payload = frame.payload.as_ref().expect("retention on: payload present");
            assert_eq!(
                payload.as_slice(),
                &doc[frame.start as usize..frame.end as usize],
                "payload must be byte-identical to the stream slice"
            );
        }
    }
    assert!(expected.is_empty(), "batch matches never served: {expected:?}");
}

#[test]
fn reactor_serves_both_formats_across_multiple_ingest_threads() {
    let queries = ["//item/k", "/stream/item/id"];
    let doc = Arc::new(make_doc(300));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .ingest_threads(2)
        .join_threads(2)
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    let mut clients = Vec::new();
    for (stream_id, format) in
        [(7u64, WireFormat::JsonLines), (9, WireFormat::Binary), (11, WireFormat::JsonLines)]
    {
        let doc = Arc::clone(&doc);
        let request = HandshakeRequest::new(format)
            .query(queries[0])
            .query(queries[1])
            .retain_bytes(1 << 20)
            .stream_id(stream_id);
        clients.push(std::thread::spawn(move || {
            (stream_id, run_client(addr, request, doc, 4096, None))
        }));
    }
    for client in clients {
        let (stream_id, frames) = client.join().expect("client thread");
        assert!(!frames.is_empty());
        assert!(frames.iter().all(|f| f.stream == stream_id), "frames carry the stream id");
        assert_frames_match(&frames, expected.clone(), Some(&doc));
    }

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.sessions_completed, 3);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.active, 0);
    let reactor = stats.reactor.expect("reactor mode reports event-loop stats");
    assert!(reactor.polls > 0, "the loop polled: {reactor:?}");
    assert!(reactor.wakeups > 0, "credit returns woke the loop: {reactor:?}");
    assert!(reactor.readiness_dispatches > 0, "sockets reported readiness: {reactor:?}");
    // 2 ingest wake fds + listener + 3 connections at the high-water mark is
    // the ceiling; at least wake fds + listener + one connection must have
    // been registered at once.
    assert!(reactor.peak_registered_fds >= 4, "{reactor:?}");
}

#[test]
fn partial_handshake_lines_across_many_readiness_events() {
    let doc = Arc::new(make_doc(40));
    let expected = batch_reference(&["//item/k"], &doc);

    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .chunk_size(256)
        .window_size(1024)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // Dribble the handshake a few bytes at a time with pauses, so every
    // fragment arrives in its own readiness event — the decoder must carry
    // partial lines across them, and the bytes right after GO (the head of
    // the stream) must not be lost.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    let mut handshake = request.encode();
    handshake.extend_from_slice(&doc[..32]); // stream head rides along
    for piece in handshake.chunks(3) {
        stream.write_all(piece).expect("write fragment");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    stream.write_all(&doc[32..]).expect("stream the rest");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read frames");
    // The reply line comes first on this socket; split it off.
    let newline = raw.iter().position(|&b| b == b'\n').expect("reply line");
    let reply = std::str::from_utf8(&raw[..newline]).unwrap();
    // A default handshake (no STREAM line) gets a server-assigned id, so
    // only the reply's shape is fixed.
    match ppt_runtime::HandshakeReply::decode(reply).expect("well-formed reply") {
        ppt_runtime::HandshakeReply::Accepted { stream, queries } => {
            assert_ne!(stream, 0, "assigned stream ids are never 0");
            assert_eq!(queries, vec![0]);
        }
        other => panic!("fragmented handshake rejected: {other:?}"),
    }
    let frames = decode_frames(WireFormat::JsonLines, &raw[newline + 1..]);
    assert_frames_match(&frames, expected, None);

    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.handshake_rejects, 0);
}

#[test]
fn outbox_backpressure_parks_the_fold_and_bounds_memory() {
    // A dense-match query and a slow reader force the outbox to its cap:
    // the join executor must park (flipping POLLOUT duty to the reactor),
    // resume as the socket drains, and the retention ring must stay under
    // the client's budget because a parked fold holds the session's credits.
    let doc = Arc::new(make_doc(1500));
    let expected = batch_reference(&["//item/k"], &doc);
    let outbox_cap = 2 << 10;
    let retain_budget = 16 << 10;

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(2).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .max_outbox_bytes(outbox_cap)
        .chunk_size(512)
        .window_size(2048)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    let request = HandshakeRequest::new(WireFormat::JsonLines)
        .query("//item/k")
        .retain_bytes(retain_budget as u64);
    let frames = run_client(addr, request, Arc::clone(&doc), 4096, Some(Duration::from_millis(1)));
    assert_frames_match(&frames, expected, Some(&doc));

    let stats = server.shutdown();
    let reactor = stats.reactor.expect("reactor stats");
    // Soft cap: the outbox may overshoot by one fold's worth of frames (one
    // chunk's matches), never by more.
    let one_fold_slack = 8 << 10;
    assert!(
        reactor.peak_outbox_bytes <= outbox_cap + one_fold_slack,
        "outbox stayed near its cap: {} > {} + {}",
        reactor.peak_outbox_bytes,
        outbox_cap,
        one_fold_slack
    );
    assert!(reactor.peak_outbox_bytes > 0, "the outbox was actually exercised");
    let conn = &stats.connections[0];
    let report = conn.report.as_ref().expect("session completed");
    assert!(
        report.stats.peak_retained_bytes <= retain_budget,
        "retention stayed under the budget: {} > {retain_budget}",
        report.stats.peak_retained_bytes
    );
    assert_eq!(report.stats.payload_misses, 0);
    assert_eq!(conn.frames, frames.len() as u64);
}

#[test]
fn mid_stream_hangup_poisons_only_that_session() {
    let queries = ["//item/k"];
    let doc = Arc::new(make_doc(400));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .chunk_size(256)
        .window_size(2048)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The victim: registers, streams a prefix, then vanishes without ever
    // reading a frame — the reset must be absorbed by its own session only.
    let victim_doc = Arc::clone(&doc);
    let victim = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
        register(&mut stream, &request).expect("handshake accepted");
        let _ = stream.write_all(&victim_doc[..victim_doc.len() / 2]);
        std::thread::sleep(Duration::from_millis(100));
        drop(stream); // no half-close: an abrupt disappearance
    });

    // The bystander: a full, well-behaved session running concurrently.
    let request = HandshakeRequest::new(WireFormat::JsonLines).query(queries[0]);
    let frames = run_client(addr, request, Arc::clone(&doc), 4096, None);
    assert_frames_match(&frames, expected.clone(), None);
    victim.join().unwrap();

    // And the server keeps serving new sessions afterwards.
    let request = HandshakeRequest::new(WireFormat::Binary).query(queries[0]);
    let frames = run_client(addr, request, Arc::clone(&doc), 4096, None);
    assert_frames_match(&frames, expected, None);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.sessions_completed, 2, "both healthy sessions finished: {stats:?}");
    assert_eq!(stats.sessions_failed, 1, "the vanished client failed alone: {stats:?}");
    assert_eq!(stats.active, 0);
}

/// A poisoned session must release every borrowed egress refcount: a client
/// requests MiB-scale payloads, stalls without reading a byte (so the outbox
/// queues frames *borrowing* retention windows), then vanishes. The abort
/// path clears the outbox — dropping the borrows — before poisoning, so
/// retention stays bounded (`peak_retained` under budget) instead of the
/// dead outbox pinning evicted windows, and the server keeps serving.
#[test]
fn poisoned_session_releases_borrowed_egress_refcounts() {
    // 8 elements of ~256 KiB each: every frame borrows multiple windows.
    let elem = "y".repeat(256 << 10);
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for _ in 0..8 {
        doc.extend_from_slice(format!("<item><k>{elem}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</stream>");
    let doc = Arc::new(doc);
    let retain_budget = 4 << 20;

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .mode(ServerMode::Reactor)
        .max_outbox_bytes(1 << 20)
        .chunk_size(64 << 10)
        .window_size(64 << 10)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = HandshakeRequest::new(WireFormat::Binary)
            .query("//item/k")
            .retain_bytes(retain_budget as u64);
        register(&mut stream, &request).expect("handshake accepted");
        // Stream everything but never read a frame: borrowed payloads pile
        // up in the outbox until its cap (which counts borrowed bytes)
        // parks the fold.
        let _ = stream.write_all(&doc);
        std::thread::sleep(Duration::from_millis(200));
        drop(stream); // vanish abruptly: no half-close, frames unread
    }

    // The server must remain fully serviceable afterwards.
    let expected = batch_reference(&["//item/k"], &doc);
    let request = HandshakeRequest::new(WireFormat::Binary)
        .query("//item/k")
        .retain_bytes(retain_budget as u64);
    let frames = run_client(addr, request, Arc::clone(&doc), 64 << 10, None);
    assert_frames_match(&frames, expected, Some(&doc));

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.sessions_failed, 1, "the stalled client failed alone: {stats:?}");
    assert_eq!(stats.active, 0);
    for conn in &stats.connections {
        let Some(report) = conn.report.as_ref() else { continue };
        assert!(
            report.stats.peak_retained_bytes <= retain_budget,
            "borrowed frames must not pin retention past the budget: {} > {retain_budget}",
            report.stats.peak_retained_bytes
        );
    }
}

/// The shutdown regression: the old wake-up was a self-connect, which can
/// block against a saturated backlog exactly when the server is at
/// `max_connections`. Both modes now wake the accept side through the
/// reactor's eventfd, so shutdown must complete promptly even while the
/// admission gate is fully exhausted by an in-flight session.
fn shutdown_completes_while_gate_exhausted(mode: ServerMode) {
    let doc = Arc::new(make_doc(200));
    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder()
        .mode(mode)
        .max_connections(1)
        .chunk_size(256)
        .window_size(1024)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The slot holder: registered and mid-stream, so the gate is exhausted
    // for the whole shutdown call.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    register(&mut stream, &request).expect("handshake accepted");
    stream.write_all(&doc[..doc.len() / 2]).expect("first half");

    let (tx, rx) = std::sync::mpsc::channel();
    let shutdown = std::thread::spawn(move || {
        let stats = server.shutdown();
        tx.send(()).ok();
        stats
    });
    // Give shutdown time to park: it must be draining the in-flight session,
    // not hanging in its own wake-up.
    std::thread::sleep(Duration::from_millis(150));
    assert!(rx.try_recv().is_err(), "shutdown drains the in-flight session first");

    // Let the session finish; shutdown must return promptly afterwards.
    let started = Instant::now();
    stream.write_all(&doc[doc.len() / 2..]).expect("second half");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).expect("drain frames");
    rx.recv_timeout(Duration::from_secs(20))
        .expect("shutdown completed while the gate was exhausted");
    assert!(started.elapsed() < Duration::from_secs(20));
    let stats = shutdown.join().expect("shutdown thread");
    assert_eq!(stats.accepted, 1, "no phantom wake-up connection was ever accepted");
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.active, 0);
}

#[test]
fn shutdown_completes_while_gate_exhausted_reactor() {
    shutdown_completes_while_gate_exhausted(ServerMode::Reactor);
}

#[test]
fn shutdown_completes_while_gate_exhausted_thread_per_conn() {
    shutdown_completes_while_gate_exhausted(ServerMode::ThreadPerConn);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved readable/writable readiness orderings: clients write the
    /// handshake and stream in arbitrary fragment sizes while reading
    /// eagerly or lazily (lazy reads force POLLOUT exhaustion and interest
    /// flips). Whatever the interleaving, every client gets exactly the
    /// batch engine's matches with byte-identical payloads.
    #[test]
    fn readiness_orderings_preserve_frame_correctness(
        write_step in 1usize..600,
        read_lazy in any::<bool>(),
        binary in any::<bool>(),
        items in 20usize..80,
    ) {
        let doc = Arc::new(make_doc(items));
        let expected = batch_reference(&["//item/k"], &doc);
        let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(2).build());
        let server = TcpServer::builder()
            .mode(ServerMode::Reactor)
            .max_outbox_bytes(1 << 10)
            .chunk_size(128)
            .window_size(512)
            .bind("127.0.0.1:0", runtime)
            .expect("bind");
        let addr = server.local_addr();

        let format = if binary { WireFormat::Binary } else { WireFormat::JsonLines };
        let request = HandshakeRequest::new(format)
            .query("//item/k")
            .retain_bytes(64 << 10);
        let delay = read_lazy.then(|| Duration::from_millis(1));
        let frames = run_client(addr, request, Arc::clone(&doc), write_step, delay);
        assert_frames_match(&frames, expected, Some(&doc));

        let stats = server.shutdown();
        prop_assert_eq!(stats.sessions_completed, 1);
        prop_assert_eq!(stats.sessions_failed, 0);
    }
}
