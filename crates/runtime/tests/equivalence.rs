//! Online ↔ batch equivalence: the streaming runtime must report exactly the
//! matches `Engine::run` reports, on every dataset family, across chunk and
//! window sizes — including configurations that put window boundaries inside
//! tags and chunk boundaries at every awkward offset.

use ppt_core::Engine;
use ppt_runtime::{CollectSink, OnlineMatch, Runtime};
use std::io::Read;
use std::sync::Arc;

/// A reader that hands out the underlying buffer `read_size` bytes at a time,
/// so window boundaries land at arbitrary offsets (often inside tags).
struct DribbleReader {
    data: Vec<u8>,
    pos: usize,
    read_size: usize,
}

impl Read for DribbleReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.read_size.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Batch result as sortable tuples per query.
fn batch_matches(engine: &Engine, data: &[u8]) -> Vec<Vec<(usize, usize, u32)>> {
    let result = engine.run(data);
    result
        .query_matches
        .iter()
        .map(|ms| {
            let mut v: Vec<(usize, usize, u32)> =
                ms.iter().map(|m| (m.start, m.end, m.depth)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Online result (collected + sorted) as the same tuples.
fn online_matches(sink: &CollectSink, query_count: usize) -> Vec<Vec<(usize, usize, u32)>> {
    sink.per_query(query_count)
        .into_iter()
        .map(|ms| {
            let mut v: Vec<(usize, usize, u32)> =
                ms.iter().map(|m: &OnlineMatch| (m.start, m.end, m.depth)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn assert_equivalent(
    data: &[u8],
    queries: &[&str],
    chunk_size: usize,
    window_size: usize,
    read_size: usize,
    workers: usize,
    label: &str,
) {
    let engine = Arc::new(
        Engine::builder()
            .add_queries(queries)
            .unwrap()
            .chunk_size(chunk_size)
            .window_size(window_size)
            .build()
            .unwrap(),
    );
    let expected = batch_matches(&engine, data);
    let expected_submatches: Vec<usize> = engine.run(data).submatch_counts;

    let runtime = Runtime::builder().workers(workers).build();
    let mut sink = CollectSink::new();
    let reader = DribbleReader { data: data.to_vec(), pos: 0, read_size };
    let report = runtime.process_reader(Arc::clone(&engine), reader, &mut sink).unwrap();

    let got = online_matches(&sink, queries.len());
    assert_eq!(
        got, expected,
        "{label}: online matches differ (chunk={chunk_size} window={window_size} read={read_size})"
    );
    let counts: Vec<usize> = expected.iter().map(|v| v.len()).collect();
    assert_eq!(report.match_counts, counts, "{label}: reported match counts");
    assert_eq!(report.submatch_counts, expected_submatches, "{label}: sub-match accounting");
    assert_eq!(report.stats.bytes_in as usize, data.len(), "{label}: every byte ingested");
}

#[test]
fn tiny_document_every_configuration() {
    let doc = b"<a><b><d></d></b><b><c></c></b></a>";
    let queries = ["/a/b/c", "//d", "/a/b[d]", "//b"];
    for chunk_size in [1usize, 3, 7, 64] {
        for window_size in [16usize, 20, 1024] {
            for read_size in [1usize, 5, 64] {
                assert_equivalent(doc, &queries, chunk_size, window_size, read_size, 2, "tiny");
            }
        }
    }
}

#[test]
fn xmark_with_xpathmark_queries() {
    let data = ppt_datasets::XmarkConfig::with_target_size(96 * 1024).generate();
    // A representative slice of XPathMark: plain paths, wildcards, predicates.
    let queries: Vec<&str> = ppt_datasets::xpathmark_queries_strs().into_iter().take(6).collect();
    for (chunk, window) in [(512usize, 4096usize), (1024, 8192), (97, 1031)] {
        assert_equivalent(&data, &queries, chunk, window, 769, 3, "xmark");
    }
}

#[test]
fn treebank_with_random_queries() {
    let data = ppt_datasets::TreebankConfig::with_target_size(96 * 1024).generate();
    let owned = ppt_datasets::random_treebank_queries(6, 4, 11);
    let queries: Vec<&str> = owned.iter().map(|s| s.as_str()).collect();
    for (chunk, window) in [(256usize, 2048usize), (1000, 16 * 1024)] {
        assert_equivalent(&data, &queries, chunk, window, 513, 2, "treebank");
    }
}

#[test]
fn twitter_with_firehose_query() {
    let data = ppt_datasets::TwitterConfig::with_target_size(96 * 1024).generate();
    let queries = [ppt_datasets::twitter_query(), "//status", "//retweeted_status//text"];
    for (chunk, window) in [(700usize, 5000usize), (2048, 8192)] {
        assert_equivalent(&data, &queries, chunk, window, 997, 4, "twitter");
    }
}

#[test]
fn window_boundaries_inside_tags_are_harmless() {
    // Long tag names + 1-byte reads + a window barely above the minimum:
    // nearly every pop decision happens mid-tag.
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<collection>");
    for i in 0..40 {
        doc.extend_from_slice(
            format!(
                "<averylongelementname idx=\"{i}\"><inner>text {i}</inner></averylongelementname>"
            )
            .as_bytes(),
        );
    }
    doc.extend_from_slice(b"</collection>");
    let queries = ["//averylongelementname/inner", "/collection/averylongelementname"];
    assert_equivalent(&doc, &queries, 5, 16, 1, 2, "mid-tag");
}

#[test]
fn push_api_agrees_with_reader_api() {
    use std::sync::Mutex;

    let data = ppt_datasets::XmarkConfig::with_target_size(48 * 1024).generate();
    let queries = ["//k", "/s/cs/c/a/d/t/k"];
    let engine = Arc::new(
        Engine::builder()
            .add_queries(&queries)
            .unwrap()
            .chunk_size(333)
            .window_size(2048)
            .build()
            .unwrap(),
    );
    let expected = batch_matches(&engine, &data);

    // A sink whose storage outlives the session: the session owns one clone,
    // the test keeps the other.
    let collected: Arc<Mutex<Vec<OnlineMatch>>> = Arc::default();
    let sink_side = Arc::clone(&collected);
    let sink = move |m: OnlineMatch| sink_side.lock().unwrap().push(m);

    let runtime = Runtime::builder().workers(2).build();
    let mut session = runtime.open_session(Arc::clone(&engine), Box::new(sink));
    for piece in data.chunks(101) {
        session.feed(piece);
    }
    let (report, _sink) = session.finish();

    let mut per_query: Vec<Vec<(usize, usize, u32)>> = vec![Vec::new(); queries.len()];
    for m in collected.lock().unwrap().iter() {
        per_query[m.query].push((m.start, m.end, m.depth));
    }
    for v in &mut per_query {
        v.sort_unstable();
    }
    assert_eq!(per_query, expected);
    assert_eq!(report.stats.bytes_in as usize, data.len());
    // The builder clamps window_size to its minimum; use the effective value.
    let effective_window = engine.config().window_size;
    assert!(report.stats.windows >= (data.len() / (2 * effective_window)) as u64);
}

#[test]
fn iterator_api_streams_the_same_matches() {
    let data = ppt_datasets::TwitterConfig::with_target_size(32 * 1024).generate();
    let queries = [ppt_datasets::twitter_query()];
    let engine = Arc::new(
        Engine::builder()
            .add_queries(&queries)
            .unwrap()
            .chunk_size(512)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let expected = batch_matches(&engine, &data);

    let runtime = Runtime::builder().workers(2).build();
    let stream = runtime.stream_reader(Arc::clone(&engine), std::io::Cursor::new(data));
    let mut got: Vec<(usize, usize, u32)> = stream.map(|m| (m.start, m.end, m.depth)).collect();
    got.sort_unstable();
    assert_eq!(got, expected[0]);
}

#[test]
fn concurrent_sessions_share_one_pool() {
    let xmark = ppt_datasets::XmarkConfig::with_target_size(48 * 1024).generate();
    let treebank = ppt_datasets::TreebankConfig::with_target_size(48 * 1024).generate();
    let twitter = ppt_datasets::TwitterConfig::with_target_size(48 * 1024).generate();

    let cases: Vec<(&[u8], Vec<&str>)> = vec![
        (&xmark, vec!["//k", "/s/cs/c/a"]),
        (&treebank, vec!["//NP/NN", "//S//VP"]),
        (&twitter, vec![ppt_datasets::twitter_query()]),
    ];

    let runtime = Runtime::builder().workers(3).build();
    std::thread::scope(|scope| {
        let runtime = &runtime;
        let handles: Vec<_> = cases
            .iter()
            .map(|(data, queries)| {
                scope.spawn(move || {
                    let engine = Arc::new(
                        Engine::builder()
                            .add_queries(queries)
                            .unwrap()
                            .chunk_size(777)
                            .window_size(4096)
                            .build()
                            .unwrap(),
                    );
                    let expected = batch_matches(&engine, data);
                    let mut sink = CollectSink::new();
                    let report =
                        runtime.process_reader(Arc::clone(&engine), &data[..], &mut sink).unwrap();
                    let got = online_matches(&sink, queries.len());
                    assert_eq!(got, expected);
                    report
                })
            })
            .collect();
        for handle in handles {
            let report = handle.join().unwrap();
            assert!(report.stats.bytes_in > 0);
        }
    });
}

#[test]
fn malformed_streams_match_the_batch_engine() {
    // Truncated mid-tag, unbalanced closes, tag soup: the online runtime must
    // agree with the batch engine and drain cleanly rather than hang.
    let cases: &[&[u8]] = &[
        b"<s><item><k>a</k></item><ite",
        b"</x></y><item><k>a</k></item>",
        b"<a><b></a></b><k>",
        b"<<<>>><k/>",
    ];
    for &doc in cases {
        assert_equivalent(doc, &["//k", "/s/item"], 4, 16, 3, 2, "malformed");
    }
}

#[test]
fn empty_and_degenerate_streams() {
    let engine = Arc::new(Engine::builder().add_query("/a").unwrap().build().unwrap());
    let runtime = Runtime::builder().workers(1).build();

    let mut sink = CollectSink::new();
    let report = runtime.process_reader(Arc::clone(&engine), std::io::empty(), &mut sink).unwrap();
    assert_eq!(report.match_counts, vec![0]);
    assert!(sink.matches.is_empty());

    // Text-only stream (never a tag): nothing matches, nothing hangs.
    let mut sink = CollectSink::new();
    let report = runtime
        .process_reader(Arc::clone(&engine), &b"no tags here at all"[..], &mut sink)
        .unwrap();
    assert_eq!(report.match_counts, vec![0]);
    assert_eq!(report.stats.bytes_in, 19);
}
