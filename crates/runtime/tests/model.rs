//! Exhaustive-interleaving model tests for the runtime's lock-free core.
//!
//! A mini-loom: [`explore`] runs a small concurrent protocol model under a
//! deterministic scheduler that enumerates **every** thread interleaving
//! (optionally under a preemption bound), instead of hoping a stress test
//! happens to hit the bad schedule. Each model mirrors a real protocol in
//! `ppt-runtime`, with the mirrored source cited next to each step, and
//! checks its invariant after every step of every interleaving.
//!
//! Covered protocols:
//!
//! - the `Shared::record` seqlock vs. the `server_stats` snapshot reader
//!   (`crates/runtime/src/serve.rs`) — a validated snapshot is never torn,
//!   single- and multi-writer (the multi-writer case is why `record`
//!   serializes writers on the reports mutex; the unserialized variant is
//!   kept as a "teeth" test proving the checker would catch the regression);
//! - `Histogram` record/snapshot/merge (`crates/runtime/src/telemetry.rs`)
//!   — snapshots never undercount their own buckets and totals are
//!   conserved once writers drain;
//! - the `Gate` connection-admission credit protocol
//!   (`crates/runtime/src/serve.rs`) — slots are conserved (no double-free,
//!   never above capacity), `close` wakes every sleeper, and no
//!   interleaving deadlocks;
//! - the `delivering`-flag drop-accounting race between the joiner panic
//!   path and the session guard (`crates/runtime/src/session.rs` /
//!   `crates/runtime/src/reactor.rs`) — exactly one side accounts the
//!   in-flight delivery.
//!
//! Every exhaustive run also asserts a floor on the number of interleavings
//! actually explored, so a future refactor cannot quietly shrink the state
//! space into meaninglessness.

use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// A protocol model: shared state plus per-thread step machines.
///
/// `step(tid)` advances thread `tid` by one *atomic action* — the
/// granularity at which the real code's interleavings differ (one atomic
/// load/store/RMW, or one critical section entered under a mutex). The
/// explorer calls `check` after every step, so invariants hold at every
/// observable point, not just at quiescence.
trait Model {
    fn reset(&mut self);
    fn thread_count(&self) -> usize;
    /// Thread finished its program.
    fn is_done(&self, tid: usize) -> bool;
    /// Thread could take a step right now (false models blocking: a mutex
    /// held elsewhere, or a condvar wait with no pending wake).
    fn is_enabled(&self, tid: usize) -> bool;
    fn step(&mut self, tid: usize);
    /// Panics when an invariant is violated.
    fn check(&self);
    /// Extra assertions once every thread is done.
    fn at_end(&self) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Explored {
    /// Complete interleavings executed.
    executions: u64,
    /// Longest schedule seen (steps).
    max_depth: usize,
}

/// Exhaustively enumerates interleavings of `model` by depth-first search
/// over scheduling choices, replaying a prefix of recorded choices for each
/// execution (the model is `reset` every time, so runs are independent).
///
/// `max_preemptions` bounds *involuntary* context switches: switching away
/// from a thread that is still enabled costs one preemption, switching
/// because the current thread blocked or finished is free. `usize::MAX`
/// means a complete search. Bounded-preemption search is sound for bug
/// *finding* (most real concurrency bugs need very few preemptions) and
/// keeps bigger models tractable.
///
/// Deadlock is an invariant failure: if no thread is enabled but some are
/// not done, the explorer panics with the schedule length.
fn explore(model: &mut dyn Model, max_preemptions: usize) -> Explored {
    // Each frame: (choice taken, number of choices available at that point).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut executions = 0u64;
    let mut max_depth = 0usize;
    loop {
        model.reset();
        let mut depth = 0usize;
        let mut preemptions = 0usize;
        let mut last: Option<usize> = None;
        loop {
            let n = model.thread_count();
            let runnable: Vec<usize> =
                (0..n).filter(|&t| !model.is_done(t) && model.is_enabled(t)).collect();
            if runnable.is_empty() {
                let stuck: Vec<usize> = (0..n).filter(|&t| !model.is_done(t)).collect();
                assert!(
                    stuck.is_empty(),
                    "deadlock after {depth} steps: threads {stuck:?} blocked forever"
                );
                break;
            }
            // Under an exhausted preemption budget, keep running the current
            // thread while it can run; a block or finish still switches.
            let choices: Vec<usize> = match last {
                Some(l) if preemptions >= max_preemptions && runnable.contains(&l) => vec![l],
                _ => runnable,
            };
            let pick = if depth < stack.len() {
                stack[depth].0
            } else {
                stack.push((0, choices.len()));
                0
            };
            // Replays see the same model state, hence the same choice count.
            assert_eq!(stack[depth].1, choices.len(), "nondeterministic model");
            let tid = choices[pick];
            if let Some(l) = last {
                if l != tid && !model.is_done(l) && model.is_enabled(l) {
                    preemptions += 1;
                }
            }
            model.step(tid);
            model.check();
            last = Some(tid);
            depth += 1;
        }
        model.at_end();
        executions += 1;
        max_depth = max_depth.max(depth);
        // Backtrack to the deepest frame with an untried alternative.
        loop {
            match stack.last_mut() {
                None => return Explored { executions, max_depth },
                Some(frame) if frame.0 + 1 < frame.1 => {
                    frame.0 += 1;
                    break;
                }
                Some(_) => {
                    stack.pop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// A modelled mutex + condvar (used by the seqlock-writer and Gate models)
// ---------------------------------------------------------------------------

/// One mutex and one condvar, at model granularity.
///
/// Threads interact through [`MiniLock::try_lock`] (a step that either
/// acquires or observes contention), `unlock`, `wait` (atomically releases
/// and parks — the waker must `notify` before the waiter becomes enabled
/// again, upon which it re-acquires the lock before continuing, exactly
/// like `std::sync::Condvar::wait`), and `notify_one` / `notify_all`.
#[derive(Debug, Default)]
struct MiniLock {
    holder: Option<usize>,
    /// Parked in `wait`, not yet notified (FIFO, like a fair condvar).
    waiters: VecDeque<usize>,
    /// Notified, now racing to re-acquire the mutex.
    wakeable: Vec<usize>,
}

impl MiniLock {
    fn reset(&mut self) {
        self.holder = None;
        self.waiters.clear();
        self.wakeable.clear();
    }

    fn lock_free(&self) -> bool {
        self.holder.is_none()
    }

    fn acquire(&mut self, tid: usize) {
        assert_eq!(self.holder, None, "thread {tid} acquired a held lock");
        self.wakeable.retain(|&t| t != tid);
        self.holder = Some(tid);
    }

    fn unlock(&mut self, tid: usize) {
        assert_eq!(self.holder, Some(tid), "thread {tid} unlocked a lock it does not hold");
        self.holder = None;
    }

    fn wait(&mut self, tid: usize) {
        self.unlock(tid);
        self.waiters.push_back(tid);
    }

    fn notify_one(&mut self) {
        if let Some(t) = self.waiters.pop_front() {
            self.wakeable.push(t);
        }
    }

    fn notify_all(&mut self) {
        while let Some(t) = self.waiters.pop_front() {
            self.wakeable.push(t);
        }
    }

    /// Whether `tid` can make progress on a lock-acquiring step right now.
    fn acquirable(&self, tid: usize) -> bool {
        self.lock_free() && !self.waiters.contains(&tid)
    }

    /// Whether a parked `tid` has been notified and can re-acquire.
    fn rewakeable(&self, tid: usize) -> bool {
        self.lock_free() && self.wakeable.contains(&tid)
    }
}

// ---------------------------------------------------------------------------
// Model: the Shared::record seqlock vs. the server_stats snapshot reader
// ---------------------------------------------------------------------------
//
// Mirrors crates/runtime/src/serve.rs: `record` brackets a multi-counter
// update with two `record_epoch.fetch_add(1, AcqRel)` bumps (odd while
// mid-flight), and `server_stats` retries until it reads an even epoch that
// is unchanged across the whole snapshot. The counter group is reduced to
// two counters with a linear relation — `sessions += 1`, `frames += FRAMES`
// per record — so a torn snapshot is exactly one where the relation fails.

const FRAMES: u64 = 3;
/// Reader retry budget — small so the model stays finite; the real reader
/// uses 64 (serve.rs `server_stats`) and then degrades to an unvalidated
/// snapshot, which the model represents by simply giving up validated=false.
const READER_TRIES: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterPc {
    /// Serialized variant only: take the writer lock (the reports mutex).
    Lock,
    EpochOdd,
    AddSessions,
    AddFrames,
    EpochEven,
    /// Serialized variant only: drop the writer lock.
    Unlock,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderPc {
    LoadBefore,
    LoadSessions,
    LoadFrames,
    Validate,
    Done,
}

struct SeqlockModel {
    /// One `record` call per writer thread when `serialize_writers`;
    /// otherwise `records_per_writer` back-to-back records on one writer.
    writers: usize,
    records_per_writer: usize,
    /// The PR-8 fix (serve.rs `record`): writers serialize on the reports
    /// mutex. The broken variant (false) exists to prove the model's teeth.
    serialize_writers: bool,
    // Shared state.
    epoch: u64,
    sessions: u64,
    frames: u64,
    lock: MiniLock,
    // Per-writer machine.
    wpc: Vec<WriterPc>,
    wdone_records: Vec<usize>,
    // Reader machine (always thread id == writers).
    rpc: ReaderPc,
    r_before: u64,
    r_sessions: u64,
    r_frames: u64,
    r_tries: usize,
    /// Set instead of panicking so teeth tests can assert a tear WAS found.
    torn_seen: bool,
    validated_snapshots: u64,
}

impl SeqlockModel {
    fn new(writers: usize, records_per_writer: usize, serialize_writers: bool) -> SeqlockModel {
        SeqlockModel {
            writers,
            records_per_writer,
            serialize_writers,
            epoch: 0,
            sessions: 0,
            frames: 0,
            lock: MiniLock::default(),
            wpc: Vec::new(),
            wdone_records: Vec::new(),
            rpc: ReaderPc::LoadBefore,
            r_before: 0,
            r_sessions: 0,
            r_frames: 0,
            r_tries: 0,
            torn_seen: false,
            validated_snapshots: 0,
        }
    }

    fn writer_entry(&self) -> WriterPc {
        if self.serialize_writers {
            WriterPc::Lock
        } else {
            WriterPc::EpochOdd
        }
    }

    fn step_writer(&mut self, tid: usize) {
        self.wpc[tid] = match self.wpc[tid] {
            WriterPc::Lock => {
                self.lock.acquire(tid);
                WriterPc::EpochOdd
            }
            WriterPc::EpochOdd => {
                // serve.rs record: first `record_epoch.fetch_add(1, AcqRel)`.
                self.epoch += 1;
                WriterPc::AddSessions
            }
            WriterPc::AddSessions => {
                // serve.rs record: `sessions_completed.fetch_add(1, Relaxed)`.
                self.sessions += 1;
                WriterPc::AddFrames
            }
            WriterPc::AddFrames => {
                // serve.rs record: `frames_out.fetch_add(report.frames, ..)`.
                self.frames += FRAMES;
                WriterPc::EpochEven
            }
            WriterPc::EpochEven => {
                // serve.rs record: closing `record_epoch.fetch_add(1, AcqRel)`.
                self.epoch += 1;
                if self.serialize_writers {
                    WriterPc::Unlock
                } else {
                    self.wdone_records[tid] += 1;
                    if self.wdone_records[tid] < self.records_per_writer {
                        WriterPc::EpochOdd
                    } else {
                        WriterPc::Done
                    }
                }
            }
            WriterPc::Unlock => {
                self.lock.unlock(tid);
                self.wdone_records[tid] += 1;
                if self.wdone_records[tid] < self.records_per_writer {
                    WriterPc::Lock
                } else {
                    WriterPc::Done
                }
            }
            WriterPc::Done => unreachable!("stepped a finished writer"),
        };
    }

    fn step_reader(&mut self) {
        self.rpc = match self.rpc {
            ReaderPc::LoadBefore => {
                // serve.rs server_stats: `let before = record_epoch.load(Acquire)`.
                self.r_before = self.epoch;
                if self.r_before & 1 == 1 {
                    // Odd epoch: a record is mid-flight; spin (one retry).
                    self.r_tries += 1;
                    if self.r_tries >= READER_TRIES {
                        ReaderPc::Done
                    } else {
                        ReaderPc::LoadBefore
                    }
                } else {
                    ReaderPc::LoadSessions
                }
            }
            ReaderPc::LoadSessions => {
                // serve.rs server_stats_unsynced: per-field Acquire loads.
                self.r_sessions = self.sessions;
                ReaderPc::LoadFrames
            }
            ReaderPc::LoadFrames => {
                self.r_frames = self.frames;
                ReaderPc::Validate
            }
            ReaderPc::Validate => {
                // serve.rs server_stats: revalidate `record_epoch` unchanged.
                if self.epoch == self.r_before {
                    self.validated_snapshots += 1;
                    if self.r_frames != FRAMES * self.r_sessions {
                        self.torn_seen = true;
                    }
                    ReaderPc::Done
                } else {
                    self.r_tries += 1;
                    if self.r_tries >= READER_TRIES {
                        ReaderPc::Done
                    } else {
                        ReaderPc::LoadBefore
                    }
                }
            }
            ReaderPc::Done => unreachable!("stepped a finished reader"),
        };
    }
}

impl Model for SeqlockModel {
    fn reset(&mut self) {
        self.epoch = 0;
        self.sessions = 0;
        self.frames = 0;
        self.lock.reset();
        self.wpc = vec![self.writer_entry(); self.writers];
        self.wdone_records = vec![0; self.writers];
        self.rpc = ReaderPc::LoadBefore;
        self.r_before = 0;
        self.r_sessions = 0;
        self.r_frames = 0;
        self.r_tries = 0;
        // `torn_seen` / `validated_snapshots` accumulate across executions.
    }

    fn thread_count(&self) -> usize {
        self.writers + 1
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid < self.writers {
            self.wpc[tid] == WriterPc::Done
        } else {
            self.rpc == ReaderPc::Done
        }
    }

    fn is_enabled(&self, tid: usize) -> bool {
        if tid < self.writers && self.wpc[tid] == WriterPc::Lock {
            return self.lock.acquirable(tid);
        }
        true
    }

    fn step(&mut self, tid: usize) {
        if tid < self.writers {
            self.step_writer(tid);
        } else {
            self.step_reader();
        }
    }

    fn check(&self) {
        // The writer-side invariant that makes parity validation sound: the
        // epoch is odd exactly while some writer is inside the bracket.
        if self.serialize_writers || self.writers * self.records_per_writer == 1 {
            let mid_flight = self
                .wpc
                .iter()
                .any(|&pc| matches!(pc, WriterPc::AddSessions | WriterPc::AddFrames));
            if mid_flight {
                assert_eq!(self.epoch & 1, 1, "writer mid-bracket but epoch even");
            }
            if !self.torn_seen {
                // No validated tear may ever occur in the sound variants.
            }
        }
    }

    fn at_end(&self) {
        assert_eq!(self.frames, FRAMES * self.sessions, "writers drained but totals diverged");
    }
}

/// Single writer (two back-to-back records) vs. one snapshot reader: the
/// protocol the reactor mode runs (`record` is only called from the event
/// loop there). Every validated snapshot must be consistent.
#[test]
fn seqlock_single_writer_never_torn() {
    let mut m = SeqlockModel::new(1, 2, false);
    let explored = explore(&mut m, usize::MAX);
    assert!(!m.torn_seen, "validated snapshot was torn under a single writer");
    assert!(m.validated_snapshots > 0, "reader never validated a snapshot");
    assert!(
        explored.executions >= 1000,
        "state space collapsed: only {} interleavings",
        explored.executions
    );
}

/// Teeth: two unserialized writers break epoch parity (both bump the epoch
/// to an even value while counters are still mid-update), so some
/// interleaving yields a *validated* torn snapshot. This is the bug the
/// PR-8 audit found in thread-per-connection mode; the exhaustive search
/// must find it, proving the harness can catch the regression.
#[test]
fn seqlock_two_writers_unserialized_tears() {
    let mut m = SeqlockModel::new(2, 1, false);
    let explored = explore(&mut m, usize::MAX);
    assert!(
        m.torn_seen,
        "expected the exhaustive search to find a torn validated snapshot \
         with unserialized writers ({} interleavings searched)",
        explored.executions
    );
}

/// The shipped fix: writers serialize on the reports mutex (taken before
/// the first epoch bump in `Shared::record`), readers stay lock-free. No
/// interleaving of two writers and a reader validates a torn snapshot.
#[test]
fn seqlock_two_writers_serialized_never_torn() {
    let mut m = SeqlockModel::new(2, 1, true);
    let explored = explore(&mut m, usize::MAX);
    assert!(!m.torn_seen, "validated snapshot was torn despite writer serialization");
    assert!(m.validated_snapshots > 0, "reader never validated a snapshot");
    assert!(
        explored.executions >= 1000,
        "state space collapsed: only {} interleavings",
        explored.executions
    );
}

// ---------------------------------------------------------------------------
// Model: Histogram record vs. snapshot (telemetry.rs)
// ---------------------------------------------------------------------------
//
// Mirrors crates/runtime/src/telemetry.rs: `record` does three independent
// relaxed adds (bucket, sum, count) and `snapshot` reads buckets one by one
// then clamps `count` up to the bucket total. The invariants: a snapshot's
// count never undercounts its own buckets (else quantile() would index past
// the distribution), and totals are exactly conserved once writers drain.

struct HistogramModel {
    /// (bucket index, value) recorded by each writer thread.
    records: Vec<(usize, u64)>,
    buckets: [u64; 2],
    sum: u64,
    count: u64,
    /// Writer pc: 0 bucket add, 1 sum add, 2 count add, 3 done.
    wpc: Vec<u8>,
    /// Reader pc: 0..=1 read bucket i, 2 read count, 3 clamp+check, 4 done.
    rpc: u8,
    r_buckets: [u64; 2],
    r_count: u64,
}

impl HistogramModel {
    fn new(records: Vec<(usize, u64)>) -> HistogramModel {
        HistogramModel {
            records,
            buckets: [0; 2],
            sum: 0,
            count: 0,
            wpc: Vec::new(),
            rpc: 0,
            r_buckets: [0; 2],
            r_count: 0,
        }
    }
}

impl Model for HistogramModel {
    fn reset(&mut self) {
        self.buckets = [0; 2];
        self.sum = 0;
        self.count = 0;
        self.wpc = vec![0; self.records.len()];
        self.rpc = 0;
        self.r_buckets = [0; 2];
        self.r_count = 0;
    }

    fn thread_count(&self) -> usize {
        self.records.len() + 1
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid < self.records.len() {
            self.wpc[tid] == 3
        } else {
            self.rpc == 4
        }
    }

    fn is_enabled(&self, _tid: usize) -> bool {
        true
    }

    fn step(&mut self, tid: usize) {
        if tid < self.records.len() {
            let (bucket, value) = self.records[tid];
            match self.wpc[tid] {
                // telemetry.rs record: `buckets[i].fetch_add(1, Relaxed)`.
                0 => self.buckets[bucket] += 1,
                // telemetry.rs record: `sum.fetch_add(value, Relaxed)`.
                1 => self.sum += value,
                // telemetry.rs record: `count.fetch_add(1, Relaxed)`.
                2 => self.count += 1,
                _ => unreachable!(),
            }
            self.wpc[tid] += 1;
        } else {
            match self.rpc {
                // telemetry.rs snapshot: per-bucket relaxed loads.
                i @ (0 | 1) => self.r_buckets[i as usize] = self.buckets[i as usize],
                2 => self.r_count = self.count,
                3 => {
                    // telemetry.rs snapshot: `count.max(bucket_total)`.
                    let bucket_total: u64 = self.r_buckets.iter().sum();
                    let clamped = self.r_count.max(bucket_total);
                    assert!(clamped >= bucket_total, "snapshot undercounts its own buckets");
                    // quantile()'s rank arithmetic walks `buckets` summing
                    // until it covers `rank <= count`; count >= bucket_total
                    // guarantees termination inside the array.
                    assert!(
                        clamped <= self.records.len() as u64,
                        "snapshot invented observations: {} > {}",
                        clamped,
                        self.records.len()
                    );
                }
                _ => unreachable!(),
            }
            self.rpc += 1;
        }
    }

    fn check(&self) {}

    fn at_end(&self) {
        // Conservation at quiescence.
        let total: u64 = self.buckets.iter().sum();
        assert_eq!(total, self.records.len() as u64);
        assert_eq!(self.count, self.records.len() as u64);
        let expect_sum: u64 = self.records.iter().map(|&(_, v)| v).sum();
        assert_eq!(self.sum, expect_sum);
    }
}

/// Two concurrent `Histogram::record`s against one `snapshot`: the
/// snapshot may be stale but never inconsistent in the ways `quantile` and
/// `mean` rely on.
#[test]
fn histogram_snapshot_conserves_counts() {
    let mut m = HistogramModel::new(vec![(0, 1), (1, 5)]);
    let explored = explore(&mut m, usize::MAX);
    assert!(
        explored.executions >= 1000,
        "state space collapsed: only {} interleavings",
        explored.executions
    );
}

/// Merge is plain sequential arithmetic over snapshots — checked directly
/// against the real type rather than a model.
#[test]
fn histogram_merge_conserves_counts() {
    use ppt_runtime::telemetry::{Histogram, HistogramSnapshot};
    let a = Histogram::default();
    let b = Histogram::default();
    for v in [0u64, 1, 2, 1000, u64::MAX] {
        a.record(v);
    }
    for v in [3u64, 7] {
        b.record(v);
    }
    let mut merged = HistogramSnapshot::default();
    merged.merge(&a.snapshot());
    merged.merge(&b.snapshot());
    assert_eq!(merged.count, 7);
    let bucket_total: u64 = merged.buckets.iter().sum();
    assert_eq!(bucket_total, 7);
    assert_eq!(merged.sum, 0u64.wrapping_add(1 + 2 + 1000 + 3 + 7).wrapping_add(u64::MAX));
}

// ---------------------------------------------------------------------------
// Model: the Gate connection-admission credit protocol (serve.rs)
// ---------------------------------------------------------------------------
//
// Mirrors crates/runtime/src/serve.rs `Gate`: a mutex-guarded slot count, a
// condvar, and a `closed` flag. `acquire` loops {closed? -> false; slots>0?
// -> take one; else wait}; `release` adds a slot back and notifies one;
// `close` sets the flag and notifies all. The invariants: the slot count
// never exceeds capacity (a double-release would), successful acquires and
// releases balance, a `false` acquire never releases, and — because the
// explorer treats a stuck schedule as failure — no interleaving strands a
// sleeper after `close` (the lost-wakeup class of bug).

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GatePc {
    /// acquire: take the mutex.
    AcqLock,
    /// acquire: the guarded check-closed / take-slot / wait decision.
    AcqDecide,
    /// Parked in `cv.wait`; re-acquires the lock when notified.
    AcqWaiting,
    /// Critical section: holds one slot, will release it.
    HoldSlot,
    /// release: take the mutex, add the slot back, notify one.
    Release,
    Done,
}

struct GateModel {
    capacity: usize,
    acquirers: usize,
    /// Inject a double-release in thread 0 (teeth test).
    double_release: bool,
    slots: usize,
    closed: bool,
    lock: MiniLock,
    pc: Vec<GatePc>,
    acquired_ok: Vec<bool>,
    released: Vec<usize>,
    /// Closer pc: 0 set closed + notify all (one guarded step), 1 done.
    closer_pc: u8,
    /// Accumulated across executions: at least one schedule must see a
    /// thread actually park, or the wait path was never exercised.
    ever_waited: bool,
    ever_rejected: bool,
}

impl GateModel {
    fn new(capacity: usize, acquirers: usize, double_release: bool) -> GateModel {
        GateModel {
            capacity,
            acquirers,
            double_release,
            slots: capacity,
            closed: false,
            lock: MiniLock::default(),
            pc: Vec::new(),
            acquired_ok: Vec::new(),
            released: Vec::new(),
            closer_pc: 0,
            ever_waited: false,
            ever_rejected: false,
        }
    }

    fn closer_tid(&self) -> usize {
        self.acquirers
    }
}

impl Model for GateModel {
    fn reset(&mut self) {
        self.slots = self.capacity;
        self.closed = false;
        self.lock.reset();
        self.pc = vec![GatePc::AcqLock; self.acquirers];
        self.acquired_ok = vec![false; self.acquirers];
        self.released = vec![0; self.acquirers];
        self.closer_pc = 0;
    }

    fn thread_count(&self) -> usize {
        self.acquirers + 1
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid == self.closer_tid() {
            self.closer_pc == 1
        } else {
            self.pc[tid] == GatePc::Done
        }
    }

    fn is_enabled(&self, tid: usize) -> bool {
        if tid == self.closer_tid() {
            return self.lock.lock_free();
        }
        match self.pc[tid] {
            GatePc::AcqLock | GatePc::Release => self.lock.acquirable(tid),
            GatePc::AcqWaiting => self.lock.rewakeable(tid),
            // AcqDecide/HoldSlot happen while holding (or without) the lock.
            GatePc::AcqDecide => self.lock.holder == Some(tid),
            GatePc::HoldSlot => true,
            GatePc::Done => false,
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == self.closer_tid() {
            // serve.rs Gate::close: `closed.store(true, SeqCst)` +
            // `cv.notify_all()`. The real store happens outside the mutex;
            // the model takes the free lock for one step so the wake and the
            // flag are one action — the waiters re-check `closed` under the
            // lock either way, which is what the invariant relies on.
            self.lock.acquire(tid);
            self.closed = true;
            self.lock.notify_all();
            self.lock.unlock(tid);
            self.closer_pc = 1;
            return;
        }
        self.pc[tid] = match self.pc[tid] {
            GatePc::AcqLock => {
                // serve.rs Gate::acquire: `lock_recover(&self.slots)`.
                self.lock.acquire(tid);
                GatePc::AcqDecide
            }
            GatePc::AcqWaiting => {
                // Condvar wakeup: re-acquire the lock, loop to the re-check.
                self.lock.acquire(tid);
                GatePc::AcqDecide
            }
            GatePc::AcqDecide => {
                if self.closed {
                    // serve.rs Gate::acquire: `closed` observed -> false.
                    self.lock.unlock(tid);
                    self.ever_rejected = true;
                    GatePc::Done
                } else if self.slots > 0 {
                    // serve.rs Gate::acquire: `*slots -= 1; return true`.
                    self.slots -= 1;
                    self.acquired_ok[tid] = true;
                    self.lock.unlock(tid);
                    GatePc::HoldSlot
                } else {
                    // serve.rs Gate::acquire: `wait_recover(&self.cv, slots)`.
                    self.lock.wait(tid);
                    self.ever_waited = true;
                    GatePc::AcqWaiting
                }
            }
            GatePc::HoldSlot => GatePc::Release,
            GatePc::Release => {
                // serve.rs Gate::release: `*slots += 1; cv.notify_one()`.
                self.lock.acquire(tid);
                self.slots += 1;
                self.released[tid] += 1;
                self.lock.notify_one();
                self.lock.unlock(tid);
                if self.double_release && tid == 0 && self.released[tid] == 1 {
                    GatePc::Release
                } else {
                    GatePc::Done
                }
            }
            GatePc::Done => unreachable!("stepped a finished acquirer"),
        };
    }

    fn check(&self) {
        assert!(
            self.slots <= self.capacity,
            "slot over-release: {} slots with capacity {}",
            self.slots,
            self.capacity
        );
        // Credit conservation: every missing slot is held by exactly one
        // thread between its successful acquire and its release.
        let held: usize = (0..self.acquirers)
            .filter(|&t| {
                self.acquired_ok[t] && matches!(self.pc[t], GatePc::HoldSlot | GatePc::Release)
            })
            .count();
        assert_eq!(
            self.capacity - self.slots,
            held,
            "credit imbalance: {} outstanding vs {} holders",
            self.capacity - self.slots,
            held
        );
    }

    fn at_end(&self) {
        assert_eq!(self.slots, self.capacity, "slots not restored at quiescence");
        for t in 0..self.acquirers {
            if self.acquired_ok[t] {
                assert_eq!(self.released[t], 1, "holder {t} released {} times", self.released[t]);
            } else {
                assert_eq!(self.released[t], 0, "rejected thread {t} released a slot");
            }
        }
    }
}

/// Three acquirers racing for one slot while the server closes: slots are
/// conserved in every interleaving, no sleeper is stranded (the explorer's
/// deadlock check), and both the wait path and the closed-rejection path
/// are actually exercised somewhere in the state space.
#[test]
fn gate_credits_conserved_under_close() {
    let mut m = GateModel::new(1, 3, false);
    let explored = explore(&mut m, usize::MAX);
    assert!(m.ever_waited, "no schedule ever parked on the condvar");
    assert!(m.ever_rejected, "no schedule ever observed the closed gate");
    assert!(
        explored.executions >= 1000,
        "state space collapsed: only {} interleavings",
        explored.executions
    );
}

/// Two slots, three acquirers, bounded preemption (the bigger space): the
/// conservation invariant holds on every explored schedule.
#[test]
fn gate_two_slots_bounded_preemption() {
    let mut m = GateModel::new(2, 3, false);
    let explored = explore(&mut m, 3);
    assert!(
        explored.executions >= 1000,
        "state space collapsed: only {} interleavings",
        explored.executions
    );
}

/// Teeth: a client that releases twice must trip the conservation checks —
/// proving the invariant actually guards against double-freeing a slot.
#[test]
fn gate_double_release_is_caught() {
    let mut m = GateModel::new(1, 2, true);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore(&mut m, usize::MAX);
    }));
    assert!(caught.is_err(), "double-release survived every invariant check");
}

// ---------------------------------------------------------------------------
// Model: the delivering-flag drop-accounting race (session.rs / reactor.rs)
// ---------------------------------------------------------------------------
//
// Mirrors `joiner_guarded` (session.rs) racing the joiner panic path
// (reactor.rs `run_join_task`): both sides `delivering.swap(false, AcqRel)`
// and only the side that saw `true` counts the in-flight delivery as
// dropped. Exactly one side must win, in every interleaving.

struct DeliveringModel {
    flag: bool,
    dropped: u64,
    /// Per racer: 0 = about to swap, 1 = saw `old`, may increment, 2 done.
    pc: Vec<u8>,
    saw_true: Vec<bool>,
}

impl Model for DeliveringModel {
    fn reset(&mut self) {
        self.flag = true;
        self.dropped = 0;
        self.pc = vec![0; 2];
        self.saw_true = vec![false; 2];
    }

    fn thread_count(&self) -> usize {
        2
    }

    fn is_done(&self, tid: usize) -> bool {
        self.pc[tid] == 2
    }

    fn is_enabled(&self, _tid: usize) -> bool {
        true
    }

    fn step(&mut self, tid: usize) {
        match self.pc[tid] {
            0 => {
                // session.rs / reactor.rs: `delivering.swap(false, AcqRel)` —
                // one atomic action; the AcqRel pairing is what entitles the
                // winner to read the state published before the flag.
                self.saw_true[tid] = self.flag;
                self.flag = false;
                self.pc[tid] = 1;
            }
            1 => {
                if self.saw_true[tid] {
                    // `dropped_matches.fetch_add(1, Relaxed)` — only the winner.
                    self.dropped += 1;
                }
                self.pc[tid] = 2;
            }
            _ => unreachable!(),
        }
    }

    fn check(&self) {
        assert!(self.dropped <= 1, "both racers accounted the same delivery");
    }

    fn at_end(&self) {
        assert_eq!(self.dropped, 1, "nobody accounted the in-flight delivery");
        assert!(self.saw_true.iter().filter(|&&s| s).count() == 1, "swap not atomic");
    }
}

/// The guard/panic-path race over `delivering`: exactly one side accounts
/// the dropped delivery in every interleaving.
#[test]
fn delivering_flag_accounts_exactly_once() {
    let mut m = DeliveringModel { flag: true, dropped: 0, pc: Vec::new(), saw_true: Vec::new() };
    let explored = explore(&mut m, usize::MAX);
    assert_eq!(explored.max_depth, 4);
    assert!(explored.executions >= 2, "both orders must be explored");
}

// ---------------------------------------------------------------------------
// Explorer self-tests
// ---------------------------------------------------------------------------

/// Two independent 2-step threads have exactly C(4,2) = 6 interleavings —
/// pins the explorer's enumeration against off-by-one regressions.
#[test]
fn explorer_enumerates_exact_interleaving_count() {
    struct TwoByTwo {
        pc: [u8; 2],
    }
    impl Model for TwoByTwo {
        fn reset(&mut self) {
            self.pc = [0; 2];
        }
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.pc[tid] == 2
        }
        fn is_enabled(&self, _tid: usize) -> bool {
            true
        }
        fn step(&mut self, tid: usize) {
            self.pc[tid] += 1;
        }
        fn check(&self) {}
    }
    let mut m = TwoByTwo { pc: [0; 2] };
    let explored = explore(&mut m, usize::MAX);
    assert_eq!(explored.executions, 6);
    assert_eq!(explored.max_depth, 4);
}

/// The deadlock detector fires on a thread that blocks forever.
#[test]
fn explorer_detects_deadlock() {
    struct Stuck;
    impl Model for Stuck {
        fn reset(&mut self) {}
        fn thread_count(&self) -> usize {
            1
        }
        fn is_done(&self, _tid: usize) -> bool {
            false
        }
        fn is_enabled(&self, _tid: usize) -> bool {
            false
        }
        fn step(&mut self, _tid: usize) {}
        fn check(&self) {}
    }
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore(&mut Stuck, usize::MAX);
    }));
    assert!(caught.is_err(), "deadlock went undetected");
}
