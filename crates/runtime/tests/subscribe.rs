//! Subscription-layer equivalence: N subscribers sharing one stream must be
//! indistinguishable — match sets, attribution, payload bytes — from N
//! independent engines each running its own session over the same bytes, and
//! one subscriber's misbehaviour (slow, panicking, over-budget) must never
//! leak into its co-subscribers.

use ppt_core::{Engine, EngineConfig};
use ppt_datasets::{TreebankConfig, XmarkConfig};
use ppt_runtime::subscribe::{SubscriberDelivery, SubscriberSink};
use ppt_runtime::{
    AttachError, BorrowedMatch, CollectPayloadSink, CollectSubscriber, MaterializedMatch, Runtime,
    SessionOptions, SubscriberReport,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const CHUNK: usize = 2 << 10;
const WINDOW: usize = 8 << 10;
const RETAIN: usize = 8 << 20;
const BUDGET: usize = 4096;

/// Per-local-query sorted `(start, end, payload)` tuples.
type PerQuery = Vec<Vec<(usize, usize, Option<Vec<u8>>)>>;

fn config() -> EngineConfig {
    EngineConfig { chunk_size: CHUNK, window_size: WINDOW, ..EngineConfig::default() }
}

fn opts() -> SessionOptions {
    SessionOptions::new().stream_id(7).retain_bytes(RETAIN)
}

/// Runs `queries` as a private engine over `data` through the same runtime
/// machinery (materialized session, same chunk/window sizes) and returns
/// per-local-query sorted `(start, end, payload)` tuples.
fn independent(runtime: &Runtime, data: &[u8], queries: &[&str]) -> PerQuery {
    let engine = Arc::new(
        Engine::builder()
            .add_queries(queries)
            .unwrap()
            .chunk_size(CHUNK)
            .window_size(WINDOW)
            .resolve_spans(true)
            .build()
            .unwrap(),
    );
    let mut sink = CollectPayloadSink::new();
    runtime.process_materialized(engine, &opts(), data, &mut sink).unwrap();
    let mut per_query: PerQuery = vec![Vec::new(); queries.len()];
    for m in sink.matches {
        per_query[m.m.query].push((m.m.start, m.m.end, m.payload));
    }
    for v in &mut per_query {
        v.sort_unstable();
    }
    per_query
}

/// Collapses one subscriber's collected matches into the same shape.
fn collected(matches: &Mutex<Vec<MaterializedMatch>>, query_count: usize) -> PerQuery {
    let mut per_query: PerQuery = vec![Vec::new(); query_count];
    for m in matches.lock().unwrap().iter() {
        per_query[m.m.query].push((m.m.start, m.m.end, m.payload.clone()));
    }
    for v in &mut per_query {
        v.sort_unstable();
    }
    per_query
}

/// Feeds a whole document through a shared stream in server-ish pieces.
fn feed_all(handle: &mut ppt_runtime::SharedStreamHandle, data: &[u8]) {
    for piece in data.chunks(1777) {
        handle.feed(piece);
    }
}

#[test]
fn shared_stream_is_byte_identical_to_independent_engines() {
    let data = TreebankConfig::with_target_size(192 << 10).generate();
    // Overlapping query sets: q1 appears in all three, q2 in two, and one
    // subscriber registers a query twice under two local ids.
    let subs: Vec<Vec<&str>> = vec![
        vec!["//np//nn", "//vp/vb"],
        vec!["//vp/vb", "//s//pp", "//vp/vb"],
        vec!["//np//nn", "//pp/in"],
    ];

    let runtime = Runtime::builder().workers(3).build();
    let first = CollectSubscriber::new();
    let (m0, r0) = first.handles();
    let mut handle =
        runtime.open_shared_stream(&opts(), config(), BUDGET, &subs[0], Box::new(first)).unwrap();
    let control = handle.control();
    let mut handles = vec![(m0, r0)];
    for sub in &subs[1..] {
        let c = CollectSubscriber::new();
        handles.push(c.handles());
        control.attach(sub, Box::new(c)).unwrap();
    }
    assert_eq!(control.subscriber_count(), 3);
    // The merged automaton holds the dedup'd union: 4 distinct queries.
    assert_eq!(control.merged_query_count(), 4);

    feed_all(&mut handle, &data);
    let report = handle.finish();
    assert!(report.error.is_none());

    for (sub, (matches, report)) in subs.iter().zip(&handles) {
        let expected = independent(&runtime, &data, sub);
        let got = collected(matches, sub.len());
        assert_eq!(got, expected, "subscriber {sub:?} diverged from a private engine");
        let report = report.lock().unwrap().clone().expect("end() delivered a report");
        assert!(report.error.is_none());
        let expected_counts: Vec<usize> = expected.iter().map(Vec::len).collect();
        assert_eq!(report.match_counts, expected_counts);
        assert_eq!(report.delivered as usize, expected_counts.iter().sum::<usize>());
        assert_eq!(report.dropped, 0);
    }
    assert!(control.is_ended());
    assert!(matches!(
        control.attach(&["//a"], Box::new(CollectSubscriber::new())),
        Err(AttachError::Ended)
    ));
}

#[test]
fn predicated_and_text_queries_fan_out_identically() {
    let data = XmarkConfig::with_target_size(192 << 10).generate();
    let subs: Vec<Vec<&str>> =
        vec![vec!["/s/cs/c[a/d/t/k]/d", "//c//k"], vec!["//c//k", "//i[@f]"]];
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let h0 = first.handles();
    let mut handle =
        runtime.open_shared_stream(&opts(), config(), BUDGET, &subs[0], Box::new(first)).unwrap();
    let second = CollectSubscriber::new();
    let h1 = second.handles();
    handle.control().attach(&subs[1], Box::new(second)).unwrap();

    feed_all(&mut handle, &data);
    let report = handle.finish();
    assert!(report.error.is_none());

    for (sub, (matches, _)) in subs.iter().zip([&h0, &h1]) {
        let expected = independent(&runtime, &data, sub);
        assert_eq!(collected(matches, sub.len()), expected, "subscriber {sub:?} diverged");
    }
}

#[test]
fn mid_stream_attach_sees_exactly_the_suffix() {
    let data = TreebankConfig::with_target_size(128 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let (m0, _) = first.handles();
    let mut handle = runtime
        .open_shared_stream(&opts(), config(), BUDGET, &["//np//nn"], Box::new(first))
        .unwrap();
    let control = handle.control();

    let split = data.len() / 2;
    handle.feed(&data[..split]);
    // Attach a *novel* query mid-stream: effective at the next chunk
    // boundary, somewhere at or after `split` minus whatever is still queued.
    let late = CollectSubscriber::new();
    let (m1, r1) = late.handles();
    control.attach(&["//vp/vb"], Box::new(late)).unwrap();
    handle.feed(&data[split..]);
    let report = handle.finish();
    assert!(report.error.is_none());

    // The original subscriber is untouched by the swap: full-stream results.
    assert_eq!(collected(&m0, 1), independent(&runtime, &data, &["//np//nn"]));

    // The late subscriber sees a suffix: a subset of the full-stream result
    // containing at least every match that opens after the attach point.
    let full = independent(&runtime, &data, &["//vp/vb"]).remove(0);
    let got = collected(&m1, 1).remove(0);
    let mut iter = full.iter();
    for m in &got {
        assert!(
            iter.any(|f| f == m),
            "late subscriber saw a match a private engine never produced: {:?}",
            (m.0, m.1)
        );
    }
    for m in full.iter().filter(|m| m.0 >= split) {
        assert!(got.contains(m), "late subscriber missed a post-attach match at {}", m.0);
    }
    let report = r1.lock().unwrap().clone().unwrap();
    assert_eq!(report.delivered as usize, got.len());
    assert_eq!(report.match_counts, vec![got.len()]);
}

#[test]
fn covered_query_attach_is_attribution_only() {
    let data = TreebankConfig::with_target_size(96 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let mut handle = runtime
        .open_shared_stream(&opts(), config(), BUDGET, &["//np//nn"], Box::new(first))
        .unwrap();
    let control = handle.control();
    let states_before = control.automaton_states();

    handle.feed(&data[..data.len() / 2]);
    // Same query text: no recompile, no swap — and because the automaton
    // already evaluates it, the late subscriber still gets *full-stream*
    // coverage of everything delivered after its attach... which for a
    // covered attach means every match the joiner has not yet emitted.
    let twin = CollectSubscriber::new();
    let (m1, _) = twin.handles();
    control.attach(&["//np//nn"], Box::new(twin)).unwrap();
    assert_eq!(control.merged_query_count(), 1);
    assert_eq!(control.automaton_states(), states_before);
    handle.feed(&data[data.len() / 2..]);
    handle.finish();

    // Subset of the private engine's result (the prefix already emitted
    // before the attach is the only thing it can miss).
    let full = independent(&runtime, &data, &["//np//nn"]).remove(0);
    let got = collected(&m1, 1).remove(0);
    for m in &got {
        assert!(full.contains(m));
    }
}

#[test]
fn detach_stops_delivery_and_reports() {
    let data = TreebankConfig::with_target_size(96 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let (m0, _) = first.handles();
    let mut handle = runtime
        .open_shared_stream(&opts(), config(), BUDGET, &["//np//nn"], Box::new(first))
        .unwrap();
    let control = handle.control();
    let second = CollectSubscriber::new();
    let (m1, r1) = second.handles();
    let id = control.attach(&["//np//nn", "//vp/vb"], Box::new(second)).unwrap();
    assert_eq!(control.subscriber_count(), 2);

    handle.feed(&data[..data.len() / 2]);
    let report = control.detach(id).expect("subscriber was live");
    assert_eq!(control.subscriber_count(), 1);
    assert!(report.error.is_none());
    let seen_at_detach = m1.lock().unwrap().len();
    assert_eq!(report.delivered as usize, seen_at_detach);
    // end() fired exactly once, with the same accounting.
    assert_eq!(r1.lock().unwrap().clone().unwrap().delivered, report.delivered);
    // Detaching again is a no-op.
    assert!(control.detach(id).is_none());

    handle.feed(&data[data.len() / 2..]);
    handle.finish();
    // Nothing arrived after the detach.
    assert_eq!(m1.lock().unwrap().len(), seen_at_detach);
    // The survivor still matches a private engine exactly.
    assert_eq!(collected(&m0, 1), independent(&runtime, &data, &["//np//nn"]));
}

/// A sink that panics on its first delivery.
#[derive(Debug)]
struct PanicSink {
    report: Arc<Mutex<Option<SubscriberReport>>>,
}

impl SubscriberSink for PanicSink {
    fn deliver(&mut self, _m: BorrowedMatch) -> SubscriberDelivery {
        panic!("subscriber exploded");
    }
    fn end(&mut self, report: SubscriberReport) {
        *self.report.lock().unwrap() = Some(report);
    }
}

#[test]
fn panicking_subscriber_poisons_only_itself() {
    let data = TreebankConfig::with_target_size(96 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let (m0, r0) = first.handles();
    let mut handle = runtime
        .open_shared_stream(&opts(), config(), BUDGET, &["//np//nn"], Box::new(first))
        .unwrap();
    let bomb_report: Arc<Mutex<Option<SubscriberReport>>> = Arc::default();
    handle
        .control()
        .attach(&["//np//nn"], Box::new(PanicSink { report: Arc::clone(&bomb_report) }))
        .unwrap();

    feed_all(&mut handle, &data);
    let report = handle.finish();
    // The stream itself is healthy...
    assert!(report.error.is_none());
    // ...the well-behaved co-subscriber got everything...
    assert_eq!(collected(&m0, 1), independent(&runtime, &data, &["//np//nn"]));
    assert!(r0.lock().unwrap().clone().unwrap().error.is_none());
    // ...and the bomb's own report carries its panic.
    let bomb = bomb_report.lock().unwrap().clone().expect("dead subscriber still gets end()");
    let err = bomb.error.expect("panic recorded");
    assert!(err.contains("subscriber exploded"), "unexpected error: {err}");
}

/// A sink that always sheds load.
#[derive(Debug)]
struct DropSink {
    report: Arc<Mutex<Option<SubscriberReport>>>,
}

impl SubscriberSink for DropSink {
    fn deliver(&mut self, _m: BorrowedMatch) -> SubscriberDelivery {
        SubscriberDelivery::Dropped
    }
    fn end(&mut self, report: SubscriberReport) {
        *self.report.lock().unwrap() = Some(report);
    }
}

#[test]
fn slow_subscriber_sheds_without_stalling_the_stream() {
    let data = TreebankConfig::with_target_size(96 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let (m0, _) = first.handles();
    let mut handle = runtime
        .open_shared_stream(&opts(), config(), BUDGET, &["//np//nn"], Box::new(first))
        .unwrap();
    let slow_report: Arc<Mutex<Option<SubscriberReport>>> = Arc::default();
    handle
        .control()
        .attach(&["//np//nn"], Box::new(DropSink { report: Arc::clone(&slow_report) }))
        .unwrap();

    feed_all(&mut handle, &data);
    let report = handle.finish();
    assert!(report.error.is_none());

    let expected = independent(&runtime, &data, &["//np//nn"]);
    assert_eq!(collected(&m0, 1), expected);
    let slow = slow_report.lock().unwrap().clone().unwrap();
    assert_eq!(slow.delivered, 0);
    assert_eq!(slow.dropped as usize, expected[0].len());
    assert!(slow.error.is_none(), "shedding is not an error");
}

#[test]
fn over_budget_merge_is_refused_without_harming_the_stream() {
    let data = TreebankConfig::with_target_size(64 << 10).generate();
    let runtime = Runtime::builder().workers(2).build();
    let first = CollectSubscriber::new();
    let (m0, _) = first.handles();
    // A tight budget the base query fits under.
    let mut handle =
        runtime.open_shared_stream(&opts(), config(), 64, &["//np//nn"], Box::new(first)).unwrap();
    let control = handle.control();
    let states = control.automaton_states();
    let queries_before = control.merged_query_count();

    // Descendant-chained query sets explode under subset construction; the
    // merge must be refused, not degrade the stream.
    let exploding: Vec<String> = (0..12).map(|i| format!("//a{i}//b{i}//c{i}")).collect();
    let err = control
        .attach(&exploding, Box::new(CollectSubscriber::new()))
        .expect_err("merge must exceed a 64-state budget");
    assert!(matches!(err, AttachError::Budget(_)), "got {err}");
    // Nothing changed for the incumbents.
    assert_eq!(control.merged_query_count(), queries_before);
    assert_eq!(control.automaton_states(), states);
    assert_eq!(control.subscriber_count(), 1);

    feed_all(&mut handle, &data);
    assert!(handle.finish().error.is_none());
    assert_eq!(collected(&m0, 1), independent(&runtime, &data, &["//np//nn"]));

    // And a malformed query is a structured parse error, same contract.
    let runtime2 = Runtime::builder().workers(1).build();
    assert!(matches!(
        runtime2.open_shared_stream(
            &opts(),
            config(),
            BUDGET,
            &["///"],
            Box::new(CollectSubscriber::new())
        ),
        Err(AttachError::Query(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random overlapping query sets, random subscriber counts, subscribers
    /// attaching up-front and detaching mid-stream: every subscriber that
    /// stays to the end is byte-identical to a private engine; every
    /// detached subscriber saw a prefix of its private engine's result.
    #[test]
    fn random_subscriber_mix_equals_private_engines(
        seed in 0u64..1 << 32,
        n_subs in 2usize..6,
        detach_idx in 0usize..6,
    ) {
        const POOL: [&str; 6] =
            ["//np//nn", "//vp/vb", "//s//pp", "//pp/in", "//np[nn]/dt", "//s/vp"];
        let data = TreebankConfig::with_target_size(64 << 10).generate();
        let runtime = Runtime::builder().workers(2).build();

        // Deterministic per-case query sets out of the pool.
        let mut pick = seed;
        let mut subs: Vec<Vec<&str>> = Vec::new();
        for _ in 0..n_subs {
            let mut set = Vec::new();
            for q in POOL {
                pick = pick.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if pick >> 33 & 1 == 1 {
                    set.push(q);
                }
            }
            if set.is_empty() {
                set.push(POOL[(pick >> 7) as usize % POOL.len()]);
            }
            subs.push(set);
        }

        let first = CollectSubscriber::new();
        let mut handles = vec![first.handles()];
        let mut handle = runtime
            .open_shared_stream(&opts(), config(), BUDGET, &subs[0], Box::new(first))
            .unwrap();
        let control = handle.control();
        let mut ids = vec![0];
        for sub in &subs[1..] {
            let c = CollectSubscriber::new();
            handles.push(c.handles());
            ids.push(control.attach(sub, Box::new(c)).unwrap());
        }

        let split = data.len() / 2;
        handle.feed(&data[..split]);
        let detached = detach_idx < n_subs && detach_idx > 0;
        if detached {
            control.detach(ids[detach_idx]).unwrap();
        }
        handle.feed(&data[split..]);
        let report = handle.finish();
        prop_assert!(report.error.is_none());

        for (i, (sub, (matches, _))) in subs.iter().zip(&handles).enumerate() {
            let expected = independent(&runtime, &data, sub);
            let got = collected(matches, sub.len());
            if detached && i == detach_idx {
                // A detached subscriber saw a prefix: per query, a prefix of
                // the private engine's emission-ordered stream — sorted here,
                // so subset is the robust check.
                for (g, e) in got.iter().zip(&expected) {
                    for m in g {
                        prop_assert!(e.contains(m));
                    }
                }
            } else {
                prop_assert_eq!(&got, &expected, "subscriber {} ({:?}) diverged", i, sub);
            }
        }
    }
}
