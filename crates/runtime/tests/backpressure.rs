//! Backpressure: a slow sink must stall the whole pipeline — bounded queues
//! everywhere, the feeder blocked, and not a single match lost.

use ppt_core::Engine;
use ppt_runtime::{OnlineMatch, Runtime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A sink that dawdles on every match.
struct SlowSink {
    delay: Duration,
    seen: Arc<AtomicU64>,
}

impl ppt_runtime::MatchSink for SlowSink {
    fn on_match(&mut self, _m: OnlineMatch) -> bool {
        std::thread::sleep(self.delay);
        self.seen.fetch_add(1, Ordering::Relaxed);
        true
    }
}

#[test]
fn slow_sink_throttles_the_feeder_without_losing_matches() {
    // ~600 matching elements; the sink sleeps 1ms per match, so the joiner is
    // the bottleneck by orders of magnitude.
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..600 {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>payload payload payload</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");

    let inflight = 4usize;
    let engine = Arc::new(
        Engine::builder()
            .add_query("//item/k")
            .unwrap()
            .chunk_size(256)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let expected = engine.run(&doc).match_count(0);
    assert_eq!(expected, 600);

    let runtime = Runtime::builder().workers(2).inflight_chunks(inflight).build();
    let seen = Arc::new(AtomicU64::new(0));
    let mut sink = SlowSink { delay: Duration::from_millis(1), seen: Arc::clone(&seen) };
    let report = runtime.process_reader(Arc::clone(&engine), &doc[..], &mut sink).unwrap();

    // Nothing lost.
    assert_eq!(report.match_counts, vec![expected]);
    assert_eq!(seen.load(Ordering::Relaxed), expected as u64);

    // Bounded pipeline: the reorder buffer can never exceed the credit cap,
    // and with the joiner this slow the feeder must have been blocked on
    // backpressure for a measurable amount of time.
    assert!(
        report.stats.peak_reorder_depth <= inflight,
        "reorder depth {} exceeded the {} in-flight credits",
        report.stats.peak_reorder_depth,
        inflight
    );
    assert!(report.stats.peak_join_lag <= inflight as u64);
    assert!(
        report.stats.backpressure_wait > Duration::ZERO,
        "expected the feeder to block behind the slow sink"
    );
    // The shared queue also stays within the credit cap (single session).
    assert!(runtime.peak_queue_depth() <= inflight);
}

#[test]
fn dropping_the_iterator_cancels_an_endless_stream() {
    use std::io::Read;

    /// A stream that never ends: `<s>` then `<k>..</k>` records forever.
    struct EndlessStream {
        sent_header: bool,
        i: u64,
    }
    impl Read for EndlessStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let piece = if self.sent_header {
                self.i += 1;
                format!("<k>v{}</k>", self.i)
            } else {
                self.sent_header = true;
                "<s>".to_string()
            };
            let bytes = piece.as_bytes();
            let n = bytes.len().min(buf.len());
            buf[..n].copy_from_slice(&bytes[..n]);
            Ok(n)
        }
    }

    let engine = Arc::new(
        Engine::builder()
            .add_query("//k")
            .unwrap()
            .chunk_size(512)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let runtime = Runtime::builder().workers(2).build();
    let stream =
        runtime.stream_reader(Arc::clone(&engine), EndlessStream { sent_header: false, i: 0 });
    // Take a few matches and walk away: before cancellation existed this
    // deadlocked in Drop, joining a driver that waits for an EOF that never
    // comes. Run it on a watchdog-guarded thread so a regression fails the
    // test instead of hanging it.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let first: Vec<_> = stream.take(5).collect();
        done_tx.send(first.len()).unwrap();
        // `stream` dropped here -> cancel -> driver unwinds.
    });
    let got = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("early-dropped MatchStream wedged on the endless stream");
    assert_eq!(got, 5);
}

#[test]
fn panicking_sink_unwinds_instead_of_deadlocking() {
    // A sink that panics runs on the joiner thread; without the joiner-stage
    // panic guard this wedged the feeder forever in acquire_credit on any
    // stream larger than the in-flight window. Now the session is poisoned,
    // the pipeline drains, and the panic resurfaces on the caller's thread.
    struct AngrySink;
    impl ppt_runtime::MatchSink for AngrySink {
        fn on_match(&mut self, _m: OnlineMatch) -> bool {
            panic!("sink exploded");
        }
    }

    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..2000 {
        doc.extend_from_slice(format!("<item><k>payload {i}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</stream>");

    let engine = Arc::new(
        Engine::builder()
            .add_query("//k")
            .unwrap()
            .chunk_size(64)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let runtime = Runtime::builder().workers(2).inflight_chunks(2).build();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink = AngrySink;
            let _ = runtime.process_reader(Arc::clone(&engine), &doc[..], &mut sink);
        }));
        done_tx.send(outcome.is_err()).unwrap();
    });
    let panicked =
        done_rx.recv_timeout(Duration::from_secs(30)).expect("panicking sink wedged the pipeline");
    assert!(panicked, "the sink's panic must resurface on the caller's thread");
}

#[test]
fn poisoned_session_distinguishes_dropped_from_delivered_matches() {
    // Before `dropped_matches` existed, a sink that died mid-delivery left
    // `stats.matches == 1` — indistinguishable from a successful delivery.
    // The match in the sink's hands when it panics must be accounted as
    // *dropped*, and `matches` must count only completed deliveries.
    struct AngrySink;
    impl ppt_runtime::MatchSink for AngrySink {
        fn on_match(&mut self, _m: OnlineMatch) -> bool {
            panic!("sink exploded");
        }
    }

    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..500 {
        doc.extend_from_slice(format!("<item><k>payload {i}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</stream>");

    let engine = Arc::new(
        Engine::builder()
            .add_query("//k")
            .unwrap()
            .chunk_size(64)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let runtime = Runtime::builder().workers(2).inflight_chunks(2).build();
    let mut session = runtime.open_session(Arc::clone(&engine), Box::new(AngrySink));
    for piece in doc.chunks(512) {
        if session.is_dead() {
            break;
        }
        session.feed(piece);
    }
    // The joiner poisons the session on the sink's first panic; wait for the
    // flag (bounded — a wedged pipeline fails rather than hangs).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !session.is_dead() {
        assert!(std::time::Instant::now() < deadline, "session never died");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = session.stats();
    assert_eq!(stats.matches, 0, "no match completed delivery");
    assert_eq!(stats.dropped_matches, 1, "the match the sink panicked on was dropped");
    // Dropping the handle joins the poisoned joiner without re-raising.
}

#[test]
fn reports_are_error_free_on_healthy_streams() {
    // Companion to the worker-poisoning path: a healthy run must report no
    // error, and a session whose worker panics must terminate (not wedge)
    // with `error` set. Panics cannot be provoked through the public API
    // with well-formed inputs, so only the healthy half runs here; the
    // poison plumbing is exercised by threading it through every stage
    // (acquire_credit/wait_for return paths) which this run covers.
    let engine = Arc::new(Engine::builder().add_query("//k").unwrap().build().unwrap());
    let runtime = Runtime::builder().workers(2).build();
    let mut sink = ppt_runtime::CollectSink::new();
    let report =
        runtime.process_reader(Arc::clone(&engine), &b"<a><k>x</k></a>"[..], &mut sink).unwrap();
    assert!(report.error.is_none(), "healthy stream must not report an error");
}

#[test]
fn slow_iterator_consumer_is_equivalent_backpressure() {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..300 {
        doc.extend_from_slice(format!("<item><k>x{i}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</stream>");

    let engine = Arc::new(
        Engine::builder()
            .add_query("//k")
            .unwrap()
            .chunk_size(128)
            .window_size(4096)
            .build()
            .unwrap(),
    );
    let runtime = Runtime::builder().workers(2).inflight_chunks(2).match_buffer(8).build();
    let stream = runtime.stream_reader(Arc::clone(&engine), std::io::Cursor::new(doc.clone()));
    let mut count = 0usize;
    for _m in stream {
        // A consumer that pulls slowly: the tiny match buffer plus the
        // credit scheme throttles everything upstream.
        std::thread::sleep(Duration::from_micros(200));
        count += 1;
    }
    assert_eq!(count, 300);
}
