//! Retention + materialization: payload bytes must be exactly what the batch
//! engine would select, the ring must respect its byte budget under
//! adversarial span distributions, and both wire framings must round-trip
//! the materialized stream byte-identically.

use ppt_core::Engine;
use ppt_datasets::{twitter_query, TreebankConfig, TwitterConfig, XmarkConfig};
use ppt_runtime::{CollectPayloadSink, Frame, FrameDecoder, Runtime, SessionOptions, WireFormat};
use std::sync::Arc;

fn engine_for(queries: &[&str], chunk: usize, window: usize) -> Arc<Engine> {
    Arc::new(
        Engine::builder()
            .add_queries(queries)
            .unwrap()
            .chunk_size(chunk)
            .window_size(window)
            .build()
            .unwrap(),
    )
}

/// Batch reference: per-query sorted `(start, end)` spans.
fn batch_spans(engine: &Engine, doc: &[u8]) -> Vec<Vec<(usize, usize)>> {
    engine
        .run(doc)
        .query_matches
        .iter()
        .map(|ms| {
            let mut v: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

#[test]
fn materialized_payloads_equal_batch_bytes_on_all_dataset_families() {
    let xmark = XmarkConfig::with_target_size(1 << 20).generate();
    let treebank = TreebankConfig::with_target_size(1 << 20).generate();
    let twitter = TwitterConfig::with_target_size(1 << 20).generate();
    let cases: Vec<(&str, &Vec<u8>, Vec<&str>)> = vec![
        ("xmark", &xmark, vec!["/s/cs/c/a/d/t/k", "//c//k", "/s/cs/c[a/d/t/k]/d"]),
        ("treebank", &treebank, vec!["//np/nn", "//s//vp"]),
        ("twitter", &twitter, vec![twitter_query(), "//retweeted_status"]),
    ];

    let runtime = Runtime::builder().workers(3).build();
    for (name, doc, queries) in cases {
        let engine = engine_for(&queries, 4 << 10, 16 << 10);
        let expected = batch_spans(&engine, doc);

        let mut sink = CollectPayloadSink::new();
        let opts = SessionOptions::new().stream_id(42).retain_bytes(4 << 20);
        let report =
            runtime.process_materialized(Arc::clone(&engine), &opts, &doc[..], &mut sink).unwrap();
        assert!(report.error.is_none(), "[{name}] healthy run");
        assert_eq!(report.stats.payload_misses, 0, "[{name}] generous budget must not miss");
        assert_eq!(report.stats.dropped_matches, 0, "[{name}] nothing dropped");

        let mut got: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
        for m in &sink.matches {
            assert_eq!(m.stream, 42, "[{name}] stream id is stamped on every match");
            let payload = m.payload.as_ref().expect("retention on: payload present");
            assert_eq!(
                payload.as_slice(),
                &doc[m.m.start..m.m.end],
                "[{name}] payload bytes must be exactly the stream slice"
            );
            got[m.m.query].push((m.m.start, m.m.end));
        }
        for v in &mut got {
            v.sort_unstable();
        }
        assert_eq!(got, expected, "[{name}] materialized spans equal Engine::run");
    }
}

#[test]
fn ring_budget_holds_under_adversarial_span_distributions() {
    // One enormous element wrapping the whole stream pins the resolve
    // frontier at its opening tag: the ring can never release a window early
    // and must fall back to budget evictions. The small inner matches keep
    // resolving (and materializing) out of the most recent windows.
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<s><big>");
    for i in 0..20_000 {
        doc.extend_from_slice(format!("<item><k>v{i}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</big></s>");

    let budget = 16 << 10;
    let window = 4 << 10;
    let engine = engine_for(&["//big", "//item/k"], 1 << 10, window);
    let runtime = Runtime::builder().workers(2).build();
    let mut sink = CollectPayloadSink::new();
    let opts = SessionOptions::new().retain_bytes(budget);
    let report =
        runtime.process_materialized(Arc::clone(&engine), &opts, &doc[..], &mut sink).unwrap();

    assert!(report.error.is_none());
    assert!(
        report.stats.peak_retained_bytes <= budget,
        "ring held {} bytes, budget {budget}",
        report.stats.peak_retained_bytes
    );
    assert!(report.stats.windows_evicted > 0, "the pinned frontier must force evictions");
    assert_eq!(
        report.stats.payload_misses, 1,
        "exactly the stream-spanning element outlives the budget"
    );

    let mut big_matches = 0usize;
    for m in &sink.matches {
        match m.m.query {
            0 => {
                big_matches += 1;
                assert!(m.payload.is_none(), "the giant span was evicted — no payload");
            }
            _ => {
                let payload = m.payload.as_ref().expect("small spans stay within the budget");
                assert_eq!(payload.as_slice(), &doc[m.m.start..m.m.end]);
            }
        }
    }
    assert_eq!(big_matches, 1);
    assert_eq!(
        sink.matches.len(),
        20_001,
        "every match is still delivered, with or without payload"
    );
}

#[test]
fn push_style_materialized_sessions_serve_payloads() {
    use std::sync::Mutex;

    let doc = XmarkConfig::with_target_size(128 << 10).generate();
    let engine = engine_for(&["//c//k"], 2 << 10, 8 << 10);
    let expected = batch_spans(&engine, &doc);

    // The handle keeps the materializing adapter; share the collection.
    let collected: Arc<Mutex<Vec<ppt_runtime::MaterializedMatch>>> = Arc::default();
    let sink_store = Arc::clone(&collected);
    let runtime = Runtime::builder().workers(2).build();
    let opts = SessionOptions::new().stream_id(5).retain_bytes(2 << 20);
    let mut session = runtime.open_materialized_session(
        Arc::clone(&engine),
        &opts,
        Box::new(move |m: ppt_runtime::MaterializedMatch| {
            sink_store.lock().unwrap().push(m);
        }),
    );
    // Arbitrary feed sizes, as a network server would see them.
    for piece in doc.chunks(1777) {
        session.feed(piece);
    }
    let (report, _adapter) = session.finish();
    assert!(report.error.is_none());
    assert_eq!(report.stats.payload_misses, 0);

    let matches = collected.lock().unwrap();
    let mut got = vec![Vec::new(); 1];
    for m in matches.iter() {
        assert_eq!(m.stream, 5);
        assert_eq!(m.payload.as_deref().unwrap(), &doc[m.m.start..m.m.end]);
        got[m.m.query].push((m.m.start, m.m.end));
    }
    got[0].sort_unstable();
    assert_eq!(got, expected);
}

#[test]
fn serve_reader_json_lines_round_trip_byte_identically() {
    let doc = XmarkConfig::with_target_size(256 << 10).generate();
    let queries = ["//c//k", "/s/cs/c[a/d/t/k]/d"];
    let engine = engine_for(&queries, 2 << 10, 8 << 10);
    let expected = batch_spans(&engine, &doc);

    let runtime = Runtime::builder().workers(2).build();
    let opts = SessionOptions::new().stream_id(9).retain_bytes(2 << 20);
    let served = runtime
        .serve_reader(Arc::clone(&engine), &opts, &doc[..], Vec::new(), WireFormat::JsonLines)
        .unwrap();
    assert!(served.write_error.is_none());
    let report = served.report;

    let text = String::from_utf8(served.writer).expect("JSON-lines output is ASCII");
    let mut got: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
    let mut frames = 0u64;
    for line in text.lines() {
        let frame = Frame::decode_json(line).expect("every line parses");
        assert_eq!(frame.stream, 9);
        let payload = frame.payload.expect("retention on");
        assert_eq!(
            payload.as_slice(),
            &doc[frame.start as usize..frame.end as usize],
            "decoded payload equals the stream slice"
        );
        got[frame.query as usize].push((frame.start as usize, frame.end as usize));
        frames += 1;
    }
    for v in &mut got {
        v.sort_unstable();
    }
    assert_eq!(got, expected);
    assert_eq!(frames, report.stats.matches);
}

#[test]
fn serve_reader_binary_frames_reassemble_from_arbitrary_read_sizes() {
    let doc = XmarkConfig::with_target_size(128 << 10).generate();
    let engine = engine_for(&["//c//k"], 2 << 10, 8 << 10);
    let runtime = Runtime::builder().workers(2).build();
    let opts = SessionOptions::new().stream_id(3).retain_bytes(2 << 20);
    let served = runtime
        .serve_reader(Arc::clone(&engine), &opts, &doc[..], Vec::new(), WireFormat::Binary)
        .unwrap();
    assert!(served.write_error.is_none());
    let (report, out) = (served.report, served.writer);
    assert!(report.stats.matches > 0);

    // Feed the byte stream to the decoder in awkward pieces.
    let mut decoder = FrameDecoder::new();
    let mut frames: Vec<Frame> = Vec::new();
    for piece in out.chunks(113) {
        decoder.push(piece);
        while let Some(frame) = decoder.next_frame().unwrap() {
            frames.push(frame);
        }
    }
    assert_eq!(decoder.buffered(), 0, "no trailing garbage");
    assert_eq!(frames.len() as u64, report.stats.matches);
    for frame in &frames {
        assert_eq!(frame.stream, 3);
        let payload = frame.payload.as_ref().expect("retention on");
        assert_eq!(payload.as_slice(), &doc[frame.start as usize..frame.end as usize]);
    }
}
