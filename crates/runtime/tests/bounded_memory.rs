//! Bounded memory: streaming a large synthetic document through the runtime
//! must not accumulate state proportional to the stream — the constant-memory
//! claim of §1, §3.2.
//!
//! The stream is *generated on the fly* by a `Read` implementation (it never
//! exists in memory), and peak RSS is read from `/proc/self/status` on Linux.
//! This file intentionally holds a single enabled test so the process-wide
//! high-water mark is attributable; the 256 MiB acceptance run is the same
//! code with `--ignored` (use a release build: `cargo test -p ppt-runtime
//! --release --test bounded_memory -- --ignored`).

use ppt_core::Engine;
use ppt_runtime::{OnlineMatch, Runtime};
use std::io::Read;
use std::sync::Arc;

/// Generates `<stream><item .../>...</stream>` lazily up to a byte budget.
struct SyntheticStream {
    budget: usize,
    produced: usize,
    record: usize,
    phase: Phase,
    carry: Vec<u8>,
}

enum Phase {
    Header,
    Records,
    Footer,
    Done,
}

impl SyntheticStream {
    fn new(budget: usize) -> SyntheticStream {
        SyntheticStream { budget, produced: 0, record: 0, phase: Phase::Header, carry: Vec::new() }
    }

    fn next_piece(&mut self) -> Option<Vec<u8>> {
        match self.phase {
            Phase::Header => {
                self.phase = Phase::Records;
                Some(b"<stream>".to_vec())
            }
            Phase::Records => {
                if self.produced >= self.budget {
                    self.phase = Phase::Footer;
                    return self.next_piece();
                }
                let i = self.record;
                self.record += 1;
                Some(
                    format!(
                        "<item><id>{i}</id><meta><k>key-{i}</k></meta>\
                         <body>some moderately long text payload to pad the record {i}</body>\
                         </item>"
                    )
                    .into_bytes(),
                )
            }
            Phase::Footer => {
                self.phase = Phase::Done;
                Some(b"</stream>".to_vec())
            }
            Phase::Done => None,
        }
    }
}

impl Read for SyntheticStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.carry.is_empty() {
            match self.next_piece() {
                Some(piece) => self.carry = piece,
                None => return Ok(0),
            }
        }
        let n = self.carry.len().min(buf.len());
        buf[..n].copy_from_slice(&self.carry[..n]);
        self.carry.drain(..n);
        self.produced += n;
        Ok(n)
    }
}

/// Peak resident set size in bytes (`VmHWM`), Linux only.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn run_bounded(budget: usize, rss_margin: u64) {
    let engine = Arc::new(
        Engine::builder()
            .add_query("//item/meta/k")
            .unwrap()
            .add_query("//item[meta]/body")
            .unwrap()
            .chunk_size(128 * 1024)
            .window_size(1 << 20)
            .build()
            .unwrap(),
    );
    let runtime = Runtime::builder().workers(2).inflight_chunks(8).build();

    let baseline = peak_rss_bytes();
    let mut records = 0u64;
    let mut sink = |m: OnlineMatch| {
        if m.query == 0 {
            records += 1;
        }
    };
    let report = runtime
        .process_reader(Arc::clone(&engine), SyntheticStream::new(budget), &mut sink)
        .unwrap();

    assert!(report.stats.bytes_in as usize >= budget, "stream under-produced");
    // Every record matches both queries exactly once.
    assert_eq!(report.match_counts[0] as u64, records);
    assert_eq!(report.match_counts[0], report.match_counts[1]);
    assert!(records > 0);

    if let (Some(before), Some(after)) = (baseline, peak_rss_bytes()) {
        let growth = after.saturating_sub(before);
        assert!(
            growth < rss_margin,
            "peak RSS grew by {} MiB while streaming {} MiB — memory is not bounded",
            growth >> 20,
            budget >> 20,
        );
    }
}

#[test]
fn thirty_two_mib_stream_runs_in_bounded_memory() {
    // 32 MiB through 1 MiB windows: peak RSS growth must stay far below the
    // stream size (the margin leaves room for allocator slack and the
    // transducer tables).
    run_bounded(32 << 20, 64 << 20);
}

#[test]
#[ignore = "acceptance-scale run; use --release"]
fn two_fifty_six_mib_stream_runs_in_bounded_memory() {
    run_bounded(256 << 20, 64 << 20);
}
