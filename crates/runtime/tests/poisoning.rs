//! Failure isolation: a panicking pipeline stage — most likely a user's
//! [`MatchSink`] — must take down *its own session only*. Before the
//! poison-recovery hardening, the panic poisoned the locks it held and every
//! other session's thread panicked on `.expect("… poisoned")` the next time
//! it touched them.

use ppt_core::Engine;
use ppt_runtime::{CollectSink, MatchSink, OnlineMatch, Runtime};
use std::sync::Arc;

fn make_doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(format!("<item><k>{i}</k></item>").as_bytes());
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

fn make_engine() -> Arc<Engine> {
    Arc::new(
        Engine::builder()
            .add_query("//item/k")
            .unwrap()
            .chunk_size(128)
            .window_size(2048)
            .build()
            .unwrap(),
    )
}

/// Panics on the nth match it sees.
struct PanicSink {
    remaining: usize,
}

impl MatchSink for PanicSink {
    fn on_match(&mut self, _m: OnlineMatch) -> bool {
        if self.remaining == 0 {
            panic!("deliberate sink panic");
        }
        self.remaining -= 1;
        true
    }
}

#[test]
fn a_sink_panic_in_one_session_leaves_concurrent_sessions_healthy() {
    let doc = Arc::new(make_doc(500));
    let engine = make_engine();
    let expected = engine.run(&doc).match_count(0);
    assert_eq!(expected, 500);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(4).build());

    std::thread::scope(|scope| {
        // Session A: the sink blows up after a few matches. The panic is
        // re-raised on A's owner thread — and nowhere else.
        let runtime_a = Arc::clone(&runtime);
        let doc_a = Arc::clone(&doc);
        let engine_a = Arc::clone(&engine);
        let a = scope.spawn(move || {
            let mut sink = PanicSink { remaining: 3 };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                runtime_a.process_reader(engine_a, &doc_a[..], &mut sink)
            }))
        });

        // Session B: a full healthy run, concurrently, on the same workers.
        let runtime_b = Arc::clone(&runtime);
        let doc_b = Arc::clone(&doc);
        let engine_b = Arc::clone(&engine);
        let b = scope.spawn(move || {
            let mut sink = CollectSink::new();
            let report = runtime_b.process_reader(engine_b, &doc_b[..], &mut sink).unwrap();
            (report, sink.matches.len())
        });

        let a_outcome = a.join().expect("thread A itself must not die");
        assert!(a_outcome.is_err(), "the sink panic resurfaces on A's owner thread");

        let (report_b, matches_b) = b.join().expect("thread B must be untouched");
        assert_eq!(report_b.match_counts, vec![expected]);
        assert_eq!(matches_b, expected);
        assert!(report_b.error.is_none());
    });

    // The shared pool survived: a brand-new session on the same runtime
    // still completes.
    let mut sink = CollectSink::new();
    let report = runtime.process_reader(engine, &doc[..], &mut sink).unwrap();
    assert_eq!(report.match_counts, vec![expected]);
}

#[test]
fn a_poisoned_push_session_reports_the_failure_and_frees_the_handle() {
    let doc = make_doc(200);
    let engine = make_engine();
    let runtime = Runtime::builder().workers(2).inflight_chunks(4).build();

    let mut session =
        runtime.open_session(Arc::clone(&engine), Box::new(PanicSink { remaining: 0 }));
    session.feed(&doc);
    // The joiner hits the panicking sink asynchronously; poisoning must
    // arrive promptly rather than wedging the pipeline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !session.is_dead() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(session.is_dead(), "the session is poisoned, not wedged");
    let finished = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || session.finish()));
    assert!(finished.is_err(), "finish re-raises the sink panic for the owner");

    // The runtime is still serviceable.
    let mut sink = CollectSink::new();
    let report = runtime.process_reader(engine, &doc[..], &mut sink).unwrap();
    assert_eq!(report.match_counts, vec![200]);
}
