//! The TCP serving front-end, exercised over real localhost sockets: the
//! query-registration handshake (well-formed, malformed, fragmented),
//! end-to-end frame correctness against the batch engine, structured
//! rejections, per-session failure isolation, and backpressure bounding
//! retention for slow clients.

use ppt_core::Engine;
use ppt_runtime::serve::{register, ClientError, TcpServer};
use ppt_runtime::{
    Frame, FrameDecoder, HandshakeDecoder, HandshakeRequest, Runtime, ServerMode, WireFormat,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A document with `items` matching `//item/k` elements.
fn make_doc(items: usize) -> Vec<u8> {
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><id>{i}</id><k>payload for element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// The batch reference: multiset of (query, start, end) from `Engine::run`.
fn batch_reference(queries: &[&str], doc: &[u8]) -> HashMap<(u32, u64, u64), usize> {
    let engine = Engine::builder().add_queries(queries).unwrap().build().unwrap();
    let result = engine.run(doc);
    let mut expected = HashMap::new();
    for (qi, ms) in result.query_matches.iter().enumerate() {
        for m in ms {
            *expected.entry((qi as u32, m.start as u64, m.end as u64)).or_default() += 1;
        }
    }
    expected
}

/// Connects, registers, streams `doc` from a writer thread, and collects
/// every response frame until EOF (optionally dawdling between reads).
fn run_client(
    addr: SocketAddr,
    request: HandshakeRequest,
    doc: Arc<Vec<u8>>,
    read_delay: Option<Duration>,
) -> Vec<Frame> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let reg = register(&mut stream, &request).expect("handshake accepted");
    assert_eq!(reg.query_ids.len(), request.queries.len(), "one id per registered query");
    assert_eq!(reg.query_ids, (0..request.queries.len() as u32).collect::<Vec<u32>>());
    if let Some(requested) = request.stream_id {
        assert_eq!(reg.stream_id, requested, "the OK line echoes the requested stream id");
    } else {
        assert_ne!(reg.stream_id, 0, "a default handshake gets a server-assigned nonzero id");
    }

    let format = request.format;
    let writer_stream = stream.try_clone().expect("clone for writer");
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        // Arbitrary write sizes: the splitter must not care.
        for piece in doc.chunks(4096) {
            if writer_stream.write_all(piece).is_err() {
                return;
            }
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });

    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if let Some(delay) = read_delay {
                    std::thread::sleep(delay);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    writer.join().expect("writer thread");

    match format {
        WireFormat::JsonLines => {
            let text = std::str::from_utf8(&raw).expect("wire JSON is ASCII");
            text.lines().map(|l| Frame::decode_json(l).expect("every line parses")).collect()
        }
        WireFormat::Binary => {
            let mut decoder = FrameDecoder::new();
            decoder.push(&raw);
            let mut frames = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                frames.push(frame);
            }
            // A clean close must not leave a half-written frame behind.
            decoder.finish().expect("no truncated tail on a clean close");
            frames
        }
    }
}

/// Asserts `frames` carry exactly the batch matches, with byte-identical
/// payloads when `doc` retention was on.
fn assert_frames_match(
    frames: &[Frame],
    mut expected: HashMap<(u32, u64, u64), usize>,
    doc: Option<&[u8]>,
) {
    for frame in frames {
        let key = (frame.query, frame.start, frame.end);
        let n = expected.get_mut(&key).unwrap_or_else(|| panic!("unexpected frame {key:?}"));
        *n -= 1;
        if *n == 0 {
            expected.remove(&key);
        }
        if let Some(doc) = doc {
            let payload = frame.payload.as_ref().expect("retention on: payload present");
            assert_eq!(
                payload.as_slice(),
                &doc[frame.start as usize..frame.end as usize],
                "payload must be byte-identical to the stream slice"
            );
        }
    }
    assert!(expected.is_empty(), "batch matches never served: {expected:?}");
}

/// The end-to-end equivalence run, shared by both serving modes.
fn serves_json_and_binary_clients_concurrently(mode: ServerMode) {
    let queries = ["//item/k", "/stream/item/id"];
    let doc = Arc::new(make_doc(300));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = TcpServer::builder()
        .mode(mode)
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    let mut clients = Vec::new();
    for (stream_id, format) in [(7u64, WireFormat::JsonLines), (9, WireFormat::Binary)] {
        let doc = Arc::clone(&doc);
        let request = HandshakeRequest::new(format)
            .query(queries[0])
            .query(queries[1])
            .retain_bytes(1 << 20)
            .stream_id(stream_id);
        clients.push(std::thread::spawn(move || (stream_id, run_client(addr, request, doc, None))));
    }
    for client in clients {
        let (stream_id, frames) = client.join().expect("client thread");
        assert!(!frames.is_empty());
        assert!(frames.iter().all(|f| f.stream == stream_id), "frames carry the stream id");
        assert_frames_match(&frames, expected.clone(), Some(&doc));
    }

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.sessions_completed, 2);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.active, 0);
    assert_eq!(stats.connections.len(), 2);
    assert_eq!(stats.reactor.is_some(), mode == ServerMode::Reactor && cfg!(unix));
    for conn in &stats.connections {
        let report = conn.report.as_ref().expect("clean close keeps the report");
        assert!(report.error.is_none());
        assert_eq!(report.stats.payload_misses, 0);
        assert_eq!(conn.queries, queries);
    }
}

#[test]
fn serves_json_and_binary_clients_concurrently_reactor() {
    serves_json_and_binary_clients_concurrently(ServerMode::default());
}

#[test]
fn serves_json_and_binary_clients_concurrently_thread_per_conn() {
    serves_json_and_binary_clients_concurrently(ServerMode::ThreadPerConn);
}

#[test]
fn malformed_handshakes_get_structured_rejections_and_server_survives() {
    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::bind("127.0.0.1:0", runtime).expect("bind");
    let addr = server.local_addr();

    // A wrong-protocol client is answered, not dropped.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("ERR "), "structured rejection, got {reply:?}");
    assert!(reply.contains("PPT/1"), "the reason names the expected grammar: {reply:?}");

    // A bad query is rejected with the parser's message over the wire.
    let mut stream = TcpStream::connect(addr).unwrap();
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("/a[unclosed");
    match register(&mut stream, &request) {
        Err(ClientError::Rejected(reason)) => {
            assert!(reason.contains("/a[unclosed"), "echoes the query: {reason}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }

    // A connection killed mid-handshake harms nobody.
    let stream = TcpStream::connect(addr).unwrap();
    drop(stream);

    // The server still serves a well-behaved client after all that.
    let doc = Arc::new(make_doc(50));
    let expected = batch_reference(&["//item/k"], &doc);
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    let frames = run_client(addr, request, Arc::clone(&doc), None);
    assert_frames_match(&frames, expected, None);

    let stats = server.shutdown();
    assert!(stats.handshake_rejects >= 2, "rejects counted: {stats:?}");
    assert_eq!(stats.sessions_completed, 1);
}

#[test]
fn handshake_deadline_rejects_trickling_clients() {
    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder()
        .handshake_timeout(Some(Duration::from_millis(200)))
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // A slowloris: each byte lands well inside a per-read timeout, but the
    // handshake as a whole never finishes — the *deadline* must fire.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"PPT/1 ").unwrap();
    std::thread::sleep(Duration::from_millis(80));
    stream.write_all(b"j").unwrap();
    // Stop writing before the server closes (a write into a closed socket
    // would RST away the reply we want to observe) and outlive the deadline.
    std::thread::sleep(Duration::from_millis(250));
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(
        reply.starts_with("ERR") && reply.contains("timed out"),
        "structured timeout rejection, got {reply:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.handshake_rejects, 1);
    assert_eq!(stats.sessions_completed + stats.sessions_failed, 0);
}

#[test]
fn a_connection_killed_mid_stream_poisons_only_its_own_session() {
    let queries = ["//item/k"];
    let doc = Arc::new(make_doc(400));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .chunk_size(256)
        .window_size(2048)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The victim: registers, streams a prefix, then vanishes without ever
    // reading a frame — on close the unread response data turns into a
    // connection reset the server must absorb.
    let victim_doc = Arc::clone(&doc);
    let victim = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
        register(&mut stream, &request).expect("handshake accepted");
        let _ = stream.write_all(&victim_doc[..victim_doc.len() / 2]);
        // Give the server a moment to produce frames we will never read.
        std::thread::sleep(Duration::from_millis(100));
        drop(stream); // no half-close: an abrupt disappearance
    });

    // The bystander: a full, well-behaved session running concurrently.
    let request = HandshakeRequest::new(WireFormat::JsonLines).query(queries[0]);
    let frames = run_client(addr, request, Arc::clone(&doc), None);
    assert_frames_match(&frames, expected.clone(), None);
    victim.join().unwrap();

    // And the server keeps serving new sessions afterwards.
    let request = HandshakeRequest::new(WireFormat::Binary).query(queries[0]);
    let frames = run_client(addr, request, Arc::clone(&doc), None);
    assert_frames_match(&frames, expected, None);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.sessions_completed, 2, "both healthy sessions finished: {stats:?}");
    assert_eq!(stats.active, 0);
}

#[test]
fn slow_client_backpressure_bounds_retention_under_its_budget() {
    let doc = Arc::new(make_doc(2000));
    let expected = batch_reference(&["//item/k"], &doc);
    let budget = 16 << 10;

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(2).build());
    let server = TcpServer::builder()
        .chunk_size(512)
        .window_size(2048)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    let request =
        HandshakeRequest::new(WireFormat::JsonLines).query("//item/k").retain_bytes(budget as u64);
    let frames = run_client(addr, request, Arc::clone(&doc), Some(Duration::from_millis(2)));
    assert_frames_match(&frames, expected, Some(&doc));

    let stats = server.shutdown();
    let conn = &stats.connections[0];
    let report = conn.report.as_ref().expect("session completed");
    assert!(
        report.stats.peak_retained_bytes <= budget,
        "retention stayed under the client's budget: {} > {budget}",
        report.stats.peak_retained_bytes
    );
    assert_eq!(report.stats.payload_misses, 0);
    assert_eq!(conn.frames, frames.len() as u64);
}

/// Regression (stream-id collisions): two connections that omit `STREAM`
/// used to both get stream 0 — indistinguishable to a consumer aggregating
/// several connections. The server must assign distinct, nonzero ids, echo
/// them in the `OK` line, and stamp them on every frame.
fn default_handshakes_get_distinct_stream_ids(mode: ServerMode) {
    let doc = Arc::new(make_doc(40));
    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder().mode(mode).bind("127.0.0.1:0", runtime).expect("bind");
    let addr = server.local_addr();

    let mut seen = Vec::new();
    for _ in 0..2 {
        let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
        assert_eq!(request.stream_id, None, "no STREAM line in this handshake");
        let frames = run_client(addr, request, Arc::clone(&doc), None);
        assert!(!frames.is_empty());
        let id = frames[0].stream;
        assert_ne!(id, 0, "assigned ids are never 0");
        assert!(frames.iter().all(|f| f.stream == id), "one id per connection");
        seen.push(id);
    }
    assert_ne!(seen[0], seen[1], "two default handshakes must get distinct stream ids");

    let stats = server.shutdown();
    let reported: Vec<u64> = stats.connections.iter().map(|c| c.stream_id).collect();
    assert_eq!(reported.len(), 2);
    assert_ne!(reported[0], reported[1], "reports carry the assigned ids too");
}

#[test]
fn default_handshakes_get_distinct_stream_ids_reactor() {
    default_handshakes_get_distinct_stream_ids(ServerMode::default());
}

#[test]
fn default_handshakes_get_distinct_stream_ids_thread_per_conn() {
    default_handshakes_get_distinct_stream_ids(ServerMode::ThreadPerConn);
}

/// Regression (post-handshake liveness): a client that registers and then
/// goes silent — no FIN, no bytes, never reads — used to hold its session,
/// its gate credit and its retention forever; the deadline machinery only
/// covered the handshake phase. With `idle_timeout` set, the session is
/// poisoned (alone) and the admission slot comes back.
fn silent_client_is_timed_out_and_frees_its_slot(mode: ServerMode) {
    let doc = Arc::new(make_doc(60));
    let expected = batch_reference(&["//item/k"], &doc);

    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder()
        .mode(mode)
        .max_connections(1) // the silent client holds the only slot
        .idle_timeout(Some(Duration::from_millis(200)))
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The silent client: registers, then does nothing at all. Keep the
    // socket alive for the whole test — the server must act on the
    // *timeout*, not on a close it never receives.
    let mut silent = TcpStream::connect(addr).expect("connect");
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    register(&mut silent, &request).expect("handshake accepted");

    // A well-behaved client behind it: it can only be admitted once the
    // idle timeout frees the silent client's gate credit.
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    let frames = run_client(addr, request, Arc::clone(&doc), None);
    assert_frames_match(&frames, expected, None);

    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 1, "the live client finished: {stats:?}");
    assert_eq!(stats.sessions_failed, 1, "the silent client was failed: {stats:?}");
    assert_eq!(stats.active, 0);
    let failed = stats
        .connections
        .iter()
        .find(|c| c.read_error.is_some() || c.write_error.is_some())
        .expect("the timed-out connection left a report");
    let error = failed
        .read_error
        .clone()
        .or_else(|| failed.write_error.clone())
        .unwrap_or_default()
        .to_lowercase();
    assert!(
        error.contains("idle") || error.contains("timed out") || error.contains("timeout"),
        "the report names the liveness timeout: {error:?}"
    );
    drop(silent);
}

/// A document whose `//item/k` matches are sparse relative to its bytes
/// (a ~200-byte pad per item), so multi-MiB pipeline runs don't drown the
/// test in frame traffic.
fn make_sparse_doc(items: usize) -> Vec<u8> {
    let pad = "x".repeat(200);
    let mut doc = Vec::new();
    doc.extend_from_slice(b"<stream>");
    for i in 0..items {
        doc.extend_from_slice(
            format!("<item><pad>{pad}</pad><k>element {i}</k></item>").as_bytes(),
        );
    }
    doc.extend_from_slice(b"</stream>");
    doc
}

/// Regression (idle timeout vs pipeline stall): a *live* client whose
/// connection stalls because the shard is busy with ANOTHER session's
/// chunks — its feeder blocked on in-flight credits, its outbox empty, so
/// neither a read nor a write can possibly happen on its socket — must NOT
/// be timed out: the stall is the server's, not the client's. (A client
/// whose own outbox is backed up is the opposite case: it is not draining
/// its frames, which is indistinguishable from death and IS timed out.)
#[test]
fn pipeline_stalled_live_client_is_not_idle_killed() {
    let idle = Duration::from_millis(200);
    let doc = Arc::new(make_sparse_doc(16_000));
    let expected = batch_reference(&["//item/k"], &doc);

    // One worker, 1 MiB chunks, three hog sessions each holding four
    // in-flight chunks: the victim's first chunk queues behind up to a
    // dozen megabyte-sized transduces, which holds the shard's only worker
    // for far longer than the idle timeout (debug-profile speeds). On a
    // much faster box the stall may stay under the timeout — the test then
    // passes trivially rather than flaking.
    let runtime = Arc::new(Runtime::builder().workers(1).inflight_chunks(4).build());
    let server = TcpServer::builder()
        .mode(ServerMode::default())
        .chunk_size(1 << 20)
        .window_size(2 << 20)
        .idle_timeout(Some(idle))
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The hogs: ordinary clients that read their frames promptly (their
    // own stalls are pipeline-side too — the guard must protect them as
    // well).
    let hogs: Vec<_> = (0..3)
        .map(|_| {
            let hog_doc = Arc::clone(&doc);
            let hog_expected = expected.clone();
            std::thread::spawn(move || {
                let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
                let frames = run_client(addr, request, hog_doc, None);
                assert_frames_match(&frames, hog_expected, None);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    // The victim: registers second, streams its whole document, then sits
    // with the write half open (a live stream with nothing more to say)
    // while its chunks queue behind the hog's. No frame can be produced
    // for it during the stall, so there is no socket activity to reset the
    // clock — only the pipeline-stall exemption keeps it alive.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = HandshakeRequest::new(WireFormat::JsonLines).query("//item/k");
    register(&mut stream, &request).expect("handshake accepted");
    let saw_frame = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer_doc = Arc::clone(&doc);
    let writer_saw = Arc::clone(&saw_frame);
    let writer_stream = stream.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        let mut writer_stream = writer_stream;
        let _ = writer_stream.write_all(&writer_doc);
        // Hold the write half open until frames prove the stall is over,
        // so the connection stays in the streaming phase throughout it.
        // The deadline only exists so a regression (the victim killed, no
        // frame ever arriving) fails the test instead of hanging it.
        let bail = std::time::Instant::now() + Duration::from_secs(30);
        while !writer_saw.load(std::sync::atomic::Ordering::Acquire)
            && std::time::Instant::now() < bail
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = writer_stream.shutdown(Shutdown::Write);
    });
    let mut raw = Vec::new();
    let mut buf = [0u8; 16 << 10];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                saw_frame.store(true, std::sync::atomic::Ordering::Release);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("victim read failed: {e}"),
        }
    }
    writer.join().expect("writer thread");
    let text = std::str::from_utf8(&raw).expect("wire JSON is ASCII");
    let frames: Vec<Frame> =
        text.lines().map(|l| Frame::decode_json(l).expect("every line parses")).collect();
    assert_frames_match(&frames, expected, None);
    for hog in hogs {
        hog.join().expect("hog client");
    }

    let stats = server.shutdown();
    assert_eq!(stats.sessions_completed, 4, "all live clients finished: {stats:?}");
    assert_eq!(
        stats.sessions_failed, 0,
        "a pipeline stall must not read as client death: {stats:?}"
    );
}

#[test]
fn silent_client_is_timed_out_and_frees_its_slot_reactor() {
    silent_client_is_timed_out_and_frees_its_slot(ServerMode::default());
}

#[test]
fn silent_client_is_timed_out_and_frees_its_slot_thread_per_conn() {
    silent_client_is_timed_out_and_frees_its_slot(ServerMode::ThreadPerConn);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage pushed at arbitrary fragmentation must never panic
    /// the handshake decoder: every outcome is a parsed request, a demand
    /// for more bytes, or a structured error.
    #[test]
    fn handshake_decoder_survives_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        step in 1usize..17,
    ) {
        let mut decoder = HandshakeDecoder::with_limits(64, 4);
        let mut outcome_ok = 0usize;
        for piece in bytes.chunks(step) {
            match decoder.push(piece) {
                Ok(Some(req)) => {
                    outcome_ok += 1;
                    prop_assert!(!req.queries.is_empty());
                }
                Ok(None) => {}
                Err(e) => {
                    // Structured and single-line, ready for an ERR reply.
                    let msg = e.to_string();
                    prop_assert!(!msg.is_empty());
                    prop_assert!(!msg.contains('\n'));
                }
            }
        }
        prop_assert!(outcome_ok <= 1);
    }

    /// A valid handshake interleaved into random fragment sizes always
    /// parses to the same request, and the remainder is exactly the bytes
    /// after GO.
    #[test]
    fn handshake_decoder_is_fragmentation_invariant(
        step in 1usize..23,
        retain in 1u64..1_000_000,
        stream_id in 0u64..1 << 52, // ids above are reserved for assignment
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let request = HandshakeRequest::new(WireFormat::Binary)
            .query("/s/cs/c/a")
            .query("//k")
            .retain_bytes(retain)
            .stream_id(stream_id);
        let mut encoded = request.encode();
        encoded.extend_from_slice(&tail);

        let mut decoder = HandshakeDecoder::new();
        let mut parsed = None;
        for piece in encoded.chunks(step) {
            if let Some(req) = decoder.push(piece).expect("valid handshake") {
                prop_assert!(parsed.is_none());
                parsed = Some(req);
            }
        }
        prop_assert_eq!(parsed.as_ref(), Some(&request));
        prop_assert_eq!(decoder.take_remainder(), tail);
    }
}

// --- Shared streams over real sockets (PR 9) --------------------------------

/// Reads a connection to EOF and decodes every frame in `format`.
fn read_frames(mut stream: TcpStream, format: WireFormat) -> Vec<Frame> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read to EOF");
    match format {
        WireFormat::JsonLines => {
            let text = std::str::from_utf8(&raw).expect("wire JSON is ASCII");
            text.lines().map(|l| Frame::decode_json(l).expect("every line parses")).collect()
        }
        WireFormat::Binary => {
            let mut decoder = FrameDecoder::new();
            decoder.push(&raw);
            let mut frames = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("well-formed frames") {
                frames.push(frame);
            }
            decoder.finish().expect("no truncated tail on a clean close");
            frames
        }
    }
}

/// One owner feeds, a second connection names the same stream id and rides
/// the owner's transducer pass: `OK ATTACH`, connection-local query ids, and
/// frames byte-identical to what a private engine over the same queries
/// would have produced — including retained payload slices.
fn late_attacher_shares_the_stream_and_gets_byte_identical_frames(mode: ServerMode) {
    let owner_queries = ["//item/k", "/stream/item/id"];
    // Overlaps the owner on one query, adds one of its own, and numbers them
    // in its own order: local ids, not the merged automaton's.
    let sub_queries = ["/stream/item/id", "//item"];
    let doc = Arc::new(make_doc(200));
    let owner_expected = batch_reference(&owner_queries, &doc);
    let sub_expected = batch_reference(&sub_queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(2).inflight_chunks(8).build());
    let server = TcpServer::builder()
        .mode(mode)
        .chunk_size(512)
        .window_size(4096)
        .bind("127.0.0.1:0", runtime)
        .expect("bind");
    let addr = server.local_addr();

    // The owner registers stream 42 but holds its bytes until the subscriber
    // is attached, so both see the whole stream and the frame multisets are
    // exactly the batch reference.
    let mut owner = TcpStream::connect(addr).expect("owner connect");
    let owner_req = HandshakeRequest::new(WireFormat::JsonLines)
        .query(owner_queries[0])
        .query(owner_queries[1])
        .retain_bytes(1 << 20)
        .stream_id(42);
    let reg = register(&mut owner, &owner_req).expect("owner accepted");
    assert!(!reg.attached, "the first connection owns the stream");
    assert_eq!(reg.stream_id, 42);

    let sub = {
        let mut sub = TcpStream::connect(addr).expect("subscriber connect");
        let sub_req = HandshakeRequest::new(WireFormat::Binary)
            .query(sub_queries[0])
            .query(sub_queries[1])
            .stream_id(42);
        let sub_reg = register(&mut sub, &sub_req).expect("attach accepted");
        assert!(sub_reg.attached, "naming a live stream id attaches to it");
        assert_eq!(sub_reg.stream_id, 42);
        assert_eq!(sub_reg.query_ids, vec![0, 1], "ids are connection-local");
        sub
    };
    let sub_reader = std::thread::spawn(move || read_frames(sub, WireFormat::Binary));

    for piece in doc.chunks(4096) {
        owner.write_all(piece).expect("owner write");
    }
    owner.shutdown(Shutdown::Write).expect("owner half-close");
    let owner_frames = read_frames(owner, WireFormat::JsonLines);
    assert_frames_match(&owner_frames, owner_expected, Some(&doc));

    // The owner's EOF finishes the shared stream, which closes the
    // subscriber connection too — no explicit teardown from the subscriber.
    let sub_frames = sub_reader.join().expect("subscriber reader");
    assert!(!sub_frames.is_empty());
    assert!(sub_frames.iter().all(|f| f.stream == 42), "frames carry the shared stream id");
    assert_frames_match(&sub_frames, sub_expected, Some(&doc));

    let stats = server.shutdown();
    assert_eq!(stats.connections.len(), 2, "both connections were recorded");
    let attached = stats.connections.iter().find(|c| c.format == WireFormat::Binary).unwrap();
    assert!(attached.write_error.is_none(), "{:?}", attached.write_error);
    let report = attached.report.as_ref().expect("attached connections report too");
    assert!(report.error.is_none());
    assert_eq!(report.stats.dropped_matches, 0, "a draining subscriber sheds nothing");
}

#[test]
fn late_attacher_shares_the_stream_reactor() {
    late_attacher_shares_the_stream_and_gets_byte_identical_frames(ServerMode::default());
}

#[test]
fn late_attacher_shares_the_stream_thread_per_conn() {
    late_attacher_shares_the_stream_and_gets_byte_identical_frames(ServerMode::ThreadPerConn);
}

/// An attach batch with a malformed query is refused with the same `ERR`
/// shape a fresh handshake would get, and the incumbent stream is unharmed.
fn attach_with_a_bad_query_is_rejected_without_harming_the_stream(mode: ServerMode) {
    let queries = ["//item/k"];
    let doc = Arc::new(make_doc(60));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder().mode(mode).bind("127.0.0.1:0", runtime).expect("bind");
    let addr = server.local_addr();

    let mut owner = TcpStream::connect(addr).expect("owner connect");
    let owner_req = HandshakeRequest::new(WireFormat::JsonLines)
        .query(queries[0])
        .retain_bytes(1 << 20)
        .stream_id(43);
    register(&mut owner, &owner_req).expect("owner accepted");

    let mut bad = TcpStream::connect(addr).expect("bad connect");
    let bad_req = HandshakeRequest::new(WireFormat::JsonLines).query("//item[").stream_id(43);
    let err = register(&mut bad, &bad_req).expect_err("malformed query refused");
    match err {
        ClientError::Rejected(reason) => assert!(!reason.is_empty()),
        other => panic!("expected a structured rejection, got {other:?}"),
    }

    // The stream the reject bounced off still serves its owner losslessly.
    for piece in doc.chunks(4096) {
        owner.write_all(piece).expect("owner write");
    }
    owner.shutdown(Shutdown::Write).expect("owner half-close");
    let owner_frames = read_frames(owner, WireFormat::JsonLines);
    assert_frames_match(&owner_frames, expected, Some(&doc));
    server.shutdown();
}

#[test]
fn attach_with_a_bad_query_is_rejected_reactor() {
    attach_with_a_bad_query_is_rejected_without_harming_the_stream(ServerMode::default());
}

#[test]
fn attach_with_a_bad_query_is_rejected_thread_per_conn() {
    attach_with_a_bad_query_is_rejected_without_harming_the_stream(ServerMode::ThreadPerConn);
}

/// Once the owner finishes, the id names nothing: the next connection with
/// the same id is a fresh owner, not an attacher.
fn a_finished_stream_id_is_reusable_by_a_fresh_owner(mode: ServerMode) {
    let queries = ["//item/k"];
    let doc = Arc::new(make_doc(40));
    let expected = batch_reference(&queries, &doc);

    let runtime = Arc::new(Runtime::builder().workers(1).build());
    let server = TcpServer::builder().mode(mode).bind("127.0.0.1:0", runtime).expect("bind");
    let addr = server.local_addr();

    for round in 0..2 {
        let request = HandshakeRequest::new(WireFormat::JsonLines)
            .query(queries[0])
            .retain_bytes(1 << 20)
            .stream_id(44);
        let mut conn = TcpStream::connect(addr).expect("connect");
        let reg = register(&mut conn, &request).expect("accepted");
        assert!(!reg.attached, "round {round}: a dead id makes a fresh owner");
        for piece in doc.chunks(4096) {
            conn.write_all(piece).expect("write");
        }
        conn.shutdown(Shutdown::Write).expect("half-close");
        let frames = read_frames(conn, WireFormat::JsonLines);
        assert_frames_match(&frames, expected.clone(), Some(&doc));
    }
    server.shutdown();
}

#[test]
fn a_finished_stream_id_is_reusable_reactor() {
    a_finished_stream_id_is_reusable_by_a_fresh_owner(ServerMode::default());
}

#[test]
fn a_finished_stream_id_is_reusable_thread_per_conn() {
    a_finished_stream_id_is_reusable_by_a_fresh_owner(ServerMode::ThreadPerConn);
}
