//! Session orchestration: the feeder (splitter stage), the joiner stage, and
//! the per-session handles.
//!
//! A session's dataflow is
//!
//! ```text
//! Read source ──► Feeder (window split, chunk split) ──► shared WorkerPool
//!                                                             │ out of order
//!                                                             ▼
//!                 MatchSink ◄── Joiner (prefix fold, span resolve, filter)
//! ```
//!
//! The feeder runs on the thread that pushes bytes (the caller's, or a
//! spawned driver for the iterator API); the joiner runs on its own thread;
//! the workers are shared across sessions. Every stage is connected by a
//! bounded hand-off — the in-flight credit scheme — so a slow sink stalls the
//! feeder rather than growing queues.

use crate::filters::FilterBank;
use crate::pool::{Job, SessionCore, WorkerPool};
use crate::resolver::{SpanEvent, SpanResolver};
use crate::sink::{MatchSink, OnlineMatch};
use crate::stats::RuntimeStats;
use ppt_core::join::PrefixFolder;
use ppt_xmlstream::{split_chunks, SharedWindow, WindowSplitter};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Final accounting of one completed session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Runtime statistics at completion.
    pub stats: RuntimeStats,
    /// Result matches emitted per query (the order queries were added).
    pub match_counts: Vec<usize>,
    /// Basic sub-query matches attributed to each query before filtering.
    pub submatch_counts: Vec<usize>,
    /// Why the session aborted early (a worker panicked on its data), if it
    /// did. Matches emitted before the failure were delivered; the counts
    /// above cover only the processed prefix.
    pub error: Option<String>,
}

/// The splitter stage: windows the byte stream and submits chunk jobs.
pub(crate) struct Feeder {
    core: Arc<SessionCore>,
    splitter: WindowSplitter,
    chunk_size: usize,
    next_seq: u64,
    finished: bool,
}

impl Feeder {
    pub fn new(core: Arc<SessionCore>) -> Feeder {
        let config = core.engine.config();
        let (window_size, chunk_size) = (config.window_size, config.chunk_size);
        Feeder {
            core,
            splitter: WindowSplitter::new(window_size),
            chunk_size,
            next_seq: 0,
            finished: false,
        }
    }

    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// Pushes stream bytes, submitting every window that completes. May block
    /// on backpressure. Bytes fed after the session died are dropped.
    pub fn feed(&mut self, pool: &WorkerPool, bytes: &[u8]) {
        debug_assert!(!self.finished, "feed after finish");
        if self.core.is_dead() {
            return;
        }
        self.splitter.push(bytes);
        while let Some(window) = self.splitter.pop_shared() {
            self.submit_window(pool, window);
        }
    }

    /// Flushes the tail window and announces the final chunk count to the
    /// joiner. Idempotent.
    pub fn finish(&mut self, pool: &WorkerPool) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(window) = self.splitter.finish_shared() {
            if !self.core.is_dead() {
                self.submit_window(pool, window);
            }
        }
        self.core.announce_total(self.next_seq);
    }

    fn submit_window(&mut self, pool: &WorkerPool, window: SharedWindow) {
        let counters = &self.core.counters;
        counters.windows.fetch_add(1, Ordering::Relaxed);
        counters.bytes_in.fetch_add(window.len() as u64, Ordering::Relaxed);
        if let Some(ring) = &self.core.ring {
            // Clone-on-retain: the ring takes a refcount on the same bytes
            // the chunk jobs slice into. The byte budget evicts inside push.
            let (mut guard, poisoned) = crate::pool::lock_recover(ring);
            if poisoned {
                // A panic under the ring lock concerns this session only:
                // kill it and stop feeding instead of unwinding the caller.
                drop(guard);
                self.core.poison("retention ring lock poisoned".to_string());
                return;
            }
            let (evicted, retained) = (guard.push(window.clone()), guard.retained_bytes());
            drop(guard);
            counters.windows_evicted.fetch_add(evicted.windows, Ordering::Relaxed);
            counters.bytes_evicted.fetch_add(evicted.bytes, Ordering::Relaxed);
            counters.peak_retained_bytes.fetch_max(retained, Ordering::Relaxed);
        }
        for chunk in split_chunks(window.bytes(), self.chunk_size) {
            // Backpressure: wait for the joiner to return a credit before
            // admitting another chunk into the pipeline.
            if !self.core.acquire_credit() {
                return; // session died while we were blocked
            }
            counters.chunks_submitted.fetch_add(1, Ordering::Relaxed);
            pool.submit(Job {
                session: Arc::clone(&self.core),
                window: window.clone(),
                range: chunk.range,
                seq: self.next_seq,
                first: self.next_seq == 0,
            });
            self.next_seq += 1;
        }
    }
}

/// Runs [`joiner_loop`] with a panic guard: a panic anywhere in the joiner
/// stage — most likely a [`MatchSink`] implementation — poisons the session
/// first, so the feeder (possibly blocked on credits) and the workers wind
/// down instead of deadlocking, and the payload is handed back for the
/// session's owner thread to resume.
pub(crate) fn joiner_guarded(
    core: &SessionCore,
    sink: &mut dyn MatchSink,
) -> Result<SessionReport, Box<dyn std::any::Any + Send>> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| joiner_loop(core, sink)));
    if let Err(panic) = &result {
        // A panic that unwound out of a sink delivery leaves `delivering`
        // set: that match was handed over but never completed — count it as
        // dropped, not delivered.
        if core.counters.delivering.swap(false, Ordering::Relaxed) {
            core.counters.dropped_matches.fetch_add(1, Ordering::Relaxed);
        }
        core.poison(format!("joiner stage panicked: {}", crate::pool::panic_message(&**panic)));
    }
    result
}

/// The joiner stage: folds chunk outputs in order the moment each next-in-line
/// chunk completes, resolves spans, filters, and pushes matches into the sink.
/// Runs until the feeder has announced the total and every chunk is folded.
pub(crate) fn joiner_loop(core: &SessionCore, sink: &mut dyn MatchSink) -> SessionReport {
    let engine = &core.engine;
    let plan = engine.plan();
    let mut folder = PrefixFolder::new(engine.transducer());
    let mut resolver = SpanResolver::new(core.resolve_spans);
    let mut bank = FilterBank::new(plan, core.resolve_spans);
    let mut events: Vec<SpanEvent> = Vec::new();

    // Pushes drained span events (and, at the end of the stream, the final
    // filter flush) into the sink, counting emissions. One code path for the
    // steady-state loop and the finish step so the accounting cannot diverge.
    let drain_events = |events: &mut Vec<SpanEvent>,
                        bank: &mut FilterBank,
                        sink: &mut dyn MatchSink,
                        flush: bool| {
        let counters = &core.counters;
        let mut emit = |m: OnlineMatch| {
            // `delivering` flags the window during which the match is in the
            // sink's hands: if the sink *panics* there, the panic guard
            // converts the flag into a dropped count (see `joiner_guarded`),
            // so `matches` only ever counts completed deliveries — without
            // live stats transiently reporting a phantom drop on the healthy
            // path.
            counters.delivering.store(true, Ordering::Relaxed);
            let delivered = sink.on_match(m);
            counters.delivering.store(false, Ordering::Relaxed);
            if delivered {
                counters.matches.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.dropped_matches.fetch_add(1, Ordering::Relaxed);
            }
        };
        for event in events.drain(..) {
            bank.on_event(plan, &event, &mut emit);
        }
        if flush {
            bank.finish(plan, &mut emit);
        }
    };

    let mut seq = 0u64;
    while let Some(out) = core.wait_for(seq) {
        let folded_upto = out.end_offset;
        let mut delta = folder.fold(out.mapping, out.depth_delta, out.ladder);
        let matches = delta.take_resolved_matches();
        core.counters.submatches.fetch_add(matches.len() as u64, Ordering::Relaxed);
        resolver.feed(matches, &delta.ladder, &mut events);
        if !events.is_empty() {
            drain_events(&mut events, &mut bank, &mut *sink, false);
        }
        if let Some(ring) = &core.ring {
            // Everything below the fold frontier is final — except spans
            // still open in the resolver or buffered in an unclosed anchor
            // scope, which will be materialized later. Windows entirely
            // below the earliest such offset can never be needed again.
            let frontier = folded_upto
                .min(resolver.min_pending_pos().unwrap_or(usize::MAX))
                .min(bank.min_buffered_pos().unwrap_or(usize::MAX));
            let (mut guard, poisoned) = crate::pool::lock_recover(ring);
            guard.release_below(frontier);
            drop(guard);
            if poisoned {
                // Kill this session only; the next `wait_for` sees the
                // poison and ends the loop.
                core.poison("retention ring lock poisoned".to_string());
            }
        }
        core.counters.chunks_joined.fetch_add(1, Ordering::Relaxed);
        core.release_credit();
        seq += 1;
    }

    let error = core.poison_message();
    if error.is_none() {
        // Stream ended cleanly: cap unclosed elements at the stream length
        // and flush any scope still open. On an abort this step is skipped —
        // `bytes_in` may count windows that were never transduced, and
        // closing pending matches at invented offsets would fabricate
        // results the stream never produced.
        let total_len = core.counters.bytes_in.load(Ordering::Relaxed) as usize;
        resolver.finish(total_len, &mut events);
        drain_events(&mut events, &mut bank, &mut *sink, true);
    }
    if let Some(ring) = &core.ring {
        // The stream is over and every match was delivered (or dropped):
        // free the retained windows before the report is taken. Poisoning is
        // ignored on this final cleanup — the ring is about to be dropped.
        crate::pool::lock_recover(ring).0.release_below(usize::MAX);
    }

    SessionReport {
        stats: core.counters.snapshot(),
        match_counts: bank.match_counts,
        submatch_counts: bank.submatch_counts,
        error,
    }
}

/// A live query session with an owned sink (push API).
///
/// Obtained from [`crate::Runtime::open_session`]. Feed stream bytes with
/// [`SessionHandle::feed`] — arbitrary read sizes, no alignment required —
/// and call [`SessionHandle::finish`] to flush, drain the pipeline and get
/// the [`SessionReport`] plus the sink back.
pub struct SessionHandle {
    pub(crate) feeder: Feeder,
    pub(crate) pool: Arc<WorkerPool>,
    #[allow(clippy::type_complexity)]
    pub(crate) joiner: Option<
        std::thread::JoinHandle<(
            Result<SessionReport, Box<dyn std::any::Any + Send>>,
            Box<dyn MatchSink>,
        )>,
    >,
}

impl SessionHandle {
    /// Pushes stream bytes into the pipeline. Blocks while backpressured.
    /// Bytes fed after the session died (see [`SessionReport::error`]) are
    /// dropped.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.feeder.feed(&self.pool, bytes);
    }

    /// `true` once the session aborted (a pipeline stage panicked); callers
    /// driving a long-lived source should stop feeding.
    pub fn is_dead(&self) -> bool {
        self.feeder.core().is_dead()
    }

    /// A live snapshot of the session's statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.feeder.core().counters.snapshot()
    }

    /// Ends the stream: flushes the tail, waits for the joiner to drain every
    /// in-flight chunk, and returns the final report together with the sink.
    ///
    /// A panic raised inside the joiner stage (most likely by the sink) is
    /// resumed here, on the session owner's thread.
    pub fn finish(mut self) -> (SessionReport, Box<dyn MatchSink>) {
        self.feeder.finish(&self.pool);
        let (result, sink) =
            self.joiner.take().expect("finish called once").join().expect("joiner thread died");
        match result {
            Ok(report) => (report, sink),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        // Unblock the joiner if the handle is dropped without finish().
        if let Some(joiner) = self.joiner.take() {
            self.feeder.finish(&self.pool);
            let _ = joiner.join();
        }
    }
}
