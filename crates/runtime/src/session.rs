//! Session orchestration: the feeder (splitter stage), the joiner stage, and
//! the per-session handles.
//!
//! A session's dataflow is
//!
//! ```text
//! Read source ──► Feeder (window split, chunk split) ──► shared WorkerPool
//!                                                             │ out of order
//!                                                             ▼
//!                 MatchSink ◄── Joiner (prefix fold, span resolve, filter)
//! ```
//!
//! The feeder runs on the thread that pushes bytes (the caller's, or a
//! spawned driver for the iterator API); the joiner runs on its own thread;
//! the workers are shared across sessions. Every stage is connected by a
//! bounded hand-off — the in-flight credit scheme — so a slow sink stalls the
//! feeder rather than growing queues.

use crate::filters::FilterBank;
use crate::pool::{EngineSwap, Job, SessionCore, WorkerPool};
use crate::resolver::{SpanEvent, SpanResolver};
use crate::sink::{MatchSink, OnlineMatch};
use crate::stats::RuntimeStats;
use ppt_core::chunk::ChunkOutput;
use ppt_core::join::PrefixFolder;
use ppt_xmlstream::{split_chunks, SharedWindow, WindowSplitter};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Final accounting of one completed session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Runtime statistics at completion.
    pub stats: RuntimeStats,
    /// Result matches emitted per query (the order queries were added).
    pub match_counts: Vec<usize>,
    /// Basic sub-query matches attributed to each query before filtering.
    pub submatch_counts: Vec<usize>,
    /// Why the session aborted early (a worker panicked on its data), if it
    /// did. Matches emitted before the failure were delivered; the counts
    /// above cover only the processed prefix.
    pub error: Option<String>,
}

/// One chunk waiting for an in-flight credit before it can be submitted.
struct PendingChunk {
    window: SharedWindow,
    range: Range<usize>,
    /// The engine in force when the chunk was produced. Captured at enqueue
    /// time so a later [`Feeder::swap_engine`] cannot retroactively move
    /// already-windowed chunks onto the new automaton (their fold state
    /// belongs to the old one).
    engine: Arc<ppt_core::Engine>,
    /// First chunk of its window: submitting it is the moment the window is
    /// pushed into the retention ring. Retaining at *submission* (not when
    /// the splitter popped the window) keeps the ring's occupancy coupled to
    /// the credit scheme — a deep pending queue must not flood the ring with
    /// windows whose chunks cannot fold yet.
    first_of_window: bool,
}

/// Tracks the stream's open-tag path across the windows the feeder has
/// enqueued — the replay seed for a mid-stream engine swap.
///
/// Mirrors the transducer's stack discipline exactly: an opening tag pushes
/// its name, a closing tag pops *if the stack is non-empty* (a stray close on
/// an empty stack leaves the sequential execution's state unchanged, so it
/// must leave the path unchanged too). Only maintained for sessions that opt
/// into engine swaps ([`crate::SessionOptions::track_open_path`]) — it costs
/// one extra tags-only lex per window.
struct TagPathTracker {
    path: Vec<Vec<u8>>,
}

impl TagPathTracker {
    fn new() -> TagPathTracker {
        TagPathTracker { path: Vec::new() }
    }

    fn consume(&mut self, bytes: &[u8]) {
        for ev in ppt_xmlstream::Lexer::tags_only(bytes) {
            match ev {
                ppt_xmlstream::XmlEvent::Open { name, .. } => self.path.push(name.to_vec()),
                ppt_xmlstream::XmlEvent::Close { .. } => {
                    self.path.pop();
                }
                _ => {}
            }
        }
    }
}

/// The splitter stage: windows the byte stream and submits chunk jobs.
///
/// Two driving disciplines share this struct:
///
/// * **Blocking** ([`Feeder::feed`]/[`Feeder::finish`]) — the classic
///   reader-driven entry points: a chunk that cannot get a credit parks the
///   calling thread on the credit condvar.
/// * **Non-blocking** ([`Feeder::feed_nonblocking`],
///   [`Feeder::request_finish`], [`Feeder::pump_nonblocking`]) — the
///   reactor's discipline: chunks that cannot get a credit stay in a pending
///   queue, the call returns `Blocked`, and the driver retries after the
///   joiner returns a credit ([`crate::pool::SessionEvents::on_credit`]).
///   A blocked feeder is the signal to stop reading the connection — that is
///   how socket backpressure propagates without wedging the reactor thread.
pub(crate) struct Feeder {
    core: Arc<SessionCore>,
    splitter: WindowSplitter,
    chunk_size: usize,
    next_seq: u64,
    pending: VecDeque<PendingChunk>,
    finish_requested: bool,
    announced: bool,
    /// The engine stamped on newly enqueued chunks (starts as the session's
    /// compile-time engine, replaced by [`Feeder::swap_engine`]).
    engine: Arc<ppt_core::Engine>,
    /// Open-tag path over the enqueued windows; `None` unless the session
    /// opted into engine swaps.
    path: Option<TagPathTracker>,
}

/// Whether a non-blocking feed landed every chunk or left some pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FeedProgress {
    /// Every produced chunk was submitted; keep feeding.
    Drained,
    /// Chunks are pending on backpressure; stop reading the source and call
    /// [`Feeder::pump_nonblocking`] after the next credit return.
    Blocked,
}

impl Feeder {
    pub fn new(core: Arc<SessionCore>) -> Feeder {
        let config = core.engine.config();
        let (window_size, chunk_size) = (config.window_size, config.chunk_size);
        let engine = Arc::clone(&core.engine);
        let path = core.track_open_path.then(TagPathTracker::new);
        Feeder {
            core,
            splitter: WindowSplitter::new(window_size),
            chunk_size,
            next_seq: 0,
            pending: VecDeque::new(),
            finish_requested: false,
            announced: false,
            engine,
            path,
        }
    }

    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// Replaces the session's engine at the next chunk boundary: chunks not
    /// yet windowed (including splitter tail bytes) run on `engine`, chunks
    /// already enqueued or in flight finish on the old one, and the joiner is
    /// told where the boundary falls and which tags are open there so it can
    /// reconstruct the new automaton's fold state.
    ///
    /// Requires [`crate::SessionOptions::track_open_path`]; panics otherwise
    /// (the boundary path would be unknown).
    pub fn swap_engine(&mut self, engine: Arc<ppt_core::Engine>) {
        // UNWRAP-OK: documented contract — the only callers are shared
        // streams, which force `track_open_path` at open time.
        let tracker =
            self.path.as_ref().expect("swap_engine requires SessionOptions::track_open_path");
        let swap_seq = self.next_seq + self.pending.len() as u64;
        self.core.schedule_swap(
            swap_seq,
            EngineSwap { engine: Arc::clone(&engine), open_path: tracker.path.clone() },
        );
        self.engine = engine;
    }

    /// Pushes stream bytes, submitting every window that completes. May block
    /// on backpressure. Bytes fed after the session died are dropped.
    pub fn feed(&mut self, pool: &WorkerPool, bytes: &[u8]) {
        self.push_bytes(bytes);
        self.pump(pool, true);
    }

    /// Flushes the tail window and announces the final chunk count to the
    /// joiner. Idempotent.
    pub fn finish(&mut self, pool: &WorkerPool) {
        self.request_finish();
        self.pump(pool, true);
    }

    /// Non-blocking [`Feeder::feed`]: windows and enqueues the bytes, then
    /// submits as many chunks as there are credits available right now.
    pub fn feed_nonblocking(&mut self, pool: &WorkerPool, bytes: &[u8]) -> FeedProgress {
        self.push_bytes(bytes);
        self.pump(pool, false)
    }

    /// Declares end of input without blocking: the splitter's tail window is
    /// flushed into the pending queue. The final chunk total is announced by
    /// the pump once the queue drains — keep calling
    /// [`Feeder::pump_nonblocking`] until it reports `Drained`.
    pub fn request_finish(&mut self) {
        if self.finish_requested {
            return;
        }
        self.finish_requested = true;
        if let Some(window) = self.splitter.finish_shared() {
            if !self.core.is_dead() {
                self.enqueue_window(window);
            }
        }
    }

    /// Retries pending submissions without blocking (call after a credit
    /// came back).
    pub fn pump_nonblocking(&mut self, pool: &WorkerPool) -> FeedProgress {
        self.pump(pool, false)
    }

    /// `true` while chunks are queued waiting for credits — the non-blocking
    /// driver must not read more input.
    pub fn is_blocked(&self) -> bool {
        !self.pending.is_empty() && !self.core.is_dead()
    }

    /// Splits new bytes into windows and enqueues their chunks.
    fn push_bytes(&mut self, bytes: &[u8]) {
        debug_assert!(!self.finish_requested, "feed after finish");
        if self.core.is_dead() {
            self.pending.clear();
            return;
        }
        let split_started = std::time::Instant::now();
        self.splitter.push(bytes);
        while let Some(window) = self.splitter.pop_shared() {
            self.enqueue_window(window);
        }
        self.core.telemetry.split_nanos.record_duration(split_started.elapsed());
    }

    /// Accounts a completed window and queues its chunks for submission.
    fn enqueue_window(&mut self, window: SharedWindow) {
        let counters = &self.core.counters;
        // RELAXED-OK: every reader (joiner finalize, stats snapshot) is
        // ordered after these writes by the queue/mailbox mutex chain.
        counters.windows.fetch_add(1, Ordering::Relaxed);
        // RELAXED-OK: same mutex-chain ordering as `windows` above.
        counters.bytes_in.fetch_add(window.len() as u64, Ordering::Relaxed);
        if let Some(tracker) = &mut self.path {
            tracker.consume(window.bytes());
        }
        let mut first = true;
        for chunk in split_chunks(window.bytes(), self.chunk_size) {
            self.core.telemetry.chunk_bytes.record(chunk.range.len() as u64);
            self.pending.push_back(PendingChunk {
                window: window.clone(),
                range: chunk.range,
                engine: Arc::clone(&self.engine),
                first_of_window: first,
            });
            first = false;
        }
    }

    /// Pushes `window` into the retention ring (clone-on-retain: the ring
    /// takes a refcount on the same bytes the chunk jobs slice into; the
    /// byte budget evicts inside push). Returns `false` when the ring lock
    /// was poisoned — the session is dead.
    fn retain_window(&self, window: &SharedWindow) -> bool {
        let Some(ring) = &self.core.ring else { return true };
        let counters = &self.core.counters;
        let (mut guard, poisoned) = crate::pool::lock_recover(ring);
        if poisoned {
            // A panic under the ring lock concerns this session only:
            // kill it and stop feeding instead of unwinding the caller.
            drop(guard);
            self.core.poison("retention ring lock poisoned".to_string());
            return false;
        }
        let (evicted, retained) = (guard.push(window.clone()), guard.retained_bytes());
        drop(guard);
        // RELAXED-OK: monotonic stat counters; order nothing.
        counters.windows_evicted.fetch_add(evicted.windows, Ordering::Relaxed);
        // RELAXED-OK: monotonic stat counter; orders nothing.
        counters.bytes_evicted.fetch_add(evicted.bytes, Ordering::Relaxed);
        // RELAXED-OK: racy high-watermark stat; orders nothing.
        counters.peak_retained_bytes.fetch_max(retained, Ordering::Relaxed);
        self.core.telemetry.ring_occupancy_bytes.record(retained as u64);
        true
    }

    /// Submits pending chunks in order, one credit each. `blocking` parks on
    /// the credit condvar; non-blocking stops at the first missing credit.
    /// Announces the chunk total once the stream ended and the queue drained.
    fn pump(&mut self, pool: &WorkerPool, blocking: bool) -> FeedProgress {
        while !self.pending.is_empty() {
            if self.core.is_dead() {
                self.pending.clear();
                break;
            }
            // Backpressure: wait for the joiner to return a credit before
            // admitting another chunk into the pipeline.
            let admitted =
                if blocking { self.core.acquire_credit() } else { self.core.try_acquire_credit() };
            if !admitted {
                if self.core.is_dead() {
                    self.pending.clear();
                    break;
                }
                debug_assert!(!blocking, "blocking acquire fails only on death");
                return FeedProgress::Blocked;
            }
            // UNWRAP-OK: the enclosing loop only runs while `pending` is
            // non-empty (checked at the top of each iteration).
            let chunk = self.pending.pop_front().expect("pending is non-empty");
            if chunk.first_of_window && !self.retain_window(&chunk.window) {
                self.core.release_credit();
                self.pending.clear();
                break;
            }
            // Release pairs with the reactor's Acquire reads in its
            // pipeline-stall liveness verdict (`expire_idle`): a submission
            // observed there must also carry the chunk state before it.
            self.core.counters.chunks_submitted.fetch_add(1, Ordering::Release);
            pool.submit(Job {
                session: Arc::clone(&self.core),
                engine: chunk.engine,
                window: chunk.window,
                range: chunk.range,
                seq: self.next_seq,
                first: self.next_seq == 0,
            });
            self.next_seq += 1;
        }
        if self.finish_requested && !self.announced {
            self.announced = true;
            self.core.announce_total(self.next_seq);
        }
        FeedProgress::Drained
    }
}

/// Runs [`joiner_loop`] with a panic guard: a panic anywhere in the joiner
/// stage — most likely a [`MatchSink`] implementation — poisons the session
/// first, so the feeder (possibly blocked on credits) and the workers wind
/// down instead of deadlocking, and the payload is handed back for the
/// session's owner thread to resume.
pub(crate) fn joiner_guarded(
    core: &SessionCore,
    sink: &mut dyn MatchSink,
) -> Result<SessionReport, Box<dyn std::any::Any + Send>> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| joiner_loop(core, sink)));
    if let Err(panic) = &result {
        // A panic that unwound out of a sink delivery leaves `delivering`
        // set: that match was handed over but never completed — count it as
        // dropped, not delivered.
        // AcqRel: the swap decides *which thread* accounts the in-flight
        // delivery as dropped (see the same protocol in reactor::abort);
        // the winner must also observe the state written before the flag.
        if core.counters.delivering.swap(false, Ordering::AcqRel) {
            // RELAXED-OK: stat counter; the swap above already arbitrates.
            core.counters.dropped_matches.fetch_add(1, Ordering::Relaxed);
        }
        core.poison(format!("joiner stage panicked: {}", crate::pool::panic_message(&**panic)));
    }
    result
}

/// The joiner stage as an explicit state machine: folds chunk outputs in
/// order, resolves spans, filters, and pushes matches into the sink.
///
/// Two drivers share it:
///
/// * [`joiner_loop`] parks on the mailbox condvar between chunks — the
///   classic one-thread-per-session joiner;
/// * the reactor's join executor calls [`JoinerState::fold_one`] /
///   [`JoinerState::finalize`] from a small shared pool, polling the mailbox
///   with [`SessionCore::try_take`] — hundreds of sessions, a handful of
///   threads, nothing ever blocked.
pub(crate) struct JoinerState {
    /// The engine currently folding the stream. Starts as the session's
    /// compile-time engine; replaced when an [`EngineSwap`] boundary is
    /// crossed (a subscriber attached new queries to a shared stream).
    engine: Arc<ppt_core::Engine>,
    folder: PrefixFolder,
    resolver: SpanResolver,
    bank: FilterBank,
    events: Vec<SpanEvent>,
    seq: u64,
}

impl JoinerState {
    pub fn new(core: &SessionCore) -> JoinerState {
        let engine = Arc::clone(&core.engine);
        JoinerState {
            folder: PrefixFolder::new(engine.transducer()),
            resolver: SpanResolver::new(core.resolve_spans),
            bank: FilterBank::new(engine.plan(), core.resolve_spans),
            events: Vec::new(),
            seq: 0,
            engine,
        }
    }

    /// The sequence number of the next chunk this joiner needs.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Crosses an engine-swap boundary: rebuild the fold state for the new
    /// (merged) transducer by replaying the open-tag path — states and
    /// stacks of the old automaton mean nothing to the new one — and extend
    /// the filter bank with the appended queries. The span resolver carries
    /// over untouched (it tracks byte offsets, not automaton state), so
    /// spans opened before the swap still resolve for pre-swap subscribers.
    fn apply_swap(&mut self, swap: EngineSwap) {
        self.folder = PrefixFolder::resume(
            swap.engine.transducer(),
            swap.open_path.iter().map(|name| name.as_slice()),
            self.folder.chunks(),
        );
        self.bank.extend(swap.engine.plan());
        self.engine = swap.engine;
    }

    /// Folds one **in-order** chunk output: fold, resolve, filter, emit,
    /// release the retained windows below the new frontier, and return the
    /// chunk's credit.
    pub fn fold_one(&mut self, core: &SessionCore, sink: &mut dyn MatchSink, out: ChunkOutput) {
        if let Some(swap) = core.take_swap_through(self.seq) {
            self.apply_swap(swap);
        }
        let fold_started = std::time::Instant::now();
        let folded_upto = out.end_offset;
        let mut delta = self.folder.fold(out.mapping, out.depth_delta, out.ladder);
        let matches = delta.take_resolved_matches();
        // RELAXED-OK: monotonic stat counter; orders nothing.
        core.counters.submatches.fetch_add(matches.len() as u64, Ordering::Relaxed);
        self.resolver.feed(matches, &delta.ladder, &mut self.events);
        if !self.events.is_empty() {
            self.drain_events(core, sink, false);
        }
        if let Some(ring) = &core.ring {
            // Everything below the fold frontier is final — except spans
            // still open in the resolver or buffered in an unclosed anchor
            // scope, which will be materialized later. Windows entirely
            // below the earliest such offset can never be needed again.
            let frontier = folded_upto
                .min(self.resolver.min_pending_pos().unwrap_or(usize::MAX))
                .min(self.bank.min_buffered_pos().unwrap_or(usize::MAX));
            let (mut guard, poisoned) = crate::pool::lock_recover(ring);
            let released = guard.release_below(frontier);
            let retained = guard.retained_bytes();
            drop(guard);
            if released > 0 {
                // Sample the drain side of the occupancy histogram too —
                // push-only sampling would bias it toward the high-water mark.
                core.telemetry.ring_occupancy_bytes.record(retained as u64);
            }
            if poisoned {
                // Kill this session only; the next mailbox poll sees the
                // poison and finalizes.
                core.poison("retention ring lock poisoned".to_string());
            }
        }
        // Release pairs with the reactor's Acquire reads in its
        // pipeline-stall liveness verdict (`expire_idle`).
        core.counters.chunks_joined.fetch_add(1, Ordering::Release);
        core.telemetry.fold_nanos.record_duration(fold_started.elapsed());
        core.release_credit();
        self.seq += 1;
    }

    /// Ends the join: flushes the resolver and filter state (clean end only),
    /// frees the retained windows and takes the final report. Call exactly
    /// once, after the mailbox reported the stream ended or the session died.
    pub fn finalize(&mut self, core: &SessionCore, sink: &mut dyn MatchSink) -> SessionReport {
        let finalize_started = std::time::Instant::now();
        // A swap scheduled at the very end of the stream (a subscriber that
        // attached after the last byte) never sees a chunk fold; apply it
        // here so the final report's per-query counts cover every query the
        // stream ended with.
        if let Some(swap) = core.take_swap_through(u64::MAX) {
            self.apply_swap(swap);
        }
        let error = core.poison_message();
        if error.is_none() {
            // Stream ended cleanly: cap unclosed elements at the stream
            // length and flush any scope still open. On an abort this step
            // is skipped — `bytes_in` may count windows that were never
            // transduced, and closing pending matches at invented offsets
            // would fabricate results the stream never produced.
            // RELAXED-OK: the feeder's writes are ordered before this read
            // by the mailbox mutex (finish() announces the total under it).
            let total_len = core.counters.bytes_in.load(Ordering::Relaxed) as usize;
            self.resolver.finish(total_len, &mut self.events);
            self.drain_events(core, sink, true);
        }
        if let Some(ring) = &core.ring {
            // The stream is over and every match was delivered (or dropped):
            // free the retained windows before the report is taken.
            // Poisoning is ignored on this final cleanup — the ring is about
            // to be dropped.
            crate::pool::lock_recover(ring).0.release_below(usize::MAX);
        }
        core.telemetry.finalize_nanos.record_duration(finalize_started.elapsed());
        SessionReport {
            stats: core.counters.snapshot(),
            match_counts: std::mem::take(&mut self.bank.match_counts),
            submatch_counts: std::mem::take(&mut self.bank.submatch_counts),
            error,
        }
    }

    /// Pushes drained span events (and, at the end of the stream, the final
    /// filter flush) into the sink, counting emissions. One code path for
    /// the steady-state fold and the finish step so the accounting cannot
    /// diverge.
    fn drain_events(&mut self, core: &SessionCore, sink: &mut dyn MatchSink, flush: bool) {
        let plan = self.engine.plan();
        let counters = &core.counters;
        let bank = &mut self.bank;
        let mut emit = |m: OnlineMatch| {
            // `delivering` flags the window during which the match is in the
            // sink's hands: if the sink *panics* there, the panic guard
            // converts the flag into a dropped count (see `joiner_guarded`),
            // so `matches` only ever counts completed deliveries — without
            // live stats transiently reporting a phantom drop on the healthy
            // path.
            // Release on both edges: a poisoning thread that swaps the flag
            // (AcqRel) must observe the delivery state written before it.
            counters.delivering.store(true, Ordering::Release);
            let delivered = sink.on_match(m);
            counters.delivering.store(false, Ordering::Release);
            if delivered {
                // RELAXED-OK: stat counter; orders nothing.
                counters.matches.fetch_add(1, Ordering::Relaxed);
            } else {
                // RELAXED-OK: stat counter; orders nothing.
                counters.dropped_matches.fetch_add(1, Ordering::Relaxed);
            }
        };
        for event in self.events.drain(..) {
            bank.on_event(plan, &event, &mut emit);
        }
        if flush {
            bank.finish(plan, &mut emit);
        }
    }
}

/// The joiner stage driven to completion on the calling thread, parking on
/// the mailbox condvar between chunks.
pub(crate) fn joiner_loop(core: &SessionCore, sink: &mut dyn MatchSink) -> SessionReport {
    let mut state = JoinerState::new(core);
    while let Some(out) = core.wait_for(state.next_seq()) {
        state.fold_one(core, sink, out);
    }
    state.finalize(core, sink)
}

/// A live query session with an owned sink (push API).
///
/// Obtained from [`crate::Runtime::open_session`]. Feed stream bytes with
/// [`SessionHandle::feed`] — arbitrary read sizes, no alignment required —
/// and call [`SessionHandle::finish`] to flush, drain the pipeline and get
/// the [`SessionReport`] plus the sink back.
pub struct SessionHandle {
    pub(crate) feeder: Feeder,
    pub(crate) pool: Arc<WorkerPool>,
    #[allow(clippy::type_complexity)]
    pub(crate) joiner: Option<
        std::thread::JoinHandle<(
            Result<SessionReport, Box<dyn std::any::Any + Send>>,
            Box<dyn MatchSink>,
        )>,
    >,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("finish_pending", &self.joiner.is_some())
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// Pushes stream bytes into the pipeline. Blocks while backpressured.
    /// Bytes fed after the session died (see [`SessionReport::error`]) are
    /// dropped.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.feeder.feed(&self.pool, bytes);
    }

    /// `true` once the session aborted (a pipeline stage panicked); callers
    /// driving a long-lived source should stop feeding.
    pub fn is_dead(&self) -> bool {
        self.feeder.core().is_dead()
    }

    /// A live snapshot of the session's statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.feeder.core().counters.snapshot()
    }

    /// Ends the stream: flushes the tail, waits for the joiner to drain every
    /// in-flight chunk, and returns the final report together with the sink.
    ///
    /// A panic raised inside the joiner stage (most likely by the sink) is
    /// resumed here, on the session owner's thread.
    pub fn finish(mut self) -> (SessionReport, Box<dyn MatchSink>) {
        self.feeder.finish(&self.pool);
        // UNWRAP-OK: `finish` consumes `self`, and `Drop` (the only other
        // taker) has not run yet — the joiner handle is always present.
        let joiner = self.joiner.take().expect("finish called once");
        let (result, sink) = match joiner.join() {
            Ok(pair) => pair,
            // `joiner_guarded` catches sink panics; a failed join means a
            // panic escaped the guard — re-raise it here, like any other.
            Err(panic) => std::panic::resume_unwind(panic),
        };
        match result {
            Ok(report) => (report, sink),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        // Unblock the joiner if the handle is dropped without finish().
        if let Some(joiner) = self.joiner.take() {
            self.feeder.finish(&self.pool);
            let _ = joiner.join();
        }
    }
}
