//! The wire protocol: serializing materialized matches for network clients.
//!
//! Two framings over the same [`Frame`] payload, chosen per connection:
//!
//! * **JSON lines** — one JSON object per `\n`-terminated line, for humans,
//!   scripts and anything that speaks JSON:
//!
//!   ```json
//!   {"stream":7,"query":0,"start":1024,"end":1061,"depth":4,"payload":"<k>v</k>"}
//!   ```
//!
//!   The payload is XML *bytes*, not guaranteed UTF-8, while JSON strings
//!   must be. The encoder therefore maps bytes to the string bijectively:
//!   printable ASCII stays literal (`"` and `\` escaped), every other byte
//!   becomes `\u00XX` (plus the `\n`/`\r`/`\t` shorthands). Decoding maps
//!   each escape below U+0100 back to its byte, so
//!   `decode(encode(bytes)) == bytes` for **any** byte sequence. A frame
//!   without a payload (retention off, or the span was evicted) carries
//!   `"payload":null`.
//!
//! * **Length-prefixed binary** — for high-throughput consumers; all
//!   integers little-endian:
//!
//!   ```text
//!   u32 len      bytes after this field (= 33 + payload length)
//!   u64 stream   stream id (session-scoped, caller-assigned)
//!   u32 query    query index in the order queries were added
//!   u64 start    byte offset of the matched element's opening tag
//!   u64 end      byte offset just past the closing tag (u64::MAX = unknown)
//!   u32 depth    element depth (root = 1)
//!   u8  flags    bit 0: payload present
//!   [payload]    the matched element bytes, iff flags & 1
//!   ```
//!
//! [`FrameDecoder`] reassembles binary frames from arbitrary read
//! boundaries; [`WireSink`] plugs either framing into the runtime's
//! materialized delivery path ([`crate::Runtime::serve_reader`]).
//!
//! The encoder accepts any frame that fits the `u32` length prefix, but a
//! stock decoder caps frames at [`DEFAULT_MAX_FRAME`] to bound memory
//! against corrupt length prefixes — a consumer of sessions whose retention
//! budget allows payloads beyond that must raise its own ceiling with
//! [`FrameDecoder::with_max_frame`].

use crate::sink::MaterializedMatch;
use crate::PayloadSink;
use std::io::Write;

/// Bytes of the fixed binary header after the length field.
const BIN_HEADER: usize = 8 + 4 + 8 + 8 + 4 + 1;

/// One match on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-assigned stream id of the session that produced the match.
    pub stream: u64,
    /// Query index, in the order queries were added to the engine.
    pub query: u32,
    /// Byte offset of the matched element's opening tag.
    pub start: u64,
    /// Byte offset just past the matched element's closing tag
    /// (`u64::MAX` when span resolution was disabled).
    pub end: u64,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
    /// The matched element bytes — `None` when retention is off or the span
    /// was evicted before delivery.
    pub payload: Option<Vec<u8>>,
}

impl Frame {
    /// Builds the frame for one materialized match, taking the payload
    /// without copying it.
    pub fn from_match(m: MaterializedMatch) -> Frame {
        Frame {
            stream: m.stream,
            query: m.m.query as u32,
            start: m.m.start as u64,
            end: m.m.end as u64,
            depth: m.m.depth,
            payload: m.payload,
        }
    }

    /// Appends the JSON-lines encoding (including the trailing newline).
    pub fn encode_json(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(
            format!(
                "{{\"stream\":{},\"query\":{},\"start\":{},\"end\":{},\"depth\":{},\"payload\":",
                self.stream, self.query, self.start, self.end, self.depth
            )
            .as_bytes(),
        );
        match &self.payload {
            None => out.extend_from_slice(b"null"),
            Some(bytes) => {
                out.push(b'"');
                escape_bytes(bytes, out);
                out.push(b'"');
            }
        }
        out.extend_from_slice(b"}\n");
    }

    /// The JSON-lines encoding as a `String` (including the trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = Vec::new();
        self.encode_json(&mut out);
        String::from_utf8(out).expect("the JSON encoder emits ASCII only")
    }

    /// Parses one JSON line (with or without the trailing newline).
    pub fn decode_json(line: &str) -> Result<Frame, WireError> {
        const KEYS: [&[u8]; 6] = [b"stream", b"query", b"start", b"end", b"depth", b"payload"];
        let mut p = JsonParser { bytes: line.trim_end_matches(['\n', '\r']).as_bytes(), pos: 0 };
        p.expect(b'{')?;
        let mut frame = Frame { stream: 0, query: 0, start: 0, end: 0, depth: 0, payload: None };
        let mut seen = [false; KEYS.len()];
        let mut first = true;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            if !first {
                return Err(WireError::Json("expected ',' or '}'".into()));
            }
            first = false;
            loop {
                let key = p.parse_string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                match key.as_slice() {
                    b"stream" => frame.stream = p.parse_u64()?,
                    b"query" => frame.query = parse_u32_field(&mut p, "query")?,
                    b"start" => frame.start = p.parse_u64()?,
                    b"end" => frame.end = p.parse_u64()?,
                    b"depth" => frame.depth = parse_u32_field(&mut p, "depth")?,
                    b"payload" => {
                        frame.payload =
                            if p.eat_literal(b"null") { None } else { Some(p.parse_string()?) };
                    }
                    other => {
                        return Err(WireError::Json(format!(
                            "unknown key {:?}",
                            String::from_utf8_lossy(other)
                        )));
                    }
                }
                seen[KEYS.iter().position(|k| *k == key.as_slice()).expect("matched above")] = true;
                p.skip_ws();
                if p.eat(b',') {
                    p.skip_ws();
                    continue;
                }
                break;
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::Json("trailing bytes after frame".into()));
        }
        // Every field is required: a truncated line must not silently decode
        // as an all-zero frame.
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(WireError::Json(format!(
                "missing field {:?}",
                String::from_utf8_lossy(KEYS[missing])
            )));
        }
        Ok(frame)
    }

    /// Appends the length-prefixed binary encoding.
    ///
    /// # Panics
    ///
    /// When the payload does not fit the `u32` length prefix (≥ 4 GiB — far
    /// beyond any sane retention budget); a loud panic beats silently
    /// emitting a truncated length that would desync the peer's decoder.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        let payload_len = self.payload.as_ref().map(|p| p.len()).unwrap_or(0);
        let len = u32::try_from(BIN_HEADER + payload_len)
            .expect("frame payload exceeds the u32 length prefix");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&self.query.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.depth.to_le_bytes());
        out.push(self.payload.is_some() as u8);
        if let Some(p) = &self.payload {
            out.extend_from_slice(p);
        }
    }
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The JSON line did not parse.
    Json(String),
    /// A binary frame header declared an impossible length.
    BadLength(u32),
    /// A binary frame carried unknown flag bits.
    BadFlags(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(msg) => write!(f, "malformed JSON frame: {msg}"),
            WireError::BadLength(n) => {
                write!(f, "binary frame length {n} outside the accepted range")
            }
            WireError::BadFlags(b) => write!(f, "binary frame with unknown flags {b:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Parses a u64 and checks it fits the frame's `u32` field — wrapping
/// silently would misattribute the frame (e.g. to query 0).
fn parse_u32_field(p: &mut JsonParser<'_>, key: &str) -> Result<u32, WireError> {
    let v = p.parse_u64()?;
    u32::try_from(v).map_err(|_| WireError::Json(format!("field {key:?} exceeds u32: {v}")))
}

/// Maps payload bytes into a JSON string body (bijective, ASCII output).
fn escape_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x20..=0x7e => out.push(b),
            other => {
                // Allocation-free `\u00XX` (payloads can be megabytes of
                // non-ASCII; a format! per byte would dominate the hot path).
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(&[
                    b'\\',
                    b'u',
                    b'0',
                    b'0',
                    HEX[(other >> 4) as usize],
                    HEX[(other & 0xf) as usize],
                ]);
            }
        }
    }
}

/// Minimal parser for exactly the JSON subset the encoder emits (plus
/// standard escapes), reading from a byte slice.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_literal(&mut self, lit: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(WireError::Json(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(&b @ b'0'..=b'9') = self.bytes.get(self.pos) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or_else(|| WireError::Json("integer overflow".into()))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(WireError::Json(format!("expected integer at byte {start}")));
        }
        Ok(value)
    }

    /// Parses a JSON string into the byte sequence it encodes (inverse of
    /// [`escape_bytes`]; escapes ≥ U+0100 are rejected since no byte maps
    /// there).
    fn parse_string(&mut self) -> Result<Vec<u8>, WireError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| WireError::Json("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| WireError::Json("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| WireError::Json("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u16::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| WireError::Json("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| WireError::Json("bad \\u escape".into()))?;
                            if code > 0xff {
                                return Err(WireError::Json(format!(
                                    "\\u{code:04x} does not encode a payload byte"
                                )));
                            }
                            out.push(code as u8);
                        }
                        other => {
                            return Err(WireError::Json(format!(
                                "unknown escape \\{}",
                                other as char
                            )));
                        }
                    }
                }
                other => out.push(other),
            }
        }
    }
}

/// Default ceiling on a single binary frame (length prefix included); see
/// [`FrameDecoder::with_max_frame`].
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// Incremental decoder for the binary framing: push bytes from any read
/// boundary, pop complete frames.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    consumed: usize,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder { buf: Vec::new(), consumed: 0, max_frame: DEFAULT_MAX_FRAME }
    }
}

impl FrameDecoder {
    /// An empty decoder with the [`DEFAULT_MAX_FRAME`] frame ceiling.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Sets the maximum frame length the decoder will buffer for. The length
    /// prefix is attacker-controlled on a real connection: without a ceiling
    /// a corrupt header of `0xfffffffe` would make the decoder buffer ~4 GiB
    /// waiting for a frame that never completes. A declared length above the
    /// ceiling fails fast with [`WireError::BadLength`].
    pub fn with_max_frame(mut self, max_frame: usize) -> FrameDecoder {
        self.max_frame = max_frame.max(BIN_HEADER);
        self
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived connection doesn't grow the buffer.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len < BIN_HEADER || len > self.max_frame {
            return Err(WireError::BadLength(len as u32));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let flags = body[BIN_HEADER - 1];
        if flags & !1 != 0 {
            return Err(WireError::BadFlags(flags));
        }
        let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8"));
        let u32_at = |off: usize| u32::from_le_bytes(body[off..off + 4].try_into().expect("4"));
        let frame = Frame {
            stream: u64_at(0),
            query: u32_at(8),
            start: u64_at(12),
            end: u64_at(20),
            depth: u32_at(28),
            payload: (flags & 1 != 0).then(|| body[BIN_HEADER..].to_vec()),
        };
        self.consumed += 4 + len;
        Ok(Some(frame))
    }
}

/// Which framing a [`WireSink`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// One JSON object per line.
    JsonLines,
    /// Length-prefixed binary frames.
    Binary,
}

/// A [`PayloadSink`] that frames every match and writes it to any
/// [`std::io::Write`] — a socket, a file, a buffer.
///
/// A write error latches: the error is kept for the caller (see
/// [`WireSink::into_parts`]) and every further match is refused, which the
/// runtime counts as dropped. Backpressure is inherited from the writer: a
/// slow socket blocks the joiner, which stalls the splitter through the
/// credit scheme.
#[derive(Debug)]
pub struct WireSink<W: Write> {
    writer: W,
    format: WireFormat,
    scratch: Vec<u8>,
    /// Frames successfully written.
    pub frames: u64,
    /// Bytes successfully written.
    pub bytes_out: u64,
    /// The first write error, if any (no frames are written after it).
    pub io_error: Option<std::io::Error>,
}

impl<W: Write> WireSink<W> {
    /// Wraps `writer` with the given framing.
    pub fn new(writer: W, format: WireFormat) -> WireSink<W> {
        WireSink { writer, format, scratch: Vec::new(), frames: 0, bytes_out: 0, io_error: None }
    }

    /// Flushes the writer and returns it together with the latched write
    /// error, if any.
    pub fn into_parts(mut self) -> (W, Option<std::io::Error>) {
        if self.io_error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.io_error = Some(e);
            }
        }
        (self.writer, self.io_error)
    }
}

impl<W: Write + Send> PayloadSink for WireSink<W> {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        if self.io_error.is_some() {
            return false;
        }
        self.scratch.clear();
        let frame = Frame::from_match(m);
        match self.format {
            WireFormat::JsonLines => frame.encode_json(&mut self.scratch),
            WireFormat::Binary => frame.encode_binary(&mut self.scratch),
        }
        match self.writer.write_all(&self.scratch) {
            Ok(()) => {
                self.frames += 1;
                self.bytes_out += self.scratch.len() as u64;
                true
            }
            Err(e) => {
                self.io_error = Some(e);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: Option<&[u8]>) -> Frame {
        Frame {
            stream: 7,
            query: 2,
            start: 1024,
            end: 1061,
            depth: 4,
            payload: payload.map(|p| p.to_vec()),
        }
    }

    #[test]
    fn json_round_trips_arbitrary_bytes() {
        let payloads: [&[u8]; 5] = [
            b"<k>plain</k>",
            b"quote \" backslash \\ slash / done",
            b"control \n\r\t\x00\x1f",
            &[0x80, 0xff, 0xc3, 0xa9],
            b"",
        ];
        for p in payloads {
            let f = frame(Some(p));
            let line = f.to_json();
            assert!(line.ends_with('\n'));
            assert!(line.is_ascii(), "wire JSON must be ASCII: {line:?}");
            assert_eq!(Frame::decode_json(&line).unwrap(), f);
        }
        let f = frame(None);
        assert!(f.to_json().contains("\"payload\":null"));
        assert_eq!(Frame::decode_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Frame::decode_json("").is_err());
        assert!(Frame::decode_json("{\"stream\":1").is_err());
        assert!(Frame::decode_json("{\"bogus\":1}").is_err());
        assert!(Frame::decode_json("{\"stream\":1}x").is_err());
        assert!(Frame::decode_json("{\"payload\":\"\\u0100\"}").is_err());
        // u32 fields must not wrap.
        let line = frame(None).to_json().replace("\"query\":2", "\"query\":4294967296");
        match Frame::decode_json(&line) {
            Err(WireError::Json(msg)) => assert!(msg.contains("query"), "{msg}"),
            other => panic!("expected a u32 overflow error, got {other:?}"),
        }
    }

    #[test]
    fn json_rejects_incomplete_frames() {
        // A truncated line must not decode as an all-zero frame.
        assert!(Frame::decode_json("{}").is_err());
        assert!(Frame::decode_json("{\"stream\":1}").is_err());
        let missing_payload = "{\"stream\":1,\"query\":0,\"start\":2,\"end\":3,\"depth\":1}";
        match Frame::decode_json(missing_payload) {
            Err(WireError::Json(msg)) => assert!(msg.contains("payload"), "{msg}"),
            other => panic!("expected a missing-field error, got {other:?}"),
        }
    }

    #[test]
    fn binary_round_trips_across_split_reads() {
        let frames = vec![frame(Some(b"<a>1</a>")), frame(None), frame(Some(&[0u8, 255, 10]))];
        let mut encoded = Vec::new();
        for f in &frames {
            f.encode_binary(&mut encoded);
        }
        for step in [1usize, 2, 3, 7, encoded.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in encoded.chunks(step) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "step {step}");
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn binary_rejects_bad_headers() {
        let mut dec = FrameDecoder::new();
        dec.push(&5u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(5)));

        // An attacker-controlled length above the ceiling fails fast instead
        // of buffering gigabytes for a frame that never completes.
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(u32::MAX)));
        let mut dec = FrameDecoder::new().with_max_frame(64);
        dec.push(&65u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(65)));

        let mut dec = FrameDecoder::new();
        let mut buf = Vec::new();
        frame(None).encode_binary(&mut buf);
        let flags_at = 4 + BIN_HEADER - 1;
        buf[flags_at] = 0x82;
        dec.push(&buf);
        assert_eq!(dec.next_frame(), Err(WireError::BadFlags(0x82)));
    }

    #[test]
    fn wire_sink_latches_write_errors() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("wire down"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = WireSink::new(FailAfter(1), WireFormat::JsonLines);
        let m = crate::sink::MaterializedMatch {
            stream: 1,
            m: crate::OnlineMatch { query: 0, start: 0, end: 4, depth: 1 },
            payload: Some(b"<a/>".to_vec()),
        };
        assert!(sink.on_match(m.clone()));
        assert!(!sink.on_match(m.clone()), "write error must refuse the frame");
        assert!(!sink.on_match(m), "the error latches");
        assert_eq!(sink.frames, 1);
        let (_, err) = sink.into_parts();
        assert!(err.is_some());
    }
}
