//! The wire protocol: serializing materialized matches for network clients.
//!
//! Two framings over the same [`Frame`] payload, chosen per connection:
//!
//! * **JSON lines** — one JSON object per `\n`-terminated line, for humans,
//!   scripts and anything that speaks JSON:
//!
//!   ```json
//!   {"stream":7,"query":0,"start":1024,"end":1061,"depth":4,"payload":"<k>v</k>"}
//!   ```
//!
//!   The payload is XML *bytes*, not guaranteed UTF-8, while JSON strings
//!   must be. The encoder therefore maps bytes to the string bijectively:
//!   printable ASCII stays literal (`"` and `\` escaped), every other byte
//!   becomes `\u00XX` (plus the `\n`/`\r`/`\t` shorthands). Decoding maps
//!   each escape below U+0100 back to its byte, so
//!   `decode(encode(bytes)) == bytes` for **any** byte sequence. A frame
//!   without a payload (retention off, or the span was evicted) carries
//!   `"payload":null`.
//!
//! * **Length-prefixed binary** — for high-throughput consumers; all
//!   integers little-endian:
//!
//!   ```text
//!   u32 len      bytes after this field (= 33 + payload length)
//!   u64 stream   stream id (session-scoped, caller-assigned)
//!   u32 query    query index in the order queries were added
//!   u64 start    byte offset of the matched element's opening tag
//!   u64 end      byte offset just past the closing tag (u64::MAX = unknown)
//!   u32 depth    element depth (root = 1)
//!   u8  flags    bit 0: payload present
//!   [payload]    the matched element bytes, iff flags & 1
//!   ```
//!
//! [`FrameDecoder`] reassembles binary frames from arbitrary read
//! boundaries; [`WireSink`] plugs either framing into the runtime's
//! materialized delivery path ([`crate::Runtime::serve_reader`]).
//!
//! The encoder accepts any frame that fits the `u32` length prefix, but a
//! stock decoder caps frames at [`DEFAULT_MAX_FRAME`] to bound memory
//! against corrupt length prefixes — a consumer of sessions whose retention
//! budget allows payloads beyond that must raise its own ceiling with
//! [`FrameDecoder::with_max_frame`].

use crate::sink::{BorrowedMatch, MaterializedMatch, PayloadRef};
use crate::PayloadSink;
use std::io::Write;

/// Bytes of the fixed binary header after the length field.
const BIN_HEADER: usize = 8 + 4 + 8 + 8 + 4 + 1;

/// One match on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-assigned stream id of the session that produced the match.
    pub stream: u64,
    /// Query index, in the order queries were added to the engine.
    pub query: u32,
    /// Byte offset of the matched element's opening tag.
    pub start: u64,
    /// Byte offset just past the matched element's closing tag
    /// (`u64::MAX` when span resolution was disabled).
    pub end: u64,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
    /// The matched element bytes — `None` when retention is off or the span
    /// was evicted before delivery.
    pub payload: Option<Vec<u8>>,
}

impl Frame {
    /// Builds the frame for one materialized match, taking the payload
    /// without copying it.
    ///
    /// The wire carries the query index as a `u32`; a match whose index does
    /// not fit is refused with [`WireError::Overflow`] instead of silently
    /// truncating the bits and misattributing the frame to another query.
    /// (`start`/`end` widen losslessly: `usize` is at most 64 bits on every
    /// supported target.)
    pub fn try_from_match(m: MaterializedMatch) -> Result<Frame, WireError> {
        let query = u32::try_from(m.m.query)
            .map_err(|_| WireError::Overflow { field: "query", value: m.m.query as u64 })?;
        Ok(Frame {
            stream: m.stream,
            query,
            start: m.m.start as u64,
            end: m.m.end as u64,
            depth: m.m.depth,
            payload: m.payload,
        })
    }

    /// Appends the JSON-lines encoding (including the trailing newline).
    pub fn encode_json(&self, out: &mut Vec<u8>) {
        self.encode_json_prefix(out);
        match &self.payload {
            None => out.extend_from_slice(b"null"),
            Some(bytes) => {
                out.push(b'"');
                escape_bytes(bytes, out);
                out.push(b'"');
            }
        }
        out.extend_from_slice(b"}\n");
    }

    /// Appends the JSON-lines encoding up to (and excluding) the payload
    /// value — everything before `"payload":`'s value. The split half of the
    /// vectored JSON encoding: follow with `"`, the raw payload bytes (only
    /// when every byte is JSON-clean, see [`PayloadRef`] borrowing in
    /// [`WireSink`]), and the [`JSON_FRAME_TAIL`].
    pub fn encode_json_prefix(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(
            format!(
                "{{\"stream\":{},\"query\":{},\"start\":{},\"end\":{},\"depth\":{},\"payload\":",
                self.stream, self.query, self.start, self.end, self.depth
            )
            .as_bytes(),
        );
    }

    /// The JSON-lines encoding as a `String` (including the trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = Vec::new();
        self.encode_json(&mut out);
        // UNWRAP-OK: `encode_json` emits ASCII only (non-ASCII payload
        // bytes become \u00XX escapes), so UTF-8 validation cannot fail.
        String::from_utf8(out).expect("the JSON encoder emits ASCII only")
    }

    /// Parses one JSON line (with or without the trailing newline).
    pub fn decode_json(line: &str) -> Result<Frame, WireError> {
        const KEYS: [&[u8]; 6] = [b"stream", b"query", b"start", b"end", b"depth", b"payload"];
        let mut p = JsonParser { bytes: line.trim_end_matches(['\n', '\r']).as_bytes(), pos: 0 };
        p.expect_byte(b'{')?;
        let mut frame = Frame { stream: 0, query: 0, start: 0, end: 0, depth: 0, payload: None };
        let mut seen = [false; KEYS.len()];
        let mut first = true;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            if !first {
                return Err(WireError::Json("expected ',' or '}'".into()));
            }
            first = false;
            loop {
                let key = p.parse_string()?;
                p.skip_ws();
                p.expect_byte(b':')?;
                p.skip_ws();
                match key.as_slice() {
                    b"stream" => frame.stream = p.parse_u64()?,
                    b"query" => frame.query = parse_u32_field(&mut p, "query")?,
                    b"start" => frame.start = p.parse_u64()?,
                    b"end" => frame.end = p.parse_u64()?,
                    b"depth" => frame.depth = parse_u32_field(&mut p, "depth")?,
                    b"payload" => {
                        frame.payload =
                            if p.eat_literal(b"null") { None } else { Some(p.parse_string()?) };
                    }
                    other => {
                        return Err(WireError::Json(format!(
                            "unknown key {:?}",
                            String::from_utf8_lossy(other)
                        )));
                    }
                }
                // UNWRAP-OK: `key` matched one of KEYS in the arm above, so
                // `position` always finds it.
                seen[KEYS.iter().position(|k| *k == key.as_slice()).expect("matched above")] = true;
                p.skip_ws();
                if p.eat(b',') {
                    p.skip_ws();
                    continue;
                }
                break;
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::Json("trailing bytes after frame".into()));
        }
        // Every field is required: a truncated line must not silently decode
        // as an all-zero frame.
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(WireError::Json(format!(
                "missing field {:?}",
                String::from_utf8_lossy(KEYS[missing])
            )));
        }
        Ok(frame)
    }

    /// Appends the length-prefixed binary encoding.
    ///
    /// # Panics
    ///
    /// When the payload does not fit the `u32` length prefix (≥ 4 GiB — far
    /// beyond any sane retention budget); a loud panic beats silently
    /// emitting a truncated length that would desync the peer's decoder.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        self.encode_binary_header(self.payload.as_ref().map(|p| p.len()), out);
        if let Some(p) = &self.payload {
            out.extend_from_slice(p);
        }
    }

    /// Appends the binary length prefix and fixed header for a payload of
    /// `payload_len` bytes (`None` = no payload) that will be appended
    /// *separately* — the header half of the split/vectored binary encoding.
    /// `self.payload` is ignored; the length prefix and payload flag are
    /// derived from `payload_len` alone.
    ///
    /// # Panics
    ///
    /// Same contract as [`Frame::encode_binary`]: a payload that does not
    /// fit the `u32` length prefix panics loudly rather than desyncing the
    /// peer's decoder.
    pub fn encode_binary_header(&self, payload_len: Option<usize>, out: &mut Vec<u8>) {
        // UNWRAP-OK: documented panic contract (see `# Panics` above) —
        // a ≥ 4 GiB payload must fail loudly, not desync the peer.
        let len = u32::try_from(BIN_HEADER + payload_len.unwrap_or(0))
            .expect("frame payload exceeds the u32 length prefix");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&self.query.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.depth.to_le_bytes());
        out.push(u8::from(payload_len.is_some()));
    }
}

/// The bytes that close a vectored JSON frame after its raw payload: the
/// closing string quote, the object brace, and the line terminator.
pub const JSON_FRAME_TAIL: &[u8] = b"\"}\n";

/// A frame split into already-encoded header bytes and a payload still
/// *borrowed* from retained windows — the scatter-gather unit of the
/// zero-copy egress path.
///
/// The header (and, for JSON, the [`JSON_FRAME_TAIL`]) is a handful of
/// bytes the destination copies; the payload travels as a [`PayloadRef`]
/// whose `SharedWindow` refcounts the destination holds until the frame has
/// fully drained to the socket. Frames whose payload cannot be borrowed
/// (absent, or JSON needing escapes) simply carry the complete encoding in
/// `head`.
#[derive(Debug)]
pub struct FrameRef<'a> {
    /// Encoded bytes preceding the payload — or the entire frame when
    /// `payload` is `None`.
    pub head: &'a [u8],
    /// The borrowed payload bytes, written between `head` and `tail`.
    pub payload: Option<PayloadRef>,
    /// Encoded bytes following the payload ([`JSON_FRAME_TAIL`] for JSON,
    /// empty for binary).
    pub tail: &'static [u8],
}

impl FrameRef<'_> {
    /// Total encoded frame length in bytes (head + payload + tail).
    pub fn len(&self) -> usize {
        self.head.len() + self.payload.as_ref().map(|p| p.len()).unwrap_or(0) + self.tail.len()
    }

    /// `true` when the frame encodes to no bytes at all (never the case for
    /// frames built by [`WireSink`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Destination of split frames for the zero-copy egress path — the
/// reactor's per-connection outbox implements it.
///
/// Contract: the destination takes ownership of the frame's borrowed
/// payload windows and must keep them alive (refcounts held) until the
/// frame's bytes have fully reached the socket, then drop them — that drop
/// is what releases the retained windows. Queueing is all-or-nothing: an
/// error means no bytes of the frame were queued.
pub trait FrameWrite: Send + std::fmt::Debug {
    /// Queues one split frame for writing.
    fn write_frame(&mut self, frame: FrameRef<'_>) -> std::io::Result<()>;
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The JSON line did not parse.
    Json(String),
    /// A binary frame header declared an impossible length.
    BadLength(u32),
    /// A binary frame carried unknown flag bits.
    BadFlags(u8),
    /// The stream ended mid-frame: `buffered` undecoded bytes remained when
    /// [`FrameDecoder::finish`] was called. Distinguishes a half-written
    /// final frame (a connection cut mid-write) from a clean EOF, which
    /// `next_frame`'s `Ok(None)` alone cannot.
    Truncated {
        /// Bytes left undecoded at end of stream.
        buffered: usize,
    },
    /// A frame field's value does not fit its wire width (e.g. a query index
    /// beyond `u32`); refusing beats silently truncating the bits and
    /// misattributing the frame.
    Overflow {
        /// The wire field that would have truncated.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(msg) => write!(f, "malformed JSON frame: {msg}"),
            WireError::BadLength(n) => {
                write!(f, "binary frame length {n} outside the accepted range")
            }
            WireError::BadFlags(b) => write!(f, "binary frame with unknown flags {b:#04x}"),
            WireError::Truncated { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} undecoded bytes buffered")
            }
            WireError::Overflow { field, value } => {
                write!(f, "frame field {field:?} cannot carry value {value}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Parses a u64 and checks it fits the frame's `u32` field — wrapping
/// silently would misattribute the frame (e.g. to query 0).
fn parse_u32_field(p: &mut JsonParser<'_>, key: &str) -> Result<u32, WireError> {
    let v = p.parse_u64()?;
    u32::try_from(v).map_err(|_| WireError::Json(format!("field {key:?} exceeds u32: {v}")))
}

/// Maps payload bytes into a JSON string body (bijective, ASCII output).
fn escape_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x20..=0x7e => out.push(b),
            other => {
                // Allocation-free `\u00XX` (payloads can be megabytes of
                // non-ASCII; a format! per byte would dominate the hot path).
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(&[
                    b'\\',
                    b'u',
                    b'0',
                    b'0',
                    HEX[usize::from(other >> 4)],
                    HEX[usize::from(other & 0xf)],
                ]);
            }
        }
    }
}

/// Minimal parser for exactly the JSON subset the encoder emits (plus
/// standard escapes), reading from a byte slice.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_literal(&mut self, lit: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), WireError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(WireError::Json(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(&b @ b'0'..=b'9') = self.bytes.get(self.pos) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or_else(|| WireError::Json("integer overflow".into()))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(WireError::Json(format!("expected integer at byte {start}")));
        }
        Ok(value)
    }

    /// Parses a JSON string into the byte sequence it encodes (inverse of
    /// [`escape_bytes`]; escapes ≥ U+0100 are rejected since no byte maps
    /// there).
    fn parse_string(&mut self) -> Result<Vec<u8>, WireError> {
        self.expect_byte(b'"')?;
        let mut out = Vec::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| WireError::Json("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| WireError::Json("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| WireError::Json("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u16::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| WireError::Json("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| WireError::Json("bad \\u escape".into()))?;
                            let byte = u8::try_from(code).map_err(|_| {
                                WireError::Json(format!(
                                    "\\u{code:04x} does not encode a payload byte"
                                ))
                            })?;
                            out.push(byte);
                        }
                        other => {
                            return Err(WireError::Json(format!(
                                "unknown escape \\{}",
                                other as char
                            )));
                        }
                    }
                }
                other => out.push(other),
            }
        }
    }
}

/// Default ceiling on a single binary frame (length prefix included); see
/// [`FrameDecoder::with_max_frame`].
pub const DEFAULT_MAX_FRAME: usize = 256 << 20;

/// Incremental decoder for the binary framing: push bytes from any read
/// boundary, pop complete frames.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    consumed: usize,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder { buf: Vec::new(), consumed: 0, max_frame: DEFAULT_MAX_FRAME }
    }
}

impl FrameDecoder {
    /// An empty decoder with the [`DEFAULT_MAX_FRAME`] frame ceiling.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Sets the maximum frame length the decoder will buffer for. The length
    /// prefix is attacker-controlled on a real connection: without a ceiling
    /// a corrupt header of `0xfffffffe` would make the decoder buffer ~4 GiB
    /// waiting for a frame that never completes. A declared length above the
    /// ceiling fails fast with [`WireError::BadLength`].
    pub fn with_max_frame(mut self, max_frame: usize) -> FrameDecoder {
        self.max_frame = max_frame.max(BIN_HEADER);
        self
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived connection doesn't grow the buffer.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Declares end of stream: `Ok(())` when every pushed byte decoded into
    /// a complete frame, [`WireError::Truncated`] when a partial frame
    /// remains buffered.
    ///
    /// Call this when the connection reaches EOF. [`FrameDecoder::next_frame`]
    /// returns `Ok(None)` both for "need more bytes" and for a final frame
    /// that was cut mid-write — without this check a truncated tail is
    /// silently indistinguishable from a clean close.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.buffered() {
            0 => Ok(()),
            buffered => Err(WireError::Truncated { buffered }),
        }
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&avail[..4]);
        let wire_len = u32::from_le_bytes(prefix);
        // CAST-OK: u32 → usize is a widening conversion on every supported
        // target (the reactor only builds on 64-bit Linux).
        let len = wire_len as usize;
        if len < BIN_HEADER || len > self.max_frame {
            return Err(WireError::BadLength(wire_len));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let flags = body[BIN_HEADER - 1];
        if flags & !1 != 0 {
            return Err(WireError::BadFlags(flags));
        }
        // UNWRAP-OK: `off` is a fixed header offset and `body.len() >=
        // BIN_HEADER` was established above, so the slice is exactly 8 bytes.
        let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8"));
        // UNWRAP-OK: same bound as `u64_at`; the slice is exactly 4 bytes.
        let u32_at = |off: usize| u32::from_le_bytes(body[off..off + 4].try_into().expect("4"));
        let frame = Frame {
            stream: u64_at(0),
            query: u32_at(8),
            start: u64_at(12),
            end: u64_at(20),
            depth: u32_at(28),
            payload: (flags & 1 != 0).then(|| body[BIN_HEADER..].to_vec()),
        };
        self.consumed += 4 + len;
        Ok(Some(frame))
    }
}

/// Which framing a [`WireSink`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// One JSON object per line.
    JsonLines,
    /// Length-prefixed binary frames.
    Binary,
}

/// A [`PayloadSink`] that frames every match and writes it to any
/// [`std::io::Write`] — a socket, a file, a buffer.
///
/// A write error latches: the error is kept for the caller (see
/// [`WireSink::into_parts`]) and every further match is refused, which the
/// runtime counts as dropped. Backpressure is inherited from the writer: a
/// slow socket blocks the joiner, which stalls the splitter through the
/// credit scheme.
///
/// # Zero-copy egress
///
/// [`WireSink::new`] copies: each frame is encoded contiguously into a
/// scratch buffer and written with a single `write_all` — the right shape
/// for blocking sockets and in-process writers. [`WireSink::new_vectored`]
/// instead splits each frame into header bytes plus a [`PayloadRef`]
/// borrowing the retained windows, and queues it on a [`FrameWrite`]
/// destination (the reactor outbox) — the payload bytes are never copied;
/// the destination writes them straight out of the retention windows with
/// vectored I/O. Binary frames always borrow; JSON frames borrow when every
/// payload byte encodes as itself in a JSON string (printable ASCII minus
/// `"` and `\`), and fall back to the escaping copy otherwise.
#[derive(Debug)]
pub struct WireSink<W: Write> {
    writer: W,
    /// The zero-copy destination; `None` = the copying path through
    /// `writer`.
    frame_queue: Option<Box<dyn FrameWrite>>,
    format: WireFormat,
    scratch: Vec<u8>,
    /// Frames successfully written.
    pub frames: u64,
    /// Bytes successfully written (or queued, on the vectored path).
    pub bytes_out: u64,
    /// The first write error, if any (no frames are written after it).
    pub io_error: Option<std::io::Error>,
}

impl<W: Write> WireSink<W> {
    /// Wraps `writer` with the given framing (the copying path).
    pub fn new(writer: W, format: WireFormat) -> WireSink<W> {
        WireSink {
            writer,
            frame_queue: None,
            format,
            scratch: Vec::new(),
            frames: 0,
            bytes_out: 0,
            io_error: None,
        }
    }

    /// Wraps `writer` with the given framing, routing every frame through
    /// `queue` as a split [`FrameRef`] instead of a contiguous write —
    /// payload bytes stay borrowed from the retention windows until the
    /// queue drains them (see the type-level docs). `writer` is kept only
    /// for [`WireSink::into_parts`]; all frame traffic goes to `queue`.
    pub fn new_vectored(writer: W, format: WireFormat, queue: Box<dyn FrameWrite>) -> WireSink<W> {
        WireSink { frame_queue: Some(queue), ..WireSink::new(writer, format) }
    }

    /// Flushes the writer and returns it together with the latched write
    /// error, if any.
    pub fn into_parts(mut self) -> (W, Option<std::io::Error>) {
        if self.io_error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.io_error = Some(e);
            }
        }
        (self.writer, self.io_error)
    }

    /// Writes the fully-encoded frame sitting in `self.scratch`, through the
    /// frame queue when vectored, else through the writer. Updates counters
    /// and latches errors.
    fn write_scratch(&mut self) -> bool {
        let write = match self.frame_queue.as_mut() {
            Some(queue) => {
                queue.write_frame(FrameRef { head: &self.scratch, payload: None, tail: b"" })
            }
            None => self.writer.write_all(&self.scratch),
        };
        match write {
            Ok(()) => {
                self.frames += 1;
                self.bytes_out += self.scratch.len() as u64;
                true
            }
            Err(e) => {
                self.io_error = Some(e);
                false
            }
        }
    }
}

/// `true` when every payload byte encodes as itself inside a JSON string
/// (printable ASCII minus `"` and `\`) — the condition for borrowing the
/// raw bytes into a vectored JSON frame instead of escaping a copy.
fn json_clean(payload: &PayloadRef) -> bool {
    payload.slices().all(|s| s.iter().all(|&b| matches!(b, 0x20..=0x7e) && b != b'"' && b != b'\\'))
}

impl<W: Write + Send> PayloadSink for WireSink<W> {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        if self.io_error.is_some() {
            return false;
        }
        self.scratch.clear();
        let frame = match Frame::try_from_match(m) {
            Ok(frame) => frame,
            Err(e) => {
                // An unencodable match latches like a write failure: the
                // frame is refused (counted as dropped upstream) instead of
                // going out with truncated fields.
                self.io_error = Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                return false;
            }
        };
        match self.format {
            WireFormat::JsonLines => frame.encode_json(&mut self.scratch),
            WireFormat::Binary => frame.encode_binary(&mut self.scratch),
        }
        self.write_scratch()
    }

    fn on_match_borrowed(&mut self, m: BorrowedMatch) -> bool {
        if self.frame_queue.is_none() {
            // Copying path: materialize and deliver exactly as before.
            return self.on_match(m.materialize());
        }
        if self.io_error.is_some() {
            return false;
        }
        let BorrowedMatch { stream, m, payload } = m;
        let frame = match Frame::try_from_match(MaterializedMatch { stream, m, payload: None }) {
            Ok(frame) => frame,
            Err(e) => {
                self.io_error = Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                return false;
            }
        };
        self.scratch.clear();
        let payload = match (self.format, payload) {
            (WireFormat::Binary, Some(p)) => {
                frame.encode_binary_header(Some(p.len()), &mut self.scratch);
                Some(p)
            }
            (WireFormat::JsonLines, Some(p)) if json_clean(&p) => {
                frame.encode_json_prefix(&mut self.scratch);
                self.scratch.push(b'"');
                Some(p)
            }
            (WireFormat::JsonLines, Some(p)) => {
                // Needs escaping: encode the whole frame (one copy), no
                // borrowed payload.
                Frame { payload: Some(p.to_vec()), ..frame }.encode_json(&mut self.scratch);
                None
            }
            (WireFormat::Binary, None) => {
                frame.encode_binary(&mut self.scratch);
                None
            }
            (WireFormat::JsonLines, None) => {
                frame.encode_json(&mut self.scratch);
                None
            }
        };
        let tail: &'static [u8] = if payload.is_some() && self.format == WireFormat::JsonLines {
            JSON_FRAME_TAIL
        } else {
            b""
        };
        let frame_ref = FrameRef { head: &self.scratch, payload, tail };
        let len = frame_ref.len() as u64;
        let write = match self.frame_queue.as_mut() {
            Some(queue) => queue.write_frame(frame_ref),
            // Unreachable (checked at entry); refuse defensively.
            None => return false,
        };
        match write {
            Ok(()) => {
                self.frames += 1;
                self.bytes_out += len;
                true
            }
            Err(e) => {
                self.io_error = Some(e);
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The query-registration handshake
// ---------------------------------------------------------------------------
//
// Before any frame flows, a client registers its queries over the same
// socket with a small line-based handshake (ASCII, `\n`-terminated lines, a
// trailing `\r` is stripped — `nc` works):
//
// ```text
// client → server
//   PPT/1 json|binary        protocol version + frame format (first line)
//   QUERY <xpath>            one line per query, at least one
//   RETAIN <bytes>           optional: payload-retention budget (decimal)
//   STREAM <id>              optional: stream id stamped on frames (decimal;
//                            omitted = the server assigns a unique one)
//   GO                       ends the handshake; XML stream bytes follow
//
// server → client, exactly one line, then frames in the negotiated format
//   OK STREAM <sid> <id0> …  the session's stream id (requested or
//                            server-assigned), then per-query ids in the
//                            order the QUERYs arrived
//   ERR <message>            structured rejection; the server then closes
// ```
//
// A connection can also ask for a one-shot telemetry snapshot instead of a
// session — the `STATS` verb replaces `QUERY …`/`GO` entirely:
//
// ```text
// client → server
//   PPT/1 json|binary        (format line required, format ignored)
//   STATS                    completes the handshake immediately; must be
//                            the only verb (no QUERY/RETAIN/STREAM/GO)
//
// server → client
//   OK STATS <bytes>         then exactly <bytes> of Prometheus-style
//                            text exposition, then the server closes
//   ERR <message>            rejection (e.g. STATS mixed with other verbs)
// ```
//
// Every byte after the `GO` line's `\n` belongs to the XML stream —
// [`HandshakeDecoder::take_remainder`] hands those back so no read boundary
// can lose them.

/// Default cap on one handshake line (a query, realistically, is tens of
/// bytes; the cap bounds memory against a client that never sends `\n`).
pub const DEFAULT_MAX_HANDSHAKE_LINE: usize = 8 << 10;

/// Default cap on queries registered by one connection.
pub const DEFAULT_MAX_QUERIES: usize = 64;

/// A parsed query-registration request (see the grammar above).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeRequest {
    /// The frame format the client asked for.
    pub format: WireFormat,
    /// Query texts, in registration order — their indices are the query ids
    /// on every frame.
    pub queries: Vec<String>,
    /// Requested payload-retention budget in bytes; `None` = offsets only.
    pub retain_bytes: Option<u64>,
    /// Stream id to stamp on frames. `None` means the client sent no
    /// `STREAM` line and the server assigns a process-unique id (echoed in
    /// the `OK` reply). `Some(0)` is a *request* for stream 0 and is carried
    /// on the wire — an explicit 0 used to be indistinguishable from "no
    /// request" because the encoder skipped it.
    pub stream_id: Option<u64>,
    /// `true` for a `STATS` handshake: the connection wants a one-shot
    /// telemetry snapshot, not a session. Mutually exclusive with every
    /// other verb (the decoder enforces it).
    pub stats: bool,
}

impl HandshakeRequest {
    /// A request for `format` with no queries yet.
    pub fn new(format: WireFormat) -> HandshakeRequest {
        HandshakeRequest {
            format,
            queries: Vec::new(),
            retain_bytes: None,
            stream_id: None,
            stats: false,
        }
    }

    /// A `STATS` request: a one-shot telemetry scrape instead of a session.
    /// The format line is still sent (the grammar requires one) but the
    /// reply is always text.
    pub fn stats() -> HandshakeRequest {
        let mut request = HandshakeRequest::new(WireFormat::JsonLines);
        request.stats = true;
        request
    }

    /// Adds one query.
    pub fn query(mut self, q: impl Into<String>) -> HandshakeRequest {
        self.queries.push(q.into());
        self
    }

    /// Requests payload retention with the given byte budget.
    pub fn retain_bytes(mut self, budget: u64) -> HandshakeRequest {
        self.retain_bytes = Some(budget);
        self
    }

    /// Requests a specific stream id for the frames (0 included; ids must
    /// stay below `2^52` — everything above is reserved for server
    /// assignment, and a server rejects requests into it). Without it the
    /// server assigns a process-unique id from that reserved range.
    pub fn stream_id(mut self, id: u64) -> HandshakeRequest {
        self.stream_id = Some(id);
        self
    }

    /// Encodes the handshake lines, `GO` included (the client-side inverse
    /// of [`HandshakeDecoder`]).
    pub fn encode(&self) -> Vec<u8> {
        let format = match self.format {
            WireFormat::JsonLines => "json",
            WireFormat::Binary => "binary",
        };
        let mut out = format!("PPT/1 {format}\n").into_bytes();
        if self.stats {
            // STATS completes the handshake by itself — no GO, no queries.
            out.extend_from_slice(b"STATS\n");
            return out;
        }
        for q in &self.queries {
            out.extend_from_slice(format!("QUERY {q}\n").as_bytes());
        }
        if let Some(budget) = self.retain_bytes {
            out.extend_from_slice(format!("RETAIN {budget}\n").as_bytes());
        }
        // Emit whatever was set — `Some(0)` included. The old
        // `if stream_id != 0` guard silently turned an explicit request for
        // stream 0 into "no request".
        if let Some(id) = self.stream_id {
            out.extend_from_slice(format!("STREAM {id}\n").as_bytes());
        }
        out.extend_from_slice(b"GO\n");
        out
    }
}

/// A malformed or over-limit handshake. Every variant renders as a single
/// line (no `\n` can appear: input is line-split before parsing), so the
/// message embeds directly into an `ERR` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// A line exceeded the decoder's cap before its `\n` arrived.
    LineTooLong {
        /// The configured cap.
        limit: usize,
    },
    /// A handshake line was not valid UTF-8.
    NotUtf8,
    /// The first line did not announce a supported protocol version.
    BadVersion(String),
    /// The version line named an unknown frame format.
    BadFormat(String),
    /// A line opened with a command outside the grammar.
    UnknownCommand(String),
    /// A numeric argument did not parse as decimal.
    BadArgument {
        /// The command whose argument failed.
        command: &'static str,
        /// The offending argument text.
        value: String,
    },
    /// `STREAM` asked for an id in the server-assigned range (at or above
    /// bit 52). Ids there are handed out to `STREAM`-less handshakes, and
    /// the no-collision guarantee between assigned and requested ids only
    /// holds if requests cannot reach into that range.
    ReservedStreamId {
        /// The rejected id.
        id: u64,
    },
    /// `GO` arrived before any `QUERY`.
    NoQueries,
    /// `STATS` was mixed with session verbs (`QUERY`/`RETAIN`/`STREAM`) —
    /// a scrape connection carries no session state, so the combination is
    /// a protocol error, not a silent choice between the two.
    StatsConflict,
    /// The connection registered more queries than the server allows.
    TooManyQueries {
        /// The configured cap.
        limit: usize,
    },
    /// The handshake ran past its total line budget without reaching `GO`
    /// (a flood of blank/`RETAIN`/`STREAM` lines would otherwise pass every
    /// per-line cap while consuming the server indefinitely).
    TooManyLines {
        /// The configured cap.
        limit: usize,
    },
    /// A reply line was neither `OK …` nor `ERR …` (client side).
    BadReply(String),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::LineTooLong { limit } => {
                write!(f, "handshake line exceeds {limit} bytes")
            }
            HandshakeError::NotUtf8 => write!(f, "handshake line is not valid UTF-8"),
            HandshakeError::BadVersion(line) => {
                write!(f, "expected `PPT/1 <format>` as the first line, got `{line}`")
            }
            HandshakeError::BadFormat(fmt) => {
                write!(f, "unknown frame format `{fmt}` (expected `json` or `binary`)")
            }
            HandshakeError::UnknownCommand(cmd) => write!(f, "unknown handshake command `{cmd}`"),
            HandshakeError::BadArgument { command, value } => {
                write!(f, "{command} takes a decimal integer, got `{value}`")
            }
            HandshakeError::ReservedStreamId { id } => {
                write!(f, "stream id {id} is in the server-assigned range (ids below 2^52 only)")
            }
            HandshakeError::NoQueries => write!(f, "GO before any QUERY was registered"),
            HandshakeError::StatsConflict => {
                write!(f, "STATS must be the only handshake verb (no QUERY/RETAIN/STREAM)")
            }
            HandshakeError::TooManyQueries { limit } => {
                write!(f, "more than {limit} queries registered")
            }
            HandshakeError::TooManyLines { limit } => {
                write!(f, "handshake exceeds {limit} lines without GO")
            }
            HandshakeError::BadReply(line) => {
                write!(f, "expected `OK …` or `ERR …` reply, got `{line}`")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Incremental parser for the handshake: push socket bytes from any read
/// boundary; a complete request comes back the moment the `GO` line closes,
/// and [`HandshakeDecoder::take_remainder`] returns the stream bytes that
/// arrived in the same reads.
///
/// Errors latch: once a line is rejected every further push reports the same
/// error (the server writes one `ERR` and closes, so nothing ever resumes a
/// failed handshake).
#[derive(Debug)]
pub struct HandshakeDecoder {
    buf: Vec<u8>,
    consumed: usize,
    max_line: usize,
    max_queries: usize,
    /// Total-line budget: blank and repeated option lines are each legal, so
    /// without this cap a client could stream them forever — passing every
    /// per-line check while the connection never reaches `GO`. Memory stays
    /// bounded regardless (consumed lines are compacted away); the budget
    /// bounds the *work*.
    max_lines: usize,
    lines: usize,
    format: Option<WireFormat>,
    queries: Vec<String>,
    retain_bytes: Option<u64>,
    stream_id: Option<u64>,
    stats: bool,
    complete: bool,
    failed: Option<HandshakeError>,
}

impl Default for HandshakeDecoder {
    fn default() -> HandshakeDecoder {
        HandshakeDecoder::with_limits(DEFAULT_MAX_HANDSHAKE_LINE, DEFAULT_MAX_QUERIES)
    }
}

impl HandshakeDecoder {
    /// A decoder with the default line and query caps.
    pub fn new() -> HandshakeDecoder {
        HandshakeDecoder::default()
    }

    /// A decoder with explicit caps (both clamped to at least 1). The total
    /// line budget follows from them: `max_queries` plus slack for the
    /// version, options and `GO`.
    pub fn with_limits(max_line: usize, max_queries: usize) -> HandshakeDecoder {
        let max_queries = max_queries.max(1);
        HandshakeDecoder {
            buf: Vec::new(),
            consumed: 0,
            max_line: max_line.max(1),
            max_queries,
            max_lines: max_queries.saturating_add(16),
            lines: 0,
            format: None,
            queries: Vec::new(),
            retain_bytes: None,
            stream_id: None,
            stats: false,
            complete: false,
            failed: None,
        }
    }

    /// Appends socket bytes and parses as many complete lines as arrived.
    /// Returns the finished request once the `GO` line closes; bytes pushed
    /// after that accumulate as stream remainder (see
    /// [`HandshakeDecoder::take_remainder`]).
    pub fn push(&mut self, bytes: &[u8]) -> Result<Option<HandshakeRequest>, HandshakeError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        // Compact lazily (as `FrameDecoder` does) so a many-line handshake
        // never accumulates its consumed lines — buffered memory is bounded
        // by one line plus the pushed slice, whatever the client sends.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
        if self.complete {
            return Ok(None);
        }
        while !self.complete {
            let Some(nl) = self.buf[self.consumed..].iter().position(|&b| b == b'\n') else {
                if self.buf.len() - self.consumed > self.max_line {
                    return Err(self.fail(HandshakeError::LineTooLong { limit: self.max_line }));
                }
                return Ok(None);
            };
            if nl > self.max_line {
                return Err(self.fail(HandshakeError::LineTooLong { limit: self.max_line }));
            }
            self.lines += 1;
            if self.lines > self.max_lines {
                return Err(self.fail(HandshakeError::TooManyLines { limit: self.max_lines }));
            }
            let line_end = self.consumed + nl;
            // The line is borrowed out of `buf`, so parse into owned fields.
            let line_range = self.consumed..line_end;
            self.consumed = line_end + 1;
            if let Err(e) = self.parse_line(line_range.start, line_range.end) {
                return Err(self.fail(e));
            }
        }
        Ok(Some(HandshakeRequest {
            // UNWRAP-OK: `complete` is only reached after `parse_line` saw
            // the FORMAT line, which is what sets `self.format`.
            format: self.format.expect("set before complete"),
            queries: self.queries.clone(),
            retain_bytes: self.retain_bytes,
            stream_id: self.stream_id,
            stats: self.stats,
        }))
    }

    /// Consumes the decoder, returning every byte received after the `GO`
    /// line — the head of the XML stream. Empty if the handshake never
    /// completed.
    pub fn take_remainder(mut self) -> Vec<u8> {
        if !self.complete {
            return Vec::new();
        }
        self.buf.split_off(self.consumed)
    }

    fn fail(&mut self, e: HandshakeError) -> HandshakeError {
        self.failed = Some(e.clone());
        e
    }

    fn parse_line(&mut self, start: usize, end: usize) -> Result<(), HandshakeError> {
        let mut line = &self.buf[start..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = std::str::from_utf8(line).map_err(|_| HandshakeError::NotUtf8)?;
        if text.trim().is_empty() {
            return Ok(()); // blank lines are tolerated anywhere
        }
        if self.format.is_none() {
            let (version, format) = text.split_once(' ').unwrap_or((text, ""));
            if version != "PPT/1" {
                return Err(HandshakeError::BadVersion(text.to_string()));
            }
            self.format = Some(match format.trim() {
                "json" => WireFormat::JsonLines,
                "binary" => WireFormat::Binary,
                other => return Err(HandshakeError::BadFormat(other.to_string())),
            });
            return Ok(());
        }
        let (command, rest) = text.split_once(' ').unwrap_or((text, ""));
        match command {
            "QUERY" => {
                if self.queries.len() >= self.max_queries {
                    return Err(HandshakeError::TooManyQueries { limit: self.max_queries });
                }
                self.queries.push(rest.trim().to_string());
            }
            "RETAIN" => {
                self.retain_bytes = Some(rest.trim().parse().map_err(|_| {
                    HandshakeError::BadArgument { command: "RETAIN", value: rest.trim().into() }
                })?);
            }
            "STREAM" => {
                let id: u64 = rest.trim().parse().map_err(|_| HandshakeError::BadArgument {
                    command: "STREAM",
                    value: rest.trim().into(),
                })?;
                // Ids at and above bit 52 belong to server assignment;
                // accepting requests there would break the
                // assigned-vs-requested no-collision guarantee.
                if id >= 1 << 52 {
                    return Err(HandshakeError::ReservedStreamId { id });
                }
                self.stream_id = Some(id);
            }
            "GO" => {
                if self.queries.is_empty() {
                    return Err(HandshakeError::NoQueries);
                }
                self.complete = true;
            }
            "STATS" => {
                if !self.queries.is_empty()
                    || self.retain_bytes.is_some()
                    || self.stream_id.is_some()
                {
                    return Err(HandshakeError::StatsConflict);
                }
                self.stats = true;
                // A scrape has no stream: the handshake is complete here,
                // no GO line follows.
                self.complete = true;
            }
            other => return Err(HandshakeError::UnknownCommand(other.to_string())),
        }
        Ok(())
    }
}

/// The server's one-line handshake reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeReply {
    /// The queries were registered; frames follow.
    Accepted {
        /// The stream id every frame of this session will carry — the
        /// client's requested id, or the server-assigned unique one when the
        /// handshake had no `STREAM` line. Echoed so a default-handshake
        /// client learns which id to demux on.
        stream: u64,
        /// Per-query ids, in registration order.
        queries: Vec<u32>,
    },
    /// The queries were registered *onto an already-live shared stream*:
    /// the server merged them into the stream's automaton and this
    /// connection now receives that stream's frames from the attach point
    /// onward (not from the beginning). Query ids are scoped to this
    /// connection — local registration order, exactly as `Accepted` ids are
    /// — regardless of how the shared automaton numbers them internally.
    Attached {
        /// The shared stream's id (always the requested id: attaching
        /// requires naming the stream).
        stream: u64,
        /// Per-query ids local to this connection, in registration order.
        queries: Vec<u32>,
    },
    /// The handshake was rejected; the message is the structured reason and
    /// the server closes after sending it.
    Rejected(String),
}

impl HandshakeReply {
    /// Encodes the reply line (trailing newline included). A rejection
    /// message is scrubbed of *all* control characters, not just `\n`/`\r`:
    /// rejection reasons echo client-controlled text (the offending line),
    /// and reflected escape bytes would fake protocol lines or scramble an
    /// operator's `nc` transcript — same discipline as
    /// `ppt_xpath::XPathError::wire_message`.
    pub fn encode(&self) -> String {
        match self {
            HandshakeReply::Accepted { stream, queries } => {
                let mut line = format!("OK STREAM {stream}");
                for id in queries {
                    line.push(' ');
                    line.push_str(&id.to_string());
                }
                line.push('\n');
                line
            }
            HandshakeReply::Attached { stream, queries } => {
                let mut line = format!("OK ATTACH {stream}");
                for id in queries {
                    line.push(' ');
                    line.push_str(&id.to_string());
                }
                line.push('\n');
                line
            }
            HandshakeReply::Rejected(msg) => {
                let flat: String =
                    msg.chars().map(|c| if c.is_control() { ' ' } else { c }).collect();
                format!("ERR {flat}\n")
            }
        }
    }

    /// Parses one reply line (with or without the line terminator). The
    /// pre-assignment form `OK <id0> <id1> …` (no `STREAM` token) is still
    /// accepted with stream 0, so a new client can read an old server.
    pub fn decode(line: &str) -> Result<HandshakeReply, HandshakeError> {
        let line = line.trim_end_matches(['\n', '\r']);
        if let Some(rest) = line.strip_prefix("OK") {
            let mut tokens = rest.split_whitespace().peekable();
            let attached = tokens.peek() == Some(&"ATTACH");
            let stream = if attached || tokens.peek() == Some(&"STREAM") {
                tokens.next();
                tokens
                    .next()
                    .and_then(|tok| tok.parse::<u64>().ok())
                    .ok_or_else(|| HandshakeError::BadReply(line.to_string()))?
            } else {
                0
            };
            let queries = tokens
                .map(|tok| {
                    tok.parse::<u32>().map_err(|_| HandshakeError::BadReply(line.to_string()))
                })
                .collect::<Result<Vec<u32>, HandshakeError>>()?;
            return Ok(if attached {
                HandshakeReply::Attached { stream, queries }
            } else {
                HandshakeReply::Accepted { stream, queries }
            });
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            return Ok(HandshakeReply::Rejected(rest.to_string()));
        }
        Err(HandshakeError::BadReply(line.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: Option<&[u8]>) -> Frame {
        Frame {
            stream: 7,
            query: 2,
            start: 1024,
            end: 1061,
            depth: 4,
            payload: payload.map(|p| p.to_vec()),
        }
    }

    #[test]
    fn json_round_trips_arbitrary_bytes() {
        let payloads: [&[u8]; 5] = [
            b"<k>plain</k>",
            b"quote \" backslash \\ slash / done",
            b"control \n\r\t\x00\x1f",
            &[0x80, 0xff, 0xc3, 0xa9],
            b"",
        ];
        for p in payloads {
            let f = frame(Some(p));
            let line = f.to_json();
            assert!(line.ends_with('\n'));
            assert!(line.is_ascii(), "wire JSON must be ASCII: {line:?}");
            assert_eq!(Frame::decode_json(&line).unwrap(), f);
        }
        let f = frame(None);
        assert!(f.to_json().contains("\"payload\":null"));
        assert_eq!(Frame::decode_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Frame::decode_json("").is_err());
        assert!(Frame::decode_json("{\"stream\":1").is_err());
        assert!(Frame::decode_json("{\"bogus\":1}").is_err());
        assert!(Frame::decode_json("{\"stream\":1}x").is_err());
        assert!(Frame::decode_json("{\"payload\":\"\\u0100\"}").is_err());
        // u32 fields must not wrap.
        let line = frame(None).to_json().replace("\"query\":2", "\"query\":4294967296");
        match Frame::decode_json(&line) {
            Err(WireError::Json(msg)) => assert!(msg.contains("query"), "{msg}"),
            other => panic!("expected a u32 overflow error, got {other:?}"),
        }
    }

    #[test]
    fn json_rejects_incomplete_frames() {
        // A truncated line must not decode as an all-zero frame.
        assert!(Frame::decode_json("{}").is_err());
        assert!(Frame::decode_json("{\"stream\":1}").is_err());
        let missing_payload = "{\"stream\":1,\"query\":0,\"start\":2,\"end\":3,\"depth\":1}";
        match Frame::decode_json(missing_payload) {
            Err(WireError::Json(msg)) => assert!(msg.contains("payload"), "{msg}"),
            other => panic!("expected a missing-field error, got {other:?}"),
        }
    }

    #[test]
    fn binary_round_trips_across_split_reads() {
        let frames = vec![frame(Some(b"<a>1</a>")), frame(None), frame(Some(&[0u8, 255, 10]))];
        let mut encoded = Vec::new();
        for f in &frames {
            f.encode_binary(&mut encoded);
        }
        for step in [1usize, 2, 3, 7, encoded.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in encoded.chunks(step) {
                dec.push(piece);
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "step {step}");
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn binary_rejects_bad_headers() {
        let mut dec = FrameDecoder::new();
        dec.push(&5u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(5)));

        // An attacker-controlled length above the ceiling fails fast instead
        // of buffering gigabytes for a frame that never completes.
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(u32::MAX)));
        let mut dec = FrameDecoder::new().with_max_frame(64);
        dec.push(&65u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::BadLength(65)));

        let mut dec = FrameDecoder::new();
        let mut buf = Vec::new();
        frame(None).encode_binary(&mut buf);
        let flags_at = 4 + BIN_HEADER - 1;
        buf[flags_at] = 0x82;
        dec.push(&buf);
        assert_eq!(dec.next_frame(), Err(WireError::BadFlags(0x82)));
    }

    #[test]
    fn finish_distinguishes_clean_eof_from_truncation() {
        let mut encoded = Vec::new();
        frame(Some(b"<a>1</a>")).encode_binary(&mut encoded);

        // Whole frame delivered: clean EOF.
        let mut dec = FrameDecoder::new();
        dec.push(&encoded);
        assert!(dec.next_frame().unwrap().is_some());
        assert_eq!(dec.finish(), Ok(()));

        // Connection cut mid-frame: next_frame politely waits forever —
        // finish() must flag the half-written tail.
        let mut dec = FrameDecoder::new();
        dec.push(&encoded[..encoded.len() - 3]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert_eq!(dec.finish(), Err(WireError::Truncated { buffered: encoded.len() - 3 }));

        // Even a partial length prefix counts.
        let mut dec = FrameDecoder::new();
        dec.push(&encoded[..2]);
        assert_eq!(dec.finish(), Err(WireError::Truncated { buffered: 2 }));
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn oversized_query_index_is_refused_not_truncated() {
        let m = crate::sink::MaterializedMatch {
            stream: 1,
            m: crate::OnlineMatch { query: (u32::MAX as usize) + 1, start: 0, end: 4, depth: 1 },
            payload: None,
        };
        match Frame::try_from_match(m.clone()) {
            Err(WireError::Overflow { field: "query", value }) => {
                assert_eq!(value, (u32::MAX as u64) + 1);
            }
            other => panic!("expected an overflow error, got {other:?}"),
        }
        // And the sink latches it instead of writing a wrapped frame.
        let mut sink = WireSink::new(Vec::new(), WireFormat::Binary);
        assert!(!sink.on_match(m));
        let (out, err) = sink.into_parts();
        assert!(out.is_empty());
        assert_eq!(err.unwrap().kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn handshake_round_trips_at_any_fragmentation() {
        let req = HandshakeRequest::new(WireFormat::Binary)
            .query("/a/b/c")
            .query("//k[d/e]")
            .retain_bytes(1 << 20)
            .stream_id(42);
        let mut encoded = req.encode();
        encoded.extend_from_slice(b"<stream>the xml follows immediately");
        for step in [1usize, 2, 3, 5, 8, encoded.len()] {
            let mut dec = HandshakeDecoder::new();
            let mut got = None;
            for piece in encoded.chunks(step) {
                if let Some(r) = dec.push(piece).unwrap() {
                    assert!(got.is_none(), "the request completes exactly once");
                    got = Some(r);
                }
            }
            assert_eq!(got.as_ref(), Some(&req), "step {step}");
            assert_eq!(dec.take_remainder(), b"<stream>the xml follows immediately", "step {step}");
        }
    }

    #[test]
    fn stats_handshake_completes_without_go_and_round_trips() {
        let req = HandshakeRequest::stats();
        let encoded = req.encode();
        assert_eq!(encoded, b"PPT/1 json\nSTATS\n");
        for step in [1usize, 3, encoded.len()] {
            let mut dec = HandshakeDecoder::new();
            let mut got = None;
            for piece in encoded.chunks(step) {
                if let Some(r) = dec.push(piece).unwrap() {
                    got = Some(r);
                }
            }
            let got = got.expect("STATS completes the handshake by itself");
            assert!(got.stats, "step {step}");
            assert!(got.queries.is_empty());
            assert_eq!(got, req);
        }
    }

    #[test]
    fn stats_mixed_with_session_verbs_is_rejected() {
        for bytes in [
            &b"PPT/1 json\nQUERY //a\nSTATS\n"[..],
            &b"PPT/1 json\nRETAIN 1024\nSTATS\n"[..],
            &b"PPT/1 json\nSTREAM 7\nSTATS\n"[..],
        ] {
            let mut dec = HandshakeDecoder::new();
            assert_eq!(dec.push(bytes).unwrap_err(), HandshakeError::StatsConflict);
        }
        // The other order too: STATS completes the handshake, so a QUERY
        // after it is stream remainder, not a verb — the conflict can only
        // arise with session verbs first.
        let mut dec = HandshakeDecoder::new();
        let req = dec.push(b"PPT/1 json\nSTATS\nQUERY //a\n").unwrap().unwrap();
        assert!(req.stats);
        assert_eq!(dec.take_remainder(), b"QUERY //a\n");
    }

    #[test]
    fn handshake_rejects_malformed_lines_with_structured_errors() {
        let cases: [(&[u8], HandshakeError); 7] = [
            (b"HTTP/1.1 GET /\n", HandshakeError::BadVersion("HTTP/1.1 GET /".into())),
            (b"PPT/1 xml\n", HandshakeError::BadFormat("xml".into())),
            (b"PPT/1 json\nFETCH //a\n", HandshakeError::UnknownCommand("FETCH".into())),
            (
                b"PPT/1 json\nRETAIN lots\n",
                HandshakeError::BadArgument { command: "RETAIN", value: "lots".into() },
            ),
            (b"PPT/1 json\nGO\n", HandshakeError::NoQueries),
            (b"PPT/1 json\nQUERY \xff\xfe\n", HandshakeError::NotUtf8),
            (
                b"PPT/1 json\nSTREAM 4503599627370496\n",
                HandshakeError::ReservedStreamId { id: 1 << 52 },
            ),
        ];
        for (bytes, expected) in cases {
            let mut dec = HandshakeDecoder::new();
            assert_eq!(dec.push(bytes).unwrap_err(), expected);
            // The error latches.
            assert_eq!(dec.push(b"QUERY //a\nGO\n").unwrap_err(), expected);
        }

        // Limits: an endless line and a query flood both fail fast.
        let mut dec = HandshakeDecoder::with_limits(16, 4);
        assert_eq!(dec.push(&[b'x'; 64]).unwrap_err(), HandshakeError::LineTooLong { limit: 16 });
        let mut dec = HandshakeDecoder::with_limits(1024, 2);
        assert_eq!(
            dec.push(b"PPT/1 json\nQUERY //a\nQUERY //b\nQUERY //c\n").unwrap_err(),
            HandshakeError::TooManyQueries { limit: 2 }
        );
    }

    #[test]
    fn handshake_line_floods_are_bounded_in_lines_and_memory() {
        // Blank lines and repeated options are each individually legal; a
        // client streaming them forever must hit the total-line budget, and
        // the decoder must not accumulate the consumed lines meanwhile.
        let mut dec = HandshakeDecoder::with_limits(64, 4);
        let flood: Vec<u8> = b"\n".repeat(1000);
        match dec.push(&flood) {
            Err(HandshakeError::TooManyLines { limit }) => assert_eq!(limit, 4 + 16),
            other => panic!("expected a line-budget rejection, got {other:?}"),
        }

        // A legitimate multi-push handshake compacts as it goes: buffered
        // memory stays bounded by roughly one line, not the handshake size.
        let mut dec = HandshakeDecoder::with_limits(64, 8);
        let mut lines: Vec<u8> = b"PPT/1 json\n".to_vec();
        for i in 0..7 {
            lines.extend_from_slice(format!("QUERY //q{i}\n").as_bytes());
        }
        let mut parsed = None;
        for piece in lines.chunks(5) {
            assert!(dec.buf.len() <= 128, "consumed lines must be compacted away");
            if let Some(req) = dec.push(piece).unwrap() {
                parsed = Some(req);
            }
        }
        assert!(parsed.is_none());
        assert_eq!(dec.push(b"GO\n").unwrap().unwrap().queries.len(), 7);
    }

    #[test]
    fn handshake_reply_round_trips() {
        let ok = HandshakeReply::Accepted { stream: 42, queries: vec![0, 1, 2] };
        assert_eq!(ok.encode(), "OK STREAM 42 0 1 2\n");
        assert_eq!(HandshakeReply::decode(&ok.encode()).unwrap(), ok);

        // The pre-assignment reply form still decodes (stream defaults 0).
        assert_eq!(
            HandshakeReply::decode("OK 0 1 2").unwrap(),
            HandshakeReply::Accepted { stream: 0, queries: vec![0, 1, 2] }
        );

        let err = HandshakeReply::Rejected("bad\nquery".into());
        assert_eq!(err.encode(), "ERR bad query\n", "rejection must stay one line");
        assert_eq!(
            HandshakeReply::decode(&err.encode()).unwrap(),
            HandshakeReply::Rejected("bad query".into())
        );

        let attach = HandshakeReply::Attached { stream: 42, queries: vec![0, 1] };
        assert_eq!(attach.encode(), "OK ATTACH 42 0 1\n");
        assert_eq!(HandshakeReply::decode(&attach.encode()).unwrap(), attach);
        // Attaching with zero queries is not a thing, but the line form is
        // symmetric with STREAM and must still round-trip.
        assert_eq!(
            HandshakeReply::decode("OK ATTACH 7").unwrap(),
            HandshakeReply::Attached { stream: 7, queries: Vec::new() }
        );

        assert!(HandshakeReply::decode("HELLO").is_err());
        assert!(HandshakeReply::decode("OK one two").is_err());
        assert!(HandshakeReply::decode("OK STREAM").is_err());
        assert!(HandshakeReply::decode("OK STREAM nope 0").is_err());
        assert!(HandshakeReply::decode("OK ATTACH").is_err());
        assert!(HandshakeReply::decode("OK ATTACH x 0").is_err());
    }

    #[test]
    fn explicit_stream_zero_survives_the_handshake_round_trip() {
        // `STREAM 0` must be carried, not silently dropped: an explicit
        // request for stream 0 and "no request" are different things now
        // that unset ids are server-assigned.
        let req = HandshakeRequest::new(WireFormat::JsonLines).query("//a").stream_id(0);
        let encoded = req.encode();
        assert!(
            String::from_utf8_lossy(&encoded).contains("STREAM 0\n"),
            "explicit stream 0 must be emitted: {:?}",
            String::from_utf8_lossy(&encoded)
        );
        let mut dec = HandshakeDecoder::new();
        let parsed = dec.push(&encoded).unwrap().expect("complete");
        assert_eq!(parsed.stream_id, Some(0));

        // And an omitted STREAM line decodes as None, not 0.
        let req = HandshakeRequest::new(WireFormat::JsonLines).query("//a");
        let mut dec = HandshakeDecoder::new();
        let parsed = dec.push(&req.encode()).unwrap().expect("complete");
        assert_eq!(parsed.stream_id, None);
    }

    #[test]
    fn wire_sink_latches_write_errors() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("wire down"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = WireSink::new(FailAfter(1), WireFormat::JsonLines);
        let m = crate::sink::MaterializedMatch {
            stream: 1,
            m: crate::OnlineMatch { query: 0, start: 0, end: 4, depth: 1 },
            payload: Some(b"<a/>".to_vec()),
        };
        assert!(sink.on_match(m.clone()));
        assert!(!sink.on_match(m.clone()), "write error must refuse the frame");
        assert!(!sink.on_match(m), "the error latches");
        assert_eq!(sink.frames, 1);
        let (_, err) = sink.into_parts();
        assert!(err.is_some());
    }
}
