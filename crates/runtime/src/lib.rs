//! # ppt-runtime — online streaming execution of parallel pushdown transducers
//!
//! The batch engine in `ppt-core` answers "run these queries over these
//! bytes". This crate answers the production question the paper's §1 poses:
//! keep answering them, forever, over **unbounded** streams, for **many
//! concurrent clients**, with **bounded memory** and matches delivered while
//! the stream is still flowing.
//!
//! ## Architecture
//!
//! A [`Runtime`] owns one shared pool of transducer workers. Each query
//! session (a compiled [`Engine`] bound to one input stream) runs the
//! paper's split → parallel-transduce → join pipeline as three *pipelined
//! stages* connected by bounded hand-offs:
//!
//! * the **splitter** lexes window boundaries off any [`std::io::Read`]
//!   source with [`ppt_xmlstream::WindowSplitter`] (partial tags are carried
//!   across windows, never cut) and chops windows into arbitrary-byte chunks;
//! * the **worker pool** computes each chunk's state mapping out of order —
//!   chunks from *all* sessions interleave in one queue, so a single process
//!   serves many clients from one set of cores;
//! * the **joiner** eagerly left-folds mappings the moment the next-in-order
//!   chunk completes ([`ppt_core::join::PrefixFolder`]), resolves element
//!   spans incrementally, filters predicates scope-by-scope, and emits every
//!   match through a [`MatchSink`] (or the [`MatchStream`] iterator).
//!
//! Backpressure is credit-based: a session may only have `inflight_chunks`
//! chunks admitted at once; the joiner returns a credit after folding (and
//! after the sink accepted the fold's matches), so a slow consumer stalls its
//! own splitter — memory stays bounded by `inflight_chunks × chunk size` per
//! session no matter how long the stream runs.
//!
//! ## Quick start
//!
//! ```
//! use ppt_core::Engine;
//! use ppt_runtime::{CollectSink, Runtime};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(
//!     Engine::builder()
//!         .add_query("/a/b/c").unwrap()
//!         .chunk_size(8)
//!         .window_size(4096)
//!         .build()
//!         .unwrap(),
//! );
//! let runtime = Runtime::builder().workers(2).build();
//! let mut sink = CollectSink::new();
//! let report = runtime
//!     .process_reader(Arc::clone(&engine), &b"<a><b><c></c></b></a>"[..], &mut sink)
//!     .unwrap();
//! assert_eq!(report.match_counts, vec![1]);
//! assert_eq!(sink.matches.len(), 1);
//! ```
//!
//! Or pull matches as an iterator (driver threads run the pipeline while you
//! iterate):
//!
//! ```
//! # use ppt_core::Engine;
//! # use ppt_runtime::Runtime;
//! # use std::sync::Arc;
//! let engine = Arc::new(Engine::builder().add_query("//c").unwrap().build().unwrap());
//! let runtime = Runtime::builder().workers(2).build();
//! let stream =
//!     runtime.stream_reader(engine, std::io::Cursor::new(b"<a><c></c><c></c></a>".to_vec()));
//! assert_eq!(stream.count(), 2);
//! ```

// PR-8 hardening: the only sanctioned unsafe is the reactor's poll(2)/
// eventfd FFI, and every unsafe operation there must sit in an explicit
// `unsafe {}` block with its own `// SAFETY:` rationale (lint rule L1).
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_debug_implementations)]
// PR-9 docs pass: every public item carries rustdoc; CI builds docs with
// `-D warnings` so broken intra-doc links fail the build too.
#![deny(missing_docs)]

mod filters;
mod pool;
#[cfg(unix)]
pub mod reactor;
mod resolver;
mod retain;
pub mod serve;
mod session;
pub mod shard;
mod sink;
mod stats;
pub mod subscribe;
pub mod telemetry;
pub mod wire;

pub use resolver::{SpanEvent, SpanResolver};
pub use serve::{
    ConnectionReport, Registration, ServerMode, ServerStats, ShardSpec, TcpServer, TcpServerBuilder,
};
pub use session::{SessionHandle, SessionReport};
pub use shard::{ForwardReport, HashRing, ShardRouter};
pub use sink::{
    BorrowedMatch, CollectPayloadSink, CollectSink, MatchSink, MaterializedMatch, OnlineMatch,
    PayloadRef, PayloadSink,
};
pub use stats::{ReactorStats, RouterStats, RuntimeStats, ShardStats};
pub use subscribe::{
    AttachError, CollectSubscriber, SharedStreamHandle, StreamControl, SubscriberDelivery,
    SubscriberId, SubscriberReport, SubscriberSink,
};
pub use telemetry::{
    EventJournal, EventKind, Histogram, HistogramSnapshot, MetricKind, Registry, RuntimeTelemetry,
};
pub use wire::{
    Frame, FrameDecoder, FrameRef, FrameWrite, HandshakeDecoder, HandshakeError, HandshakeReply,
    HandshakeRequest, WireError, WireFormat, WireSink, JSON_FRAME_TAIL,
};

use pool::{SessionCore, WorkerPool};
use ppt_core::Engine;
use ppt_xmlstream::pump_reader;
use session::{joiner_guarded, Feeder};
use sink::{ChannelSink, Materializer};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// Per-session options: identity on the wire and payload retention.
///
/// ```
/// use ppt_runtime::SessionOptions;
/// let opts = SessionOptions::new().stream_id(7).retain_bytes(8 << 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Caller-assigned stream id stamped on every wire frame (default 0).
    pub stream_id: u64,
    /// Byte budget of the window-retention ring; `None` (the default)
    /// disables retention — matches are delivered as offsets only.
    ///
    /// With retention on, a match's payload is sliced from the retained
    /// windows at delivery time. Spans that outlive the budget (one element
    /// larger than the whole ring) are delivered without payload and counted
    /// in [`RuntimeStats::payload_misses`]. Retention requires span
    /// resolution (the default) — without an `end` offset there is nothing
    /// to slice.
    ///
    /// Size the budget above the session's in-flight span —
    /// `inflight_chunks × chunk_size` plus one window — since windows are
    /// retained from the moment the splitter emits them, before their
    /// chunks fold; a budget below that evicts windows before their own
    /// matches can be materialized.
    pub retention_budget: Option<usize>,
    /// Maintain the stream's open-tag path in the feeder (one extra
    /// tags-only lex per window). Required for mid-stream engine swaps — the
    /// shared-stream subscription layer sets it so subscribers can attach
    /// new queries while the stream is live. Default off.
    pub track_open_path: bool,
}

impl SessionOptions {
    /// The default options: stream id 0, no retention.
    pub fn new() -> SessionOptions {
        SessionOptions::default()
    }

    /// Sets the stream id carried on wire frames.
    pub fn stream_id(mut self, id: u64) -> SessionOptions {
        self.stream_id = id;
        self
    }

    /// Enables payload retention with the given byte budget.
    pub fn retain_bytes(mut self, budget: usize) -> SessionOptions {
        self.retention_budget = Some(budget.max(1));
        self
    }

    /// Enables open-tag path tracking (the prerequisite for mid-stream
    /// engine swaps; see [`SessionOptions::track_open_path`]).
    pub fn track_open_path(mut self, enable: bool) -> SessionOptions {
        self.track_open_path = enable;
        self
    }
}

/// Builder for a [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    workers: Option<usize>,
    inflight_chunks: Option<usize>,
    match_buffer: Option<usize>,
}

impl RuntimeBuilder {
    /// Number of transducer worker threads (default: the number of logical
    /// cores).
    pub fn workers(mut self, n: usize) -> RuntimeBuilder {
        self.workers = Some(n.max(1));
        self
    }

    /// Per-session cap on chunks admitted into the pipeline at once — the
    /// backpressure window (default: `4 × workers`, minimum 4).
    pub fn inflight_chunks(mut self, n: usize) -> RuntimeBuilder {
        self.inflight_chunks = Some(n.max(1));
        self
    }

    /// Capacity of the match channel behind [`Runtime::stream_reader`]
    /// (default 1024).
    pub fn match_buffer(mut self, n: usize) -> RuntimeBuilder {
        self.match_buffer = Some(n.max(1));
        self
    }

    /// Spawns the worker pool.
    pub fn build(self) -> Runtime {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let inflight = self.inflight_chunks.unwrap_or((workers * 4).max(4));
        Runtime {
            pool: Arc::new(WorkerPool::new(workers)),
            inflight_chunks: inflight,
            match_buffer: self.match_buffer.unwrap_or(1024),
            telemetry: Arc::new(telemetry::RuntimeTelemetry::new()),
        }
    }
}

/// The outcome of [`Runtime::serve_reader`]: the session report, the writer
/// handed back, and the first write error if the connection died mid-stream.
#[derive(Debug)]
pub struct WireServed<W> {
    /// The session's final report (covers the whole stream even when the
    /// writer failed part-way — later matches count as dropped).
    pub report: SessionReport,
    /// The writer, returned for reuse or graceful shutdown.
    pub writer: W,
    /// Frames successfully written.
    pub frames: u64,
    /// Bytes successfully written.
    pub bytes_out: u64,
    /// The first write error, if the writer failed (no frames were written
    /// after it).
    pub write_error: Option<std::io::Error>,
}

/// The session manager: one shared worker pool multiplexing any number of
/// concurrent query sessions.
///
/// Keep the `Runtime` alive while sessions are running; dropping it stops the
/// workers once the queued jobs drain.
pub struct Runtime {
    pool: Arc<WorkerPool>,
    inflight_chunks: usize,
    match_buffer: usize,
    telemetry: Arc<telemetry::RuntimeTelemetry>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("inflight_chunks", &self.inflight_chunks)
            .field("match_buffer", &self.match_buffer)
            .finish_non_exhaustive()
    }
}

/// `Runtime` *is* the session manager; this alias keeps call sites that talk
/// about session management readable.
pub type SessionManager = Runtime;

impl Runtime {
    /// Starts building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// A runtime with `workers` threads and default queueing.
    pub fn new(workers: usize) -> Runtime {
        Runtime::builder().workers(workers).build()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.worker_count()
    }

    /// The shared worker pool (the reactor submits chunk jobs directly).
    pub(crate) fn worker_pool(&self) -> &Arc<pool::WorkerPool> {
        &self.pool
    }

    /// This runtime's pipeline histograms. Every session records into them;
    /// a sharded server aggregates one instance per shard at scrape time.
    pub fn telemetry(&self) -> &Arc<telemetry::RuntimeTelemetry> {
        &self.telemetry
    }

    /// Builds a session core with this runtime's in-flight credit window —
    /// the reactor's entry point, which drives the feeder and joiner itself
    /// instead of going through the blocking session APIs.
    pub(crate) fn new_session_core(
        &self,
        engine: Arc<Engine>,
        opts: &SessionOptions,
    ) -> Arc<pool::SessionCore> {
        Arc::new(pool::SessionCore::new(
            engine,
            self.inflight_chunks,
            opts,
            Arc::clone(&self.telemetry),
        ))
    }

    /// Peak depth the shared job queue has reached across all sessions.
    pub fn peak_queue_depth(&self) -> usize {
        self.pool.peak_queue_depth()
    }

    /// Opens a session with an owned sink: push bytes with
    /// [`SessionHandle::feed`], close with [`SessionHandle::finish`].
    ///
    /// Many sessions — with different engines — can be open at once; they
    /// share this runtime's workers.
    pub fn open_session(&self, engine: Arc<Engine>, sink: Box<dyn MatchSink>) -> SessionHandle {
        self.open_session_with(engine, &SessionOptions::new(), sink)
    }

    /// [`Runtime::open_session`] with explicit [`SessionOptions`] (stream id,
    /// retention budget).
    pub fn open_session_with(
        &self,
        engine: Arc<Engine>,
        opts: &SessionOptions,
        sink: Box<dyn MatchSink>,
    ) -> SessionHandle {
        let core = Arc::new(SessionCore::new(
            engine,
            self.inflight_chunks,
            opts,
            Arc::clone(&self.telemetry),
        ));
        self.spawn_session(core, sink)
    }

    /// Push-style counterpart of [`Runtime::process_materialized`]: opens a
    /// session whose matches reach `sink` with their element bytes attached.
    /// Feed with [`SessionHandle::feed`], close with [`SessionHandle::finish`]
    /// — note that `finish` hands back the materializing adapter, not `sink`
    /// itself; a sink whose state the caller needs afterwards should share it
    /// (e.g. via `Arc<Mutex<..>>`) or use the reader-driven entry points,
    /// which borrow the sink instead.
    pub fn open_materialized_session(
        &self,
        engine: Arc<Engine>,
        opts: &SessionOptions,
        sink: Box<dyn PayloadSink>,
    ) -> SessionHandle {
        let core = Arc::new(SessionCore::new(
            engine,
            self.inflight_chunks,
            opts,
            Arc::clone(&self.telemetry),
        ));
        let materializer = Materializer { core: Arc::clone(&core), inner: sink };
        self.spawn_session(core, Box::new(materializer))
    }

    /// Spawns the joiner thread for an owned-sink session.
    fn spawn_session(&self, core: Arc<SessionCore>, sink: Box<dyn MatchSink>) -> SessionHandle {
        let joiner_core = Arc::clone(&core);
        let joiner = std::thread::Builder::new()
            .name("ppt-joiner".to_string())
            .spawn(move || {
                let mut sink = sink;
                let result = joiner_guarded(&joiner_core, &mut *sink);
                (result, sink)
            })
            // UNWRAP-OK: thread-spawn failure is process-level resource
            // exhaustion; there is no session-scoped recovery to offer.
            .expect("failed to spawn joiner");
        SessionHandle {
            feeder: Feeder::new(core),
            pool: Arc::clone(&self.pool),
            joiner: Some(joiner),
        }
    }

    /// Processes an entire reader through one session, delivering matches to
    /// `sink` as the stream flows. The calling thread drives the splitter;
    /// the joiner runs on a scoped thread; the call returns once the stream
    /// is exhausted and every match was emitted.
    ///
    /// On a read error the pipeline is drained cleanly and the error is
    /// returned; matches emitted before the error will have reached the sink.
    pub fn process_reader<R: Read>(
        &self,
        engine: Arc<Engine>,
        reader: R,
        sink: &mut dyn MatchSink,
    ) -> std::io::Result<SessionReport> {
        let core = Arc::new(SessionCore::new(
            engine,
            self.inflight_chunks,
            &SessionOptions::new(),
            Arc::clone(&self.telemetry),
        ));
        self.run_session(core, reader, sink)
    }

    /// [`Runtime::process_reader`] with *materialized* delivery: the session
    /// retains recent stream windows (per `opts`) and every match reaches
    /// `sink` together with its element bytes, sliced from the retained
    /// windows at delivery time.
    ///
    /// Payloads are byte-identical to what the batch engine would report:
    /// `stream[m.start .. m.end]`. A span that was evicted from the ring
    /// before delivery arrives with `payload == None` and is counted in
    /// [`RuntimeStats::payload_misses`].
    pub fn process_materialized<R: Read>(
        &self,
        engine: Arc<Engine>,
        opts: &SessionOptions,
        reader: R,
        sink: &mut dyn PayloadSink,
    ) -> std::io::Result<SessionReport> {
        let core = Arc::new(SessionCore::new(
            engine,
            self.inflight_chunks,
            opts,
            Arc::clone(&self.telemetry),
        ));
        let mut materializer = Materializer { core: Arc::clone(&core), inner: sink };
        self.run_session(core, reader, &mut materializer)
    }

    /// Serves a stream over a wire connection: materializes every match and
    /// writes it to `writer` as JSON-lines or length-prefixed binary frames
    /// (see [`wire`]).
    ///
    /// Only a failing *reader* aborts with `Err` (as in
    /// [`Runtime::process_reader`]). A failing *writer* — the common serving
    /// failure, a client hanging up mid-stream — latches inside the
    /// [`WireSink`]: subsequent matches are counted as dropped, the pipeline
    /// drains cleanly, and the error comes back in
    /// [`WireServed::write_error`] *together with* the session report and
    /// the writer, so per-connection accounting survives the disconnect.
    ///
    /// A reader `Err` does drop the writer (it is owned by the sink during
    /// the call); a server that must keep the connection through ingest
    /// failures should own the [`WireSink`] itself and call
    /// [`Runtime::process_materialized`] directly.
    ///
    /// Frames are written with one `write_all` each and only flushed at end
    /// of stream: hand in an unbuffered writer (a socket directly), or own
    /// the flush cadence via `process_materialized` — behind a `BufWriter`
    /// an unbounded low-match-rate stream would go silent for arbitrarily
    /// long.
    pub fn serve_reader<R: Read, W: Write + Send>(
        &self,
        engine: Arc<Engine>,
        opts: &SessionOptions,
        reader: R,
        writer: W,
        format: WireFormat,
    ) -> std::io::Result<WireServed<W>> {
        let mut sink = WireSink::new(writer, format);
        let report = self.process_materialized(engine, opts, reader, &mut sink)?;
        let (frames, bytes_out) = (sink.frames, sink.bytes_out);
        let (writer, write_error) = sink.into_parts();
        Ok(WireServed { report, writer, frames, bytes_out, write_error })
    }

    /// The shared body of the reader-driven entry points: splitter on the
    /// calling thread, joiner on a scoped thread.
    fn run_session<R: Read>(
        &self,
        core: Arc<SessionCore>,
        mut reader: R,
        sink: &mut dyn MatchSink,
    ) -> std::io::Result<SessionReport> {
        let mut feeder = Feeder::new(Arc::clone(&core));
        let pool = &self.pool;
        std::thread::scope(|scope| {
            let core_ref = &core;
            let joiner = scope.spawn(move || joiner_guarded(core_ref, sink));
            let io_result = pump_reader(&mut reader, |bytes| {
                feeder.feed(pool, bytes);
                // Stop reading if the session died (a stage panicked): on an
                // unbounded source there is no EOF to save us.
                !core_ref.is_dead()
            });
            // Always announce the end so the joiner terminates, error or not.
            feeder.finish(pool);
            let report = match joiner.join() {
                Ok(Ok(report)) => report,
                // Re-raise a sink/joiner panic on the caller's thread, now
                // that the pipeline is drained. `joiner_guarded` catches
                // panics itself, so a failed join (a panic that escaped the
                // guard) re-raises through the same arm.
                Ok(Err(panic)) | Err(panic) => std::panic::resume_unwind(panic),
            };
            io_result.map(|()| report)
        })
    }

    /// Processes a reader through one session and returns the matches as a
    /// blocking iterator. Two driver threads (splitter and joiner) run the
    /// pipeline while you consume; a consumer that stops pulling
    /// backpressures the stream through the bounded match channel.
    ///
    /// Call [`MatchStream::finish`] after iteration for the final report.
    /// Dropping (or finishing) the stream early *cancels* the session: the
    /// driver stops reading the source at the next read boundary instead of
    /// pumping an unbounded stream to a non-existent EOF.
    pub fn stream_reader<R: Read + Send + 'static>(
        &self,
        engine: Arc<Engine>,
        reader: R,
    ) -> MatchStream {
        let (tx, rx) = sync_channel(self.match_buffer);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel_driver = Arc::clone(&cancel);
        let mut session = self.open_session(engine, Box::new(ChannelSink { tx }));
        let driver = std::thread::Builder::new()
            .name("ppt-feeder".to_string())
            .spawn(move || -> std::io::Result<SessionReport> {
                let mut reader = reader;
                let io_result = pump_reader(&mut reader, |bytes| {
                    session.feed(bytes);
                    // Acquire pairs with the Release store in finish()/Drop:
                    // observing the cancel flag must also make any state the
                    // canceller wrote before it visible to this driver.
                    !cancel_driver.load(Ordering::Acquire) && !session.is_dead()
                });
                // A sink panic cannot happen here (ChannelSink never panics),
                // but a fold/filter panic would: let finish() resume it on
                // this driver thread, where join() below surfaces it.
                let (report, _sink) = session.finish();
                io_result.map(|()| report)
            })
            // UNWRAP-OK: thread-spawn failure is process-level resource
            // exhaustion; there is no session-scoped recovery to offer.
            .expect("failed to spawn feeder");
        MatchStream { rx: Some(rx), cancel, driver: Some(driver) }
    }
}

/// Blocking iterator over a session's matches (see
/// [`Runtime::stream_reader`]).
///
/// Exhausting the iterator means the stream ended; dropping it (or calling
/// [`MatchStream::finish`]) before that cancels the session — essential for
/// `stream.take(n)`-style consumers of unbounded sources, which would
/// otherwise wait on an EOF that never comes.
pub struct MatchStream {
    rx: Option<Receiver<OnlineMatch>>,
    cancel: Arc<AtomicBool>,
    driver: Option<std::thread::JoinHandle<std::io::Result<SessionReport>>>,
}

impl std::fmt::Debug for MatchStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchStream")
            .field("cancelled", &self.cancel.load(Ordering::Acquire))
            .field("finished", &self.driver.is_none())
            .finish_non_exhaustive()
    }
}

impl Iterator for MatchStream {
    type Item = OnlineMatch;

    fn next(&mut self) -> Option<OnlineMatch> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl MatchStream {
    /// Stops reading the source (if it hasn't ended already), waits for the
    /// in-flight pipeline to drain, and returns the final report. Matches
    /// not yet consumed are discarded; after a cancellation the report
    /// covers the prefix that was processed.
    pub fn finish(mut self) -> std::io::Result<SessionReport> {
        // UNWRAP-OK: `finish` consumes `self`, and `Drop` (the only other
        // taker) has not run yet — the driver is always present here.
        let driver = self.driver.take().expect("finish called once");
        // Release pairs with the driver's Acquire load of the cancel flag.
        self.cancel.store(true, Ordering::Release);
        // Dropping the receiver lets the sink's sends fail fast instead of
        // blocking on a full channel nobody reads.
        drop(self.rx.take());
        match driver.join() {
            Ok(result) => result,
            // A fold/filter panic was resumed on the driver thread; re-raise
            // the original payload here rather than a generic message.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for MatchStream {
    fn drop(&mut self) {
        // Release pairs with the driver's Acquire load of the cancel flag.
        self.cancel.store(true, Ordering::Release);
        drop(self.rx.take());
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}
