//! Per-session runtime statistics.
//!
//! Counters are plain atomics shared between the three pipeline stages
//! (feeder, workers, joiner); [`RuntimeStats`] is a point-in-time snapshot of
//! them, cheap enough to take while the session is live.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Shared mutable counters; one instance per session.
#[derive(Debug)]
pub(crate) struct Counters {
    pub started: Instant,
    pub bytes_in: AtomicU64,
    pub windows: AtomicU64,
    pub chunks_submitted: AtomicU64,
    pub chunks_joined: AtomicU64,
    pub submatches: AtomicU64,
    pub matches: AtomicU64,
    /// Matches the delivery layer discarded instead of delivering: the sink
    /// refused them (hung-up receiver, dead connection) or panicked while a
    /// match was in its hands (the session is then poisoned).
    pub dropped_matches: AtomicU64,
    /// `true` only while a match is inside `MatchSink::on_match`; the joiner
    /// panic guard turns a set flag into one dropped match.
    pub delivering: AtomicBool,
    /// Matches whose payload span was already evicted from the retention
    /// ring when they were delivered (delivered without payload).
    pub payload_misses: AtomicU64,
    /// Windows the retention ring evicted under byte-budget pressure.
    pub windows_evicted: AtomicU64,
    /// Bytes those evicted windows covered.
    pub bytes_evicted: AtomicU64,
    /// Peak bytes the retention ring held at once.
    pub peak_retained_bytes: AtomicUsize,
    /// Peak depth of the joiner's out-of-order reorder buffer.
    pub peak_reorder: AtomicUsize,
    /// Peak join lag: highest completed sequence number minus the next
    /// sequence number the joiner needed, at the moment it resumed.
    pub peak_join_lag: AtomicU64,
    /// Total wall-clock time workers spent transducing this session's chunks.
    pub worker_busy_nanos: AtomicU64,
    /// Total time the feeder spent blocked waiting for an in-flight credit
    /// (i.e. backpressure from the joiner / sink).
    pub backpressure_nanos: AtomicU64,
}

impl Counters {
    pub fn new() -> Counters {
        Counters {
            started: Instant::now(),
            bytes_in: AtomicU64::new(0),
            windows: AtomicU64::new(0),
            chunks_submitted: AtomicU64::new(0),
            chunks_joined: AtomicU64::new(0),
            submatches: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            dropped_matches: AtomicU64::new(0),
            delivering: AtomicBool::new(false),
            payload_misses: AtomicU64::new(0),
            windows_evicted: AtomicU64::new(0),
            bytes_evicted: AtomicU64::new(0),
            peak_retained_bytes: AtomicUsize::new(0),
            peak_reorder: AtomicUsize::new(0),
            peak_join_lag: AtomicU64::new(0),
            worker_busy_nanos: AtomicU64::new(0),
            backpressure_nanos: AtomicU64::new(0),
        }
    }

    pub fn raise_peak_reorder(&self, depth: usize) {
        self.peak_reorder.fetch_max(depth, Ordering::Relaxed);
    }

    pub fn raise_peak_join_lag(&self, lag: u64) {
        self.peak_join_lag.fetch_max(lag, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> RuntimeStats {
        // Torn-tuple discipline: counters advance upstream-first (a chunk is
        // submitted before it is joined; a submatch is drained before its
        // match is emitted), so a live snapshot must load the *downstream*
        // counter of each pair first. Reading `chunks_submitted` before
        // `chunks_joined` could observe a join that happened between the two
        // loads and report `chunks_joined > chunks` — an impossible tuple.
        let chunks_joined = self.chunks_joined.load(Ordering::Relaxed);
        let chunks = self.chunks_submitted.load(Ordering::Relaxed);
        let matches = self.matches.load(Ordering::Relaxed);
        let submatches = self.submatches.load(Ordering::Relaxed);
        RuntimeStats {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            chunks,
            chunks_joined,
            submatches,
            matches,
            dropped_matches: self.dropped_matches.load(Ordering::Relaxed),
            payload_misses: self.payload_misses.load(Ordering::Relaxed),
            windows_evicted: self.windows_evicted.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            peak_retained_bytes: self.peak_retained_bytes.load(Ordering::Relaxed),
            peak_reorder_depth: self.peak_reorder.load(Ordering::Relaxed),
            peak_join_lag: self.peak_join_lag.load(Ordering::Relaxed),
            worker_busy: Duration::from_nanos(self.worker_busy_nanos.load(Ordering::Relaxed)),
            backpressure_wait: Duration::from_nanos(
                self.backpressure_nanos.load(Ordering::Relaxed),
            ),
            elapsed: self.started.elapsed(),
        }
    }
}

/// A snapshot of one session's runtime statistics.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Bytes ingested from the stream so far.
    pub bytes_in: u64,
    /// Windows the splitter stage emitted.
    pub windows: u64,
    /// Chunks submitted to the worker pool.
    pub chunks: u64,
    /// Chunks the joiner has folded.
    pub chunks_joined: u64,
    /// Basic sub-query matches drained from the fold.
    pub submatches: u64,
    /// Query matches emitted through the sink.
    pub matches: u64,
    /// Matches the delivery layer discarded instead of delivering (sink
    /// refused or panicked mid-delivery). `matches + dropped_matches` is the
    /// number of matches the joiner produced.
    pub dropped_matches: u64,
    /// Matches delivered without payload because their span had been evicted
    /// from the retention ring.
    pub payload_misses: u64,
    /// Retention-ring windows evicted under byte-budget pressure.
    pub windows_evicted: u64,
    /// Bytes those evicted windows covered.
    pub bytes_evicted: u64,
    /// Peak bytes the retention ring held at once (bounded by
    /// `max(budget, largest window)`).
    pub peak_retained_bytes: usize,
    /// Peak depth of the joiner's out-of-order reorder buffer (how far ahead
    /// of the fold the workers ran).
    pub peak_reorder_depth: usize,
    /// Peak join lag in chunks (highest completed sequence number minus the
    /// sequence number the joiner was waiting for).
    pub peak_join_lag: u64,
    /// Total worker wall-clock time spent transducing this session's chunks.
    pub worker_busy: Duration,
    /// Total time the feeder was blocked on backpressure (all in-flight
    /// credits held downstream).
    pub backpressure_wait: Duration,
    /// Wall-clock time since the session opened.
    pub elapsed: Duration,
}

/// A point-in-time snapshot of the reactor's event-loop accounting (all
/// ingest threads summed), carried in
/// [`crate::serve::ServerStats::reactor`] when the server runs in
/// [`crate::serve::ServerMode::Reactor`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// File descriptors currently registered with the event loop
    /// (connections plus the listener and the wake fd of each ingest
    /// thread).
    pub registered_fds: usize,
    /// Peak number of registered file descriptors.
    pub peak_registered_fds: usize,
    /// `poll(2)` calls made across all ingest threads.
    pub polls: u64,
    /// Cross-thread wake-ups observed on the eventfd (credit returns,
    /// joiner completions, shutdown, connection hand-offs).
    pub wakeups: u64,
    /// Readiness events dispatched to connection state machines (one per
    /// ready fd per poll round).
    pub readiness_dispatches: u64,
    /// Peak bytes any single connection's outbox held at once (framed
    /// matches waiting for the socket to accept them).
    pub peak_outbox_bytes: usize,
}

/// Accounting for one shard of a sharded server (see [`crate::shard`]),
/// carried in [`crate::serve::ServerStats::shards`]. A one-shard server
/// reports a single entry, so dashboards read the same shape at every
/// scale.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// The shard's index on the ring.
    pub shard: usize,
    /// Transducer worker threads this shard's runtime owns.
    pub workers: usize,
    /// Sessions currently being served on this shard.
    pub active_sessions: usize,
    /// Sessions ever placed on this shard.
    pub sessions: u64,
    /// Query matches the shard's completed sessions emitted.
    pub matches: u64,
    /// Frames written by this shard's sessions.
    pub frames_out: u64,
    /// Bytes those frames covered.
    pub bytes_out: u64,
    /// The largest retention-ring occupancy any one of this shard's sessions
    /// reached.
    pub peak_retained_bytes: usize,
    /// Peak depth of this shard's worker-pool job queue.
    pub peak_queue_depth: usize,
}

/// Router-level counters of a sharded server (see
/// [`crate::shard::ShardRouter`]), carried in
/// [`crate::serve::ServerStats::router`].
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Streams placed on a shard (one per accepted session).
    pub placements: u64,
    /// Ring lookups performed (placements plus bare routing queries).
    pub ring_lookups: u64,
    /// Placements per shard, ring order.
    pub per_shard_placements: Vec<u64>,
    /// Max per-shard placements over the per-shard mean (1.0 = perfectly
    /// balanced; also 1.0 before any placement).
    pub imbalance: f64,
}

impl RuntimeStats {
    /// Sustained ingest throughput in MiB/s over the session's lifetime.
    pub fn throughput_mib_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes_in as f64 / (1024.0 * 1024.0) / secs
    }

    /// Chunks still in flight (submitted but not yet folded).
    pub fn chunks_in_flight(&self) -> u64 {
        self.chunks.saturating_sub(self.chunks_joined)
    }
}
