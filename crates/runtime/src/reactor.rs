//! The event-driven ingest layer: one `poll(2)` loop drives every
//! connection.
//!
//! The thread-per-connection front-end ([`crate::serve`]) spends an OS
//! thread per client because the splitter blocks on `Read`. This module
//! replaces that layer with a **reactor**: a small fixed set of ingest
//! threads multiplexes all connections over nonblocking sockets, so one
//! thread can feed thousands of slow network streams into the shared worker
//! pool. Everything below the ingest layer — the handshake grammar, the
//! credit scheme, the retention ring, the wire framing — is reused, not
//! reimplemented.
//!
//! ```text
//!                    ┌────────────── ingest thread (poll loop) ─────────────┐
//!  client sockets ──►│ Conn: Handshaking ─► Streaming ─► Draining           │
//!                    │   readable ─► HandshakeDecoder / Feeder (nonblocking)│
//!                    │   writable ◄─ per-conn outbox (bounded)              │
//!                    └──────────┬───────────────────────────▲───────────────┘
//!                       chunk jobs                    framed matches
//!                               ▼                           │
//!                      shared WorkerPool ──► JoinPool (fold/resolve/filter)
//! ```
//!
//! Design points:
//!
//! * **No blocking anywhere on the ingest threads.** The `Feeder` grew a
//!   non-blocking discipline: a chunk that cannot get an in-flight credit
//!   stays pending and the connection's `POLLIN` interest is dropped — the
//!   kernel's socket buffer, and eventually the client, absorb the
//!   backpressure. A credit return fires
//!   `SessionEvents::on_credit`, which wakes the loop through
//!   an `eventfd(2)` and re-arms the read.
//! * **No thread per session on the join side either.** The joiner state
//!   machine (`JoinerState`) lives in a `JoinTask`; a fixed `JoinPool`
//!   of executor threads runs `try_take → fold_one` steps for whichever
//!   sessions have deliverable chunks. A session whose outbox is over its
//!   byte cap is parked (`stalled_on_outbox`) until the reactor drains the
//!   socket below the cap — so a slow client stalls *its own* fold frontier,
//!   which holds its credits, which pauses its reads: backpressure
//!   propagates through the retention ring exactly as in the blocking path.
//! * **Dependency-free.** `poll(2)` and `eventfd(2)` are declared directly
//!   via `extern "C"` (the same offline-shim spirit as `shims/`): no
//!   crates.io, no async runtime. On non-Linux Unix the wake-up fd falls
//!   back to a loopback `UdpSocket` pair — same poll semantics, std only.
//!
//! The public surface stays [`crate::serve::TcpServer`]; this module is the
//! engine room behind [`crate::serve::ServerMode::Reactor`].

use crate::pool::{lock_recover, panic_message, SessionCore, SessionEvents, TryTake, WorkerPool};
use crate::serve::{ConnectionReport, ServeTelemetry, Shared};
use crate::session::{Feeder, JoinerState, SessionReport};
use crate::sink::{BorrowedMatch, Materializer, PayloadRef, PayloadSink};
use crate::stats::{ReactorStats, RuntimeStats};
use crate::subscribe::{
    shared_stream_parts, AttachError, FanoutSink, StreamControl, SubscriberDelivery, SubscriberId,
    SubscriberReport, SubscriberSink,
};
use crate::wire::{FrameRef, FrameWrite, HandshakeDecoder, HandshakeReply, WireFormat, WireSink};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Instant;

// ---------------------------------------------------------------------------
// poll(2) / eventfd(2) FFI
// ---------------------------------------------------------------------------

/// `struct pollfd` — identical layout on every supported Unix.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;
pub(crate) const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

/// `struct iovec` — identical layout on every supported Unix; the
/// scatter-gather unit of the vectored outbox drain.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct IoVec {
    iov_base: *const std::ffi::c_void,
    iov_len: usize,
}

/// Upper bound on iovec entries gathered per `writev(2)` call — well under
/// `IOV_MAX` (1024 on Linux) while still batching dozens of frames per
/// syscall.
const MAX_IOVEC: usize = 64;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
    fn writev(fd: RawFd, iov: *const IoVec, iovcnt: std::ffi::c_int) -> isize;
    #[cfg(target_os = "linux")]
    fn eventfd(initval: std::ffi::c_uint, flags: std::ffi::c_int) -> std::ffi::c_int;
}

/// Blocks in `poll(2)` until a registered fd is ready or `timeout_ms`
/// elapses (`-1` = forever). Returns the number of ready fds; retries
/// `EINTR` internally.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of `pollfd`-
        // layout structs; the kernel writes only the `revents` fields.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            // CAST-OK: `rc >= 0` just checked; a non-negative c_int always
            // fits usize.
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A cross-thread wake-up fd for the poll loop: `wake()` from any thread
/// makes the fd readable, `drain()` resets it. `eventfd(2)` on Linux, a
/// connected loopback UDP pair elsewhere.
pub(crate) struct WakeFd {
    #[cfg(target_os = "linux")]
    event: std::fs::File,
    #[cfg(not(target_os = "linux"))]
    rx: std::net::UdpSocket,
    #[cfg(not(target_os = "linux"))]
    tx: std::net::UdpSocket,
}

impl WakeFd {
    #[cfg(target_os = "linux")]
    pub fn new() -> std::io::Result<WakeFd> {
        const EFD_CLOEXEC: std::ffi::c_int = 0o2000000;
        const EFD_NONBLOCK: std::ffi::c_int = 0o4000;
        // SAFETY: eventfd takes two plain integers and returns an owned fd
        // (or -1); the fd is immediately wrapped in a File that closes it.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created eventfd we exclusively own.
        Ok(WakeFd { event: unsafe { std::os::unix::io::FromRawFd::from_raw_fd(fd) } })
    }

    #[cfg(not(target_os = "linux"))]
    pub fn new() -> std::io::Result<WakeFd> {
        let rx = std::net::UdpSocket::bind("127.0.0.1:0")?;
        let tx = std::net::UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(WakeFd { rx, tx })
    }

    /// Makes the fd readable. Never blocks; a saturated counter (`EAGAIN`)
    /// already means a wake-up is pending.
    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        {
            let _ = (&self.event).write(&1u64.to_ne_bytes());
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = self.tx.send(&[1u8]);
        }
    }

    /// Consumes pending wake-ups so the fd stops reporting readable.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        {
            let mut buf = [0u8; 8];
            let _ = (&self.event).read(&mut buf);
        }
        #[cfg(not(target_os = "linux"))]
        {
            let mut buf = [0u8; 16];
            while self.rx.recv(&mut buf).is_ok() {}
        }
    }

    pub fn raw_fd(&self) -> RawFd {
        #[cfg(target_os = "linux")]
        {
            self.event.as_raw_fd()
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.rx.as_raw_fd()
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor-level accounting
// ---------------------------------------------------------------------------

/// Shared atomic counters behind [`ReactorStats`].
#[derive(Debug, Default)]
pub(crate) struct ReactorCounters {
    registered_fds: AtomicUsize,
    peak_registered_fds: AtomicUsize,
    polls: AtomicU64,
    wakeups: AtomicU64,
    readiness_dispatches: AtomicU64,
    peak_outbox_bytes: AtomicUsize,
}

impl ReactorCounters {
    fn fd_registered(&self) {
        // RELAXED-OK: live gauge + high-watermark stat; order nothing.
        let now = self.registered_fds.fetch_add(1, Ordering::Relaxed) + 1;
        // RELAXED-OK: racy high-watermark stat; orders nothing.
        self.peak_registered_fds.fetch_max(now, Ordering::Relaxed);
    }

    fn fd_unregistered(&self) {
        // RELAXED-OK: live gauge; orders nothing.
        self.registered_fds.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ReactorStats {
        // RELAXED-OK (whole group): stat snapshot of independent event-loop
        // counters; each field is self-consistent and staleness is fine.
        ReactorStats {
            // RELAXED-OK: stat snapshot (see group note above).
            registered_fds: self.registered_fds.load(Ordering::Relaxed),
            // RELAXED-OK: stat snapshot (see group note above).
            peak_registered_fds: self.peak_registered_fds.load(Ordering::Relaxed),
            // RELAXED-OK: stat snapshot (see group note above).
            polls: self.polls.load(Ordering::Relaxed),
            // RELAXED-OK: stat snapshot (see group note above).
            wakeups: self.wakeups.load(Ordering::Relaxed),
            // RELAXED-OK: stat snapshot (see group note above).
            readiness_dispatches: self.readiness_dispatches.load(Ordering::Relaxed),
            // RELAXED-OK: stat snapshot (see group note above).
            peak_outbox_bytes: self.peak_outbox_bytes.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The per-connection outbox
// ---------------------------------------------------------------------------

/// The bounded per-connection egress buffer: the join executor appends
/// framed matches (through [`OutboxWriter`] → [`WireSink`]), the reactor
/// drains it to the socket on `POLLOUT`.
///
/// The byte cap is a *soft* cap enforced at fold granularity: the executor
/// checks it before every step, so the buffer can overshoot by one chunk's
/// worth of frames in steady state — and a stalled fold holds the session's
/// credits, which is the backpressure path. The one larger excursion is the
/// end-of-stream flush (matches buffered in unclosed predicate scopes are
/// emitted in a single `finalize`), whose size is bounded by the filter
/// bank's buffered matches — state the session already holds in *both*
/// serving modes, so the flush adds one bounded copy, not a new unbounded
/// class.
#[derive(Debug)]
pub(crate) struct OutboxShared {
    buf: Mutex<OutboxBuf>,
    cap: usize,
    counters: Arc<ReactorCounters>,
    telemetry: Arc<ServeTelemetry>,
}

/// One egress segment: either bytes the outbox owns (frame headers, JSON
/// fallback frames, handshake replies) or a payload *borrowed* from the
/// retention ring. Dropping a `Borrowed` segment is what releases the
/// window refcounts — which the drain loop does only once the socket has
/// accepted every byte of the segment.
#[derive(Debug)]
enum Seg {
    Owned(Vec<u8>),
    Borrowed(PayloadRef),
}

impl Seg {
    fn len(&self) -> usize {
        match self {
            Seg::Owned(bytes) => bytes.len(),
            Seg::Borrowed(payload) => payload.len(),
        }
    }
}

#[derive(Debug, Default)]
struct OutboxBuf {
    /// Pending segments in wire order. The front segment may be partially
    /// written ([`OutboxBuf::front_written`] bytes already on the socket).
    segs: VecDeque<Seg>,
    /// Bytes of the front segment already accepted by the socket
    /// (invariant: strictly less than the front segment's length —
    /// fully-drained segments are popped eagerly).
    front_written: usize,
    /// Total bytes queued and not yet written — owned *and* borrowed, so
    /// the cap check sees the retention bytes a slow client is pinning.
    queued: usize,
    /// Latched when the socket write side died: further frames are refused
    /// (the `WireSink` latches the error and the runtime counts drops).
    closed: bool,
    /// When the buffer went from empty to non-empty: the start of the
    /// residency interval recorded once the socket drains it empty again.
    oldest_pending: Option<Instant>,
}

impl OutboxBuf {
    /// Appends owned bytes, merging into a trailing `Owned` segment so
    /// back-to-back small writes don't fragment the iovec list.
    fn push_owned(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        match self.segs.back_mut() {
            Some(Seg::Owned(bytes)) => bytes.extend_from_slice(data),
            _ => self.segs.push_back(Seg::Owned(data.to_vec())),
        }
    }
}

impl OutboxShared {
    fn new(
        cap: usize,
        counters: Arc<ReactorCounters>,
        telemetry: Arc<ServeTelemetry>,
    ) -> Arc<OutboxShared> {
        Arc::new(OutboxShared { buf: Mutex::new(OutboxBuf::default()), cap, counters, telemetry })
    }

    /// Bytes queued and not yet written to the socket — borrowed payload
    /// bytes included, so `over_cap` (hence `max_outbox_bytes`) bounds the
    /// retention a stalled reader can pin, not just its header traffic.
    fn len(&self) -> usize {
        lock_recover(&self.buf).0.queued
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn over_cap(&self) -> bool {
        self.len() >= self.cap
    }

    /// Appends raw owned bytes (the handshake reply takes this path
    /// directly; frames go through [`OutboxWriter`]).
    fn push(&self, data: &[u8]) -> std::io::Result<()> {
        let mut b = lock_recover(&self.buf).0;
        if b.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client connection closed",
            ));
        }
        if b.queued == 0 {
            b.oldest_pending = Some(Instant::now());
        }
        b.push_owned(data);
        b.queued += data.len();
        let len = b.queued;
        drop(b);
        self.telemetry.bytes_copied.add(data.len() as u64);
        // RELAXED-OK: racy high-watermark stat; orders nothing.
        self.counters.peak_outbox_bytes.fetch_max(len, Ordering::Relaxed);
        Ok(())
    }

    /// Appends one frame: copied head, borrowed payload (refcount handoff —
    /// no byte copy), copied tail. The borrowed bytes count against the cap
    /// exactly like owned ones.
    fn push_frame(&self, frame: FrameRef<'_>) -> std::io::Result<()> {
        let total = frame.len();
        let mut copied = frame.head.len() + frame.tail.len();
        let mut b = lock_recover(&self.buf).0;
        if b.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client connection closed",
            ));
        }
        if b.queued == 0 && total > 0 {
            b.oldest_pending = Some(Instant::now());
        }
        b.push_owned(frame.head);
        match frame.payload {
            Some(payload) if !payload.is_empty() => b.segs.push_back(Seg::Borrowed(payload)),
            // An empty borrow carries no bytes; count it as (zero) copies.
            _ => copied = total,
        }
        b.push_owned(frame.tail);
        b.queued += total;
        let len = b.queued;
        drop(b);
        self.telemetry.bytes_copied.add(copied as u64);
        self.telemetry.bytes_borrowed.add((total - copied) as u64);
        // RELAXED-OK: racy high-watermark stat; orders nothing.
        self.counters.peak_outbox_bytes.fetch_max(len, Ordering::Relaxed);
        Ok(())
    }

    /// Writes as much buffered data as the socket accepts right now using
    /// vectored I/O — one `writev(2)` per batch of up to [`MAX_IOVEC`]
    /// segment slices, so a borrowed payload goes kernel-ward straight from
    /// the retention windows with no intermediate copy. Returns the bytes
    /// actually written. Callers treat `written > 0` as socket progress —
    /// comparing queue lengths before/after would miss progress whenever a
    /// concurrently running fold refills the outbox mid-drain.
    ///
    /// A short write may stop mid-iovec (even mid-slice); the cursor
    /// ([`OutboxBuf::front_written`]) records how far into the front segment
    /// the socket got, and the next gather skips exactly that many bytes.
    fn drain_to(&self, stream: &mut TcpStream) -> std::io::Result<usize> {
        let mut b = lock_recover(&self.buf).0;
        let mut written = 0usize;
        let fd = stream.as_raw_fd();
        loop {
            if b.queued == 0 {
                // Drained empty: drop any residual fully-written state and
                // close the residency interval opened when the buffer last
                // went non-empty.
                if let Some(since) = b.oldest_pending.take() {
                    self.telemetry.outbox_residency_nanos.record_duration(since.elapsed());
                }
                return Ok(written);
            }
            // Gather up to MAX_IOVEC slices, skipping the front-segment
            // bytes the socket already accepted.
            let mut iov = [IoVec { iov_base: std::ptr::null(), iov_len: 0 }; MAX_IOVEC];
            let mut count = 0usize;
            let mut skip = b.front_written;
            'gather: for seg in &b.segs {
                match seg {
                    Seg::Owned(bytes) => {
                        let slice = &bytes[skip.min(bytes.len())..];
                        skip = skip.saturating_sub(bytes.len());
                        if !slice.is_empty() {
                            if count == MAX_IOVEC {
                                break 'gather;
                            }
                            iov[count] =
                                IoVec { iov_base: slice.as_ptr().cast(), iov_len: slice.len() };
                            count += 1;
                        }
                    }
                    Seg::Borrowed(payload) => {
                        for slice in payload.slices() {
                            let take = &slice[skip.min(slice.len())..];
                            skip = skip.saturating_sub(slice.len());
                            if take.is_empty() {
                                continue;
                            }
                            if count == MAX_IOVEC {
                                break 'gather;
                            }
                            iov[count] =
                                IoVec { iov_base: take.as_ptr().cast(), iov_len: take.len() };
                            count += 1;
                        }
                    }
                }
            }
            if count == 0 {
                // queued > 0 but nothing to gather would spin the reactor
                // forever on POLLOUT: fail the connection loudly instead.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "outbox byte accounting desynced from segments",
                ));
            }
            // SAFETY: every iovec points into a slice owned by a segment of
            // `b.segs`; the mutex guard held across the call keeps those
            // segments alive and unmoved, and only the first `count <=
            // MAX_IOVEC` entries (all initialized above) are passed.
            // CAST-OK: `count <= MAX_IOVEC = 64` fits c_int.
            let rc = unsafe { writev(fd, iov.as_ptr(), count as std::ffi::c_int) };
            if rc < 0 {
                // FFI-OK: negative return checked here; errno mapped below.
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted
                {
                    return Ok(written);
                }
                return Err(e);
            }
            if rc == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ));
            }
            // CAST-OK: rc > 0 just checked; a positive isize fits usize.
            let mut n = rc as usize;
            written += n;
            // Advance the cursor, popping fully-drained segments — popping
            // a Borrowed segment drops its PayloadRef, which is the moment
            // the window refcounts are released.
            while n > 0 {
                let Some(front) = b.segs.front() else { break };
                let remaining = front.len() - b.front_written;
                if n >= remaining {
                    b.segs.pop_front();
                    b.front_written = 0;
                    b.queued -= remaining;
                    n -= remaining;
                } else {
                    b.front_written += n;
                    b.queued -= n;
                    n = 0;
                }
            }
        }
    }

    /// Latches the write failure: pending segments are discarded — dropping
    /// every borrowed payload, so a dead or poisoned connection releases its
    /// retention refcounts immediately — and further pushes are refused, so
    /// a dead client cannot accumulate frames.
    fn close_and_clear(&self) {
        let mut b = lock_recover(&self.buf).0;
        b.closed = true;
        b.segs = VecDeque::new();
        b.front_written = 0;
        b.queued = 0;
        b.oldest_pending = None;
    }

    /// Number of pending `Borrowed` segments (refcount-lifecycle tests).
    #[cfg(test)]
    fn borrowed_segments(&self) -> usize {
        lock_recover(&self.buf).0.segs.iter().filter(|s| matches!(s, Seg::Borrowed(_))).count()
    }
}

/// The adapter that lets a [`WireSink`] frame matches straight into a
/// connection's outbox: the [`Write`] impl carries the copying path (and the
/// `W: Write` struct bound), the [`FrameWrite`] impl carries the zero-copy
/// frame path ([`WireSink::new_vectored`] wires both to the same outbox).
#[derive(Debug)]
pub(crate) struct OutboxWriter {
    outbox: Arc<OutboxShared>,
}

impl Write for OutboxWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.outbox.push(data)?;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl FrameWrite for OutboxWriter {
    fn write_frame(&mut self, frame: FrameRef<'_>) -> std::io::Result<()> {
        self.outbox.push_frame(frame)
    }
}

// ---------------------------------------------------------------------------
// Shared-stream subscriber sinks
// ---------------------------------------------------------------------------

/// What a connection's accounting needs back from its boxed-away subscriber
/// sink once the stream ends (the reactor twin of the blocking mode's
/// `OwnerDone`).
#[derive(Default)]
struct SinkDone {
    frames: u64,
    bytes_out: u64,
    write_error: Option<std::io::Error>,
    report: Option<SubscriberReport>,
}

/// A subscriber whose frames go straight into a connection's outbox — used
/// for the stream owner (lossless: the join executor parks on the owner's
/// full outbox before folding, so nothing is ever shed) and for late
/// attachers (shedding: a subscriber whose client stops draining loses *its
/// own* matches, never stalls the shared pipeline).
///
/// Runs on the stream's join-executor thread, which may not be the
/// connection's ingest thread: every delivery wakes the connection's poll
/// loop so POLLOUT arms for the freshly queued frame.
struct OutboxSubscriber {
    sink: Option<WireSink<OutboxWriter>>,
    outbox: Arc<OutboxShared>,
    done: Arc<Mutex<SinkDone>>,
    signal: Arc<ConnSignal>,
    /// `true` for late attachers: a full outbox drops the match instead of
    /// letting the fold park on it.
    shed_when_full: bool,
}

impl SubscriberSink for OutboxSubscriber {
    fn deliver(&mut self, m: BorrowedMatch) -> SubscriberDelivery {
        let Some(sink) = self.sink.as_mut() else { return SubscriberDelivery::Dropped };
        if self.shed_when_full && self.outbox.over_cap() {
            return SubscriberDelivery::Dropped;
        }
        let accepted = sink.on_match_borrowed(m);
        self.signal.wake.wake();
        if accepted {
            SubscriberDelivery::Delivered
        } else if self.shed_when_full {
            // The outbox latched closed (dead socket): stop fanning out to
            // this subscriber entirely.
            SubscriberDelivery::Detach
        } else {
            // Owner semantics mirror the direct path: a dead client's
            // frames count as drops while its session runs to completion
            // unobserved.
            SubscriberDelivery::Dropped
        }
    }

    fn end(&mut self, report: SubscriberReport) {
        let (mut done, _) = lock_recover(&self.done);
        if let Some(sink) = self.sink.take() {
            done.frames = sink.frames;
            done.bytes_out = sink.bytes_out;
            let (_writer, err) = sink.into_parts();
            done.write_error = err;
        }
        done.report = Some(report);
        drop(done);
        self.signal.done.store(true, Ordering::Release);
        self.signal.wake.wake();
    }
}

/// A connection attached to another connection's shared stream: no feeder,
/// no join task — just a subscriber registration whose frames land in this
/// connection's outbox.
struct SubscriberConn {
    control: Arc<StreamControl>,
    id: SubscriberId,
    done: Arc<Mutex<SinkDone>>,
}

// ---------------------------------------------------------------------------
// The join executor
// ---------------------------------------------------------------------------

/// One session's joiner, packaged for the shared executor.
pub(crate) struct JoinTask {
    core: Arc<SessionCore>,
    inner: Mutex<JoinTaskInner>,
    /// Deduplicates run-queue entries: set on enqueue, cleared on pop.
    queued: AtomicBool,
    /// Set when the executor parked this session on a full outbox; the
    /// reactor clears it and re-enqueues after draining the socket.
    stalled_on_outbox: AtomicBool,
    outbox: Arc<OutboxShared>,
    signal: Arc<ConnSignal>,
    join: Arc<JoinShared>,
}

struct JoinTaskInner {
    /// `None` once finalized.
    state: Option<JoinerState>,
    /// Every reactor stream is a shared stream (exactly as in the blocking
    /// mode): the joiner fans matches out through the subscription layer,
    /// and the owner connection is subscriber 0 with a lossless
    /// outbox-writing sink.
    sink: Materializer<FanoutSink>,
    /// The stream's control half — finalizing must flush every subscriber's
    /// report through [`StreamControl::finish_stream`].
    control: Arc<StreamControl>,
    report: Option<SessionReport>,
}

/// What the reactor needs to know about a connection from other threads.
pub(crate) struct ConnSignal {
    /// A credit came back (or the session died): pump the feeder.
    feed_ready: AtomicBool,
    /// The joiner finalized: the session report is available.
    done: AtomicBool,
    /// The owning ingest thread's wake-up fd.
    wake: Arc<WakeFd>,
}

/// The progress hooks registered on the session's [`SessionCore`]: workers
/// and the join executor poke the reactor through these instead of condvars.
/// Holds the task weakly — the connection owns the strong reference, so a
/// closed connection's task is freed even while stray jobs still hold the
/// core.
struct ConnEvents {
    task: Weak<JoinTask>,
    signal: Arc<ConnSignal>,
}

impl SessionEvents for ConnEvents {
    fn on_deliverable(&self) {
        if let Some(task) = self.task.upgrade() {
            enqueue_task(&task);
        }
    }

    fn on_credit(&self) {
        self.signal.feed_ready.store(true, Ordering::Release);
        self.signal.wake.wake();
    }
}

struct JoinShared {
    queue: Mutex<VecDeque<Arc<JoinTask>>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// Schedules a task exactly once until it next runs.
fn enqueue_task(task: &Arc<JoinTask>) {
    if task.queued.swap(true, Ordering::AcqRel) {
        return;
    }
    let mut queue = lock_recover(&task.join.queue).0;
    queue.push_back(Arc::clone(task));
    drop(queue);
    task.join.ready.notify_one();
}

/// The fixed pool of join-executor threads shared by every reactor session.
pub(crate) struct JoinPool {
    shared: Arc<JoinShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl JoinPool {
    fn new(threads: usize) -> JoinPool {
        let shared = Arc::new(JoinShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppt-join-{i}"))
                    .spawn(move || join_executor_loop(&shared))
                    // UNWRAP-OK: thread-spawn failure is process-level
                    // resource exhaustion; no pool-scoped recovery exists.
                    .expect("failed to spawn join executor")
            })
            .collect();
        JoinPool { shared, threads }
    }
}

impl Drop for JoinPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn join_executor_loop(shared: &JoinShared) {
    loop {
        let task = {
            let mut queue = lock_recover(&shared.queue).0;
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = crate::pool::wait_recover(&shared.ready, queue).0;
            }
        };
        // Clear the dedupe flag *before* running: progress made while the
        // task runs re-enqueues it, so no wake-up can be lost.
        task.queued.store(false, Ordering::Release);
        run_join_task(&task);
    }
}

/// Runs fold steps for one session until its mailbox runs dry, its outbox
/// fills, or the stream ends. Panics anywhere in the fold (a sink, a filter)
/// poison the session — same guard discipline as `joiner_guarded`.
fn run_join_task(task: &Arc<JoinTask>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| join_steps(task)));
    if let Err(panic) = result {
        let core = &task.core;
        // AcqRel: the swap decides which thread accounts the in-flight
        // delivery as dropped (same protocol as `joiner_guarded`); the
        // winner must also observe the state written before the flag.
        if core.counters.delivering.swap(false, Ordering::AcqRel) {
            // RELAXED-OK: stat counter; the swap above already arbitrates.
            core.counters.dropped_matches.fetch_add(1, Ordering::Relaxed);
        }
        core.poison(format!("joiner stage panicked: {}", panic_message(&*panic)));
        // Finalize defensively so the connection can wind down: the state
        // may be inconsistent, so only the report shell is produced.
        let mut inner = lock_recover(&task.inner).0;
        if inner.report.is_none() {
            let report = SessionReport {
                stats: core.counters.snapshot(),
                match_counts: Vec::new(),
                submatch_counts: Vec::new(),
                error: core.poison_message(),
            };
            // Subscribers (the owner included) still get their final
            // accounting, carrying the stream's poison message. Idempotent:
            // a panic *inside* a subscriber's `end` re-enters here with the
            // stream already ended and no subscribers left to flush.
            inner.control.finish_stream(&report);
            inner.report = Some(report);
        }
        inner.state = None;
        drop(inner);
        task.signal.done.store(true, Ordering::Release);
        task.signal.wake.wake();
    }
}

fn join_steps(task: &Arc<JoinTask>) {
    let mut inner = lock_recover(&task.inner).0;
    let inner = &mut *inner;
    let Some(state) = inner.state.as_mut() else { return };
    loop {
        if task.outbox.over_cap() {
            // Park on the full outbox. Order matters: set the flag first,
            // then re-check, so a drain racing this park re-enqueues us.
            task.stalled_on_outbox.store(true, Ordering::SeqCst);
            if task.outbox.over_cap() {
                return;
            }
            task.stalled_on_outbox.store(false, Ordering::SeqCst);
        }
        match task.core.try_take(state.next_seq()) {
            TryTake::Ready(out) => state.fold_one(&task.core, &mut inner.sink, out),
            TryTake::Pending => return,
            TryTake::Ended => {
                let report = state.finalize(&task.core, &mut inner.sink);
                // Flush every subscriber's report through its sink (the
                // owner's harvests its frame accounting) before the done
                // signal can close the connection — `close_conn` serializes
                // on this task's lock, so the report is always complete by
                // the time it is read.
                inner.control.finish_stream(&report);
                inner.report = Some(report);
                inner.state = None;
                task.signal.done.store(true, Ordering::Release);
                task.signal.wake.wake();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The connection state machine
// ---------------------------------------------------------------------------

/// Read buffer for streaming connections (per reactor thread, reused).
const READ_BUF: usize = 32 << 10;

enum Phase {
    /// Collecting handshake lines through the incremental decoder.
    Handshaking { decoder: HandshakeDecoder, deadline: Option<Instant> },
    /// Session live: readable bytes feed the splitter, the outbox drains
    /// frames.
    Streaming,
    /// Read side finished (EOF, read error, or dead session): flush the
    /// outbox, wait for the joiner, then close.
    Draining,
    /// A structured `ERR` reply is queued: flush it, then close.
    Rejecting,
}

struct ConnSession {
    feeder: Feeder,
    task: Arc<JoinTask>,
    /// The worker pool of the shard this stream was placed on: chunk jobs
    /// go here, not to a global pool.
    pool: Arc<WorkerPool>,
    /// The stream's subscription-layer control: engine swaps scheduled by
    /// mid-stream attaches land at the feeder's next chunk boundary.
    control: Arc<StreamControl>,
    /// The owner's frame accounting, harvested by its subscriber sink's
    /// `end` when the stream finishes.
    done: Arc<Mutex<SinkDone>>,
}

struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    phase: Phase,
    outbox: Arc<OutboxShared>,
    signal: Arc<ConnSignal>,
    session: Option<ConnSession>,
    /// Set instead of `session` when this connection attached to another
    /// connection's live shared stream.
    subscription: Option<SubscriberConn>,
    /// The control this owner connection published in the server's hub for
    /// late attaches; taken back (and the hub entry removed) the moment the
    /// stream stops accepting bytes.
    hub_published: Option<Arc<StreamControl>>,
    meta: Option<ConnMeta>,
    read_error: Option<String>,
    write_error: Option<String>,
    /// Last instant the *socket* made progress (bytes read from the client,
    /// or bytes accepted by its send buffer) — the clock the optional
    /// idle-timeout liveness check reads.
    last_progress: Instant,
    /// When the connection was registered — the handshake-duration
    /// histogram's start mark.
    accepted_at: Instant,
}

struct ConnMeta {
    stream_id: u64,
    shard: usize,
    queries: Vec<String>,
    format: WireFormat,
}

impl Conn {
    /// Whether the idle-timeout clock applies right now: always while
    /// streaming (a dead client neither sends bytes nor drains frames), and
    /// while draining/rejecting only when queued bytes wait on the client to
    /// read them. Handshaking has its own deadline; a drained outbox waiting
    /// on the *pipeline* (not the client) must never be timed out.
    fn idle_eligible(&self) -> bool {
        match self.phase {
            Phase::Handshaking { .. } => false,
            // A subscriber is passive — it sends nothing, and a quiet stream
            // proves nothing about its liveness. Its clock runs only while
            // queued frames wait on it to read (the same rule as Draining).
            Phase::Streaming => self.subscription.is_none() || !self.outbox.is_empty(),
            Phase::Draining | Phase::Rejecting => !self.outbox.is_empty(),
        }
    }

    /// The poll events this connection currently cares about; `0` means the
    /// fd is left out of the poll set entirely (progress will come from a
    /// wake-up, not the socket).
    fn interest(&self) -> i16 {
        let writable = !self.outbox.is_empty();
        match &self.phase {
            Phase::Handshaking { .. } => POLLIN,
            Phase::Streaming => {
                let mut events = 0;
                let blocked = self.session.as_ref().is_some_and(|s| s.feeder.is_blocked());
                // A subscriber never reads: bytes an attacher sends after GO
                // are ignored (per the wire contract), so POLLIN stays off —
                // its socket matters only as a frame drain.
                if !blocked && self.subscription.is_none() {
                    events |= POLLIN;
                }
                if writable {
                    events |= POLLOUT;
                }
                events
            }
            Phase::Draining | Phase::Rejecting => {
                if writable {
                    POLLOUT
                } else {
                    0
                }
            }
        }
    }
}

/// Removes an owner connection's hub entry the moment its stream stops
/// accepting bytes, so a late attach cannot land on a stream that is already
/// finishing (it opens a fresh one instead). Removes only this connection's
/// own registration — a raced owner's entry is not ours to drop.
fn unpublish_stream(shared: &Shared, conn: &mut Conn) {
    let Some(control) = conn.hub_published.take() else { return };
    let (mut hub, _) = lock_recover(&shared.hub);
    if hub.get(&control.stream_id()).is_some_and(|c| Arc::ptr_eq(c, &control)) {
        hub.remove(&control.stream_id());
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

/// State shared by every ingest thread of one server.
pub(crate) struct ReactorShared {
    wakes: Vec<Arc<WakeFd>>,
    /// Connections handed off by the accepting thread (index 0) to their
    /// owning ingest thread.
    inboxes: Vec<Mutex<Vec<(TcpStream, SocketAddr)>>>,
    /// One join-executor queue per shard: a connection's fold runs on the
    /// pool of the shard its stream id was placed on.
    joins: Vec<Arc<JoinShared>>,
    pub counters: Arc<ReactorCounters>,
    round_robin: AtomicUsize,
    /// Set by the accepting thread once the listener is dropped — after
    /// this, no hand-off can ever be pushed again. Peer threads must not
    /// exit before observing it, or a hand-off racing the shutdown flag
    /// would strand an accepted connection (and its gate slot) in the inbox
    /// of a thread that is already gone.
    accept_closed: AtomicBool,
}

/// The running ingest layer: thread handles plus the shared state the
/// server needs for stats and shutdown.
pub(crate) struct ReactorHandles {
    threads: Vec<std::thread::JoinHandle<()>>,
    pub shared: Arc<ReactorShared>,
    /// Dropped (and their threads joined) after the ingest threads exit —
    /// one pool per shard.
    join_pools: Option<Vec<JoinPool>>,
}

impl ReactorHandles {
    /// Wakes every ingest thread so the loop observes the server's
    /// `shutting_down` flag.
    pub fn wake_all(&self) {
        for wake in &self.shared.wakes {
            wake.wake();
        }
    }

    /// Blocks until every ingest thread drained its connections and exited,
    /// then winds the join pool down.
    pub fn shutdown_join(&mut self) {
        self.wake_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.join_pools.take(); // Drop joins the executor threads.
    }
}

/// Spawns the ingest threads. Thread 0 owns the listener; accepted
/// connections are spread round-robin across all ingest threads.
pub(crate) fn spawn(shared: Arc<Shared>, listener: TcpListener) -> std::io::Result<ReactorHandles> {
    listener.set_nonblocking(true)?;
    let ingest = shared.config.ingest_threads.max(1);
    let counters = Arc::new(ReactorCounters::default());
    // Every scrape surface reads the event-loop counters through `Shared` —
    // one source of truth with `TcpServer::stats`.
    shared.set_reactor_counters(Arc::clone(&counters));
    // One join pool per shard: a slow fold on one shard never steals the
    // executor threads of another.
    let join_pools: Vec<JoinPool> = (0..shared.router.shard_count())
        .map(|_| JoinPool::new(shared.config.join_threads))
        .collect();
    let wakes = (0..ingest).map(|_| WakeFd::new().map(Arc::new)).collect::<Result<Vec<_>, _>>()?;
    let rshared = Arc::new(ReactorShared {
        wakes,
        inboxes: (0..ingest).map(|_| Mutex::new(Vec::new())).collect(),
        joins: join_pools.iter().map(|p| Arc::clone(&p.shared)).collect(),
        counters,
        round_robin: AtomicUsize::new(0),
        accept_closed: AtomicBool::new(false),
    });
    // The listener and every wake fd sit in a poll set for the server's
    // whole life.
    for _ in 0..=ingest {
        rshared.counters.fd_registered();
    }
    let mut threads = Vec::new();
    for idx in 0..ingest {
        let reactor = Reactor {
            shared: Arc::clone(&shared),
            r: Arc::clone(&rshared),
            idx,
            listener: (idx == 0).then(|| listener.try_clone()).transpose()?,
            conns: Vec::new(),
            free: Vec::new(),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("ppt-ingest-{idx}"))
                .spawn(move || reactor.run())
                .map_err(|e| std::io::Error::other(format!("failed to spawn ingest: {e}")))?,
        );
    }
    drop(listener);
    Ok(ReactorHandles { threads, shared: rshared, join_pools: Some(join_pools) })
}

/// What a pollfd slot refers to.
#[derive(Clone, Copy)]
enum Token {
    Wake,
    Listener,
    Conn(usize),
}

struct Reactor {
    shared: Arc<Shared>,
    r: Arc<ReactorShared>,
    idx: usize,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Reactor {
    fn wake(&self) -> &Arc<WakeFd> {
        &self.r.wakes[self.idx]
    }

    fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn run(mut self) {
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        let mut read_buf = vec![0u8; READ_BUF];
        loop {
            let shutting_down = self.shared.shutting_down.load(Ordering::SeqCst);
            if shutting_down {
                // Stop accepting the moment shutdown is requested; pending
                // backlog clients are refused when the listener drops. The
                // `accept_closed` store is the point after which no hand-off
                // can ever be pushed again — peers must not exit before
                // observing it, so a connection accepted just before the
                // shutdown flag cannot be stranded in an exited thread's
                // inbox. Waking the peers here re-runs their exit checks.
                if self.listener.take().is_some() {
                    self.r.counters.fd_unregistered();
                    self.r.accept_closed.store(true, Ordering::SeqCst);
                    for wake in &self.r.wakes {
                        wake.wake();
                    }
                }
                let drained = self.adopt_handed_off() == 0 && self.live_conns() == 0;
                if drained && self.r.accept_closed.load(Ordering::SeqCst) {
                    self.r.counters.fd_unregistered(); // this thread's wake fd
                    return;
                }
            } else {
                self.adopt_handed_off();
            }

            pollfds.clear();
            tokens.clear();
            pollfds.push(PollFd { fd: self.wake().raw_fd(), events: POLLIN, revents: 0 });
            tokens.push(Token::Wake);
            if let Some(listener) = &self.listener {
                // Admission gate before accept, as in the blocking mode:
                // with no free slot the listener leaves the poll set and
                // pending clients queue in the kernel backlog.
                if self.shared.gate.available() > 0 {
                    pollfds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
                    tokens.push(Token::Listener);
                }
            }
            let mut timeout_ms: i32 = -1;
            let now = Instant::now();
            let idle_timeout = self.shared.config.idle_timeout;
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                // The poll must wake in time for whichever deadline governs
                // this connection: the handshake deadline, or — once
                // streaming — the optional idle-timeout liveness deadline.
                let deadline = match &conn.phase {
                    Phase::Handshaking { deadline, .. } => *deadline,
                    _ if conn.idle_eligible() => idle_timeout.map(|t| conn.last_progress + t),
                    _ => None,
                };
                if let Some(deadline) = deadline {
                    // Clamp before narrowing: a days-long deadline must wake
                    // the loop early and re-arm, not wrap `as_millis()` into
                    // a negative (= infinite) poll timeout.
                    let millis = deadline.saturating_duration_since(now).as_millis();
                    // CAST-OK: clamped to 60_000 on the line above.
                    let remaining = millis.min(60_000) as i32 + 1; // round up
                    timeout_ms = if timeout_ms < 0 { remaining } else { timeout_ms.min(remaining) };
                }
                let events = conn.interest();
                if events != 0 {
                    pollfds.push(PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                    tokens.push(Token::Conn(slot));
                }
            }

            // RELAXED-OK: monotonic stat counter; orders nothing.
            self.r.counters.polls.fetch_add(1, Ordering::Relaxed);
            if poll_fds(&mut pollfds, timeout_ms).is_err() {
                // EINVAL and friends are programming errors; yield so a
                // persistent failure cannot hard-spin a core, then retry.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }

            // Wakeup→dispatch latency: poll has returned; time how long this
            // round takes to hand every ready fd to its state machine.
            let dispatch_started = Instant::now();
            let mut dispatched = false;
            for i in 0..pollfds.len() {
                let revents = pollfds[i].revents;
                if revents == 0 {
                    continue;
                }
                dispatched = true;
                match tokens[i] {
                    Token::Wake => {
                        self.wake().drain();
                        // RELAXED-OK: monotonic stat counter; orders nothing.
                        self.r.counters.wakeups.fetch_add(1, Ordering::Relaxed);
                    }
                    Token::Listener => self.accept_ready(),
                    Token::Conn(slot) => {
                        // RELAXED-OK: monotonic stat counter; orders nothing.
                        self.r.counters.readiness_dispatches.fetch_add(1, Ordering::Relaxed);
                        if revents & (POLLOUT | POLLERR | POLLHUP) != 0 {
                            self.handle_writable(slot);
                        }
                        if revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                            self.handle_readable(slot, &mut read_buf);
                        }
                        if revents & POLLNVAL != 0 {
                            // The fd is not open — unrecoverable bookkeeping
                            // failure for this connection only.
                            self.abort_conn(slot, "polled an invalid fd");
                        }
                    }
                }
            }
            if dispatched {
                self.shared.telemetry.dispatch_nanos.record_duration(dispatch_started.elapsed());
            }

            self.expire_handshakes();
            self.expire_idle();
            self.sweep();
        }
    }

    /// Takes connections handed off by the accepting thread. Returns how
    /// many arrived (the shutdown exit check uses this so a racing hand-off
    /// is not stranded).
    fn adopt_handed_off(&mut self) -> usize {
        let pending: Vec<_> = {
            let mut inbox = lock_recover(&self.r.inboxes[self.idx]).0;
            inbox.drain(..).collect()
        };
        let n = pending.len();
        for (stream, peer) in pending {
            self.register(stream, peer);
        }
        n
    }

    fn accept_ready(&mut self) {
        loop {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            if !self.shared.gate.try_acquire() {
                return; // at capacity: the listener leaves the poll set
            }
            let Some(listener) = &self.listener else {
                self.shared.gate.release();
                return;
            };
            match listener.accept() {
                Ok((stream, peer)) => {
                    // RELAXED-OK: monotonic stat counter; orders nothing.
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    // RELAXED-OK: live gauge; readers tolerate skew.
                    self.shared.active.fetch_add(1, Ordering::Relaxed);
                    let ingest = self.r.inboxes.len();
                    let target = if ingest == 1 {
                        0
                    } else {
                        // RELAXED-OK: load-spreading tick; any distribution
                        // is correct, orders nothing.
                        self.r.round_robin.fetch_add(1, Ordering::Relaxed) % ingest
                    };
                    if target == self.idx {
                        self.register(stream, peer);
                    } else {
                        lock_recover(&self.r.inboxes[target]).0.push((stream, peer));
                        self.r.wakes[target].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shared.gate.release();
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.shared.gate.release();
                }
                Err(_) => {
                    // ECONNABORTED / EMFILE: give the credit back and let
                    // the next poll round retry instead of spinning here.
                    self.shared.gate.release();
                    return;
                }
            }
        }
    }

    /// Registers a freshly accepted connection in the handshake phase.
    fn register(&mut self, stream: TcpStream, peer: SocketAddr) {
        if stream.set_nonblocking(true).is_err() {
            // Cannot serve a socket we cannot make nonblocking.
            // RELAXED-OK: monotonic stat counter; orders nothing.
            self.shared.handshake_rejects.fetch_add(1, Ordering::Relaxed);
            // RELAXED-OK: live gauge; readers tolerate skew.
            self.shared.active.fetch_sub(1, Ordering::Relaxed);
            self.shared.gate.release();
            return;
        }
        let _ = stream.set_nodelay(true);
        let cfg = &self.shared.config;
        let conn = Conn {
            stream,
            peer,
            phase: Phase::Handshaking {
                decoder: HandshakeDecoder::with_limits(cfg.max_handshake_line, cfg.max_queries),
                deadline: cfg.handshake_timeout.map(|t| Instant::now() + t),
            },
            outbox: OutboxShared::new(
                cfg.max_outbox_bytes,
                Arc::clone(&self.r.counters),
                Arc::clone(&self.shared.telemetry),
            ),
            signal: Arc::new(ConnSignal {
                feed_ready: AtomicBool::new(false),
                done: AtomicBool::new(false),
                wake: Arc::clone(self.wake()),
            }),
            session: None,
            subscription: None,
            hub_published: None,
            meta: None,
            read_error: None,
            write_error: None,
            last_progress: Instant::now(),
            accepted_at: Instant::now(),
        };
        self.r.counters.fd_registered();
        match self.free.pop() {
            Some(slot) => self.conns[slot] = Some(conn),
            None => self.conns.push(Some(conn)),
        }
    }

    fn handle_readable(&mut self, slot: usize, buf: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        match &mut conn.phase {
            Phase::Handshaking { .. } => self.handshake_readable(slot, buf),
            Phase::Streaming => self.stream_readable(slot, buf),
            // Read side already finished; nothing to consume.
            Phase::Draining | Phase::Rejecting => {}
        }
    }

    fn handshake_readable(&mut self, slot: usize, buf: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        let n = match conn.stream.read(&mut buf[..4096]) {
            Ok(0) => {
                // Hung up mid-handshake: nothing to answer.
                // RELAXED-OK: monotonic stat counter; orders nothing.
                self.shared.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                self.close_conn(slot, false);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                return;
            }
            Err(_) => {
                // RELAXED-OK: monotonic stat counter; orders nothing.
                self.shared.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                self.close_conn(slot, false);
                return;
            }
        };
        conn.last_progress = Instant::now();
        let Phase::Handshaking { decoder, .. } = &mut conn.phase else { return };
        match decoder.push(&buf[..n]) {
            Ok(Some(request)) => self.complete_handshake(slot, request),
            Ok(None) => {}
            Err(e) => self.reject(slot, &e.to_string()),
        }
    }

    /// The handshake parsed: resolve the stream id, place the stream on its
    /// shard, build the engine, reply, and bring the session up on the
    /// shard's pools — or send a structured rejection.
    fn complete_handshake(&mut self, slot: usize, request: crate::wire::HandshakeRequest) {
        if request.stats {
            // An in-band scrape: queue the snapshot page and flush-close via
            // the `Rejecting` phase machinery. Not a session (nothing is
            // placed, no report recorded) and not a protocol rejection —
            // `handshake_rejects` stays untouched, `ppt_scrapes_total` is
            // its accounting.
            let telemetry = Arc::clone(&self.shared.telemetry);
            telemetry.scrapes.inc();
            let page = self.shared.render_metrics();
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
            telemetry.handshake_nanos.record_duration(conn.accepted_at.elapsed());
            let mut reply = format!("OK STATS {}\n", page.len()).into_bytes();
            reply.extend_from_slice(page.as_bytes());
            let _ = conn.outbox.push(&reply);
            conn.phase = Phase::Rejecting;
            return;
        }
        // The stream id is the partition key: the client's requested one, or
        // a process-unique assignment (a default of 0 for everyone would put
        // every default stream on one shard and make their frames
        // indistinguishable to an aggregating consumer).
        let stream_id = request.stream_id.unwrap_or_else(crate::serve::assign_stream_id);

        // --- Attach: a handshake naming a live shared stream joins it ------
        // Only explicitly named ids can match (assignments are
        // process-unique), and the race where the stream ends between lookup
        // and attach falls through to serving this connection as a fresh
        // stream owner.
        if request.stream_id.is_some() {
            let target = lock_recover(&self.shared.hub).0.get(&stream_id).cloned();
            if let Some(control) = target {
                if self.attach_subscriber(slot, &request, stream_id, &control) {
                    return;
                }
            }
        }

        // --- Owner path: open a shared stream this connection feeds --------
        let shard = self.shared.place_stream(stream_id);
        let runtime = Arc::clone(self.shared.router.shard(shard));
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        // Meta (and with it the shard placement) is set before anything can
        // fail, so every exit path below releases the shard accounting
        // through `close_conn`.
        conn.meta = Some(ConnMeta {
            stream_id,
            shard,
            queries: request.queries.clone(),
            format: request.format,
        });
        self.shared.telemetry.handshake_nanos.record_duration(conn.accepted_at.elapsed());
        // The owner is subscriber 0 of its own stream: its frames are framed
        // straight into its outbox from the stream's joiner (lossless — the
        // fold parks on the owner's full outbox, exactly the pre-subscription
        // backpressure); only *co*-subscribers shed.
        let done: Arc<Mutex<SinkDone>> = Arc::default();
        let owner = OutboxSubscriber {
            sink: Some(WireSink::new_vectored(
                OutboxWriter { outbox: Arc::clone(&conn.outbox) },
                request.format,
                Box::new(OutboxWriter { outbox: Arc::clone(&conn.outbox) }),
            )),
            outbox: Arc::clone(&conn.outbox),
            done: Arc::clone(&done),
            signal: Arc::clone(&conn.signal),
            shed_when_full: false,
        };
        let (engine, control) = match shared_stream_parts(
            stream_id,
            crate::serve::engine_config(&self.shared.config),
            self.shared.config.max_automaton_states,
            runtime.telemetry(),
            &request.queries,
            Box::new(owner),
        ) {
            Ok(parts) => parts,
            Err(e) => {
                self.reject(slot, &crate::serve::attach_reject_message(&e));
                return;
            }
        };
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        // CAST-OK: query count is admission-capped (max_queries) far below
        // 2^32 by the handshake decoder.
        let ids: Vec<u32> = (0..request.queries.len() as u32).collect();
        let reply = HandshakeReply::Accepted { stream: stream_id, queries: ids };
        if conn.outbox.push(reply.encode().as_bytes()).is_err() {
            self.abort_conn(slot, "handshake reply failed: outbox closed");
            return;
        }
        // Publish for late attaches — before this thread returns to its poll
        // loop, so the reply cannot reach the wire first. A racing owner
        // with the same explicit id may have registered already; this stream
        // then simply serves unshared — first registration wins the id.
        {
            let (mut hub, _) = lock_recover(&self.shared.hub);
            let entry = hub.entry(stream_id).or_insert_with(|| Arc::clone(&control));
            if Arc::ptr_eq(entry, &control) {
                conn.hub_published = Some(Arc::clone(&control));
            }
        }
        // `track_open_path` lets mid-stream engine swaps (scheduled by
        // attaches with novel queries) replay the open-tag path on resume.
        let opts = crate::serve::session_options(&self.shared.config, &request, stream_id)
            .track_open_path(true);
        let core = runtime.new_session_core(Arc::clone(&engine), &opts);
        let sink =
            Materializer { core: Arc::clone(&core), inner: FanoutSink::new(Arc::clone(&control)) };
        let task = Arc::new(JoinTask {
            core: Arc::clone(&core),
            inner: Mutex::new(JoinTaskInner {
                state: Some(JoinerState::new(&core)),
                sink,
                control: Arc::clone(&control),
                report: None,
            }),
            queued: AtomicBool::new(false),
            stalled_on_outbox: AtomicBool::new(false),
            outbox: Arc::clone(&conn.outbox),
            signal: Arc::clone(&conn.signal),
            join: Arc::clone(&self.r.joins[shard]),
        });
        core.set_events(Arc::new(ConnEvents {
            task: Arc::downgrade(&task),
            signal: Arc::clone(&conn.signal),
        }));
        let mut feeder = Feeder::new(core);
        let pool = Arc::clone(runtime.worker_pool());
        // Bytes that arrived in the same reads as the handshake are the head
        // of the stream.
        let old = std::mem::replace(&mut conn.phase, Phase::Streaming);
        let Phase::Handshaking { decoder, .. } = old else { unreachable!("checked by caller") };
        let remainder = decoder.take_remainder();
        if !remainder.is_empty() {
            feeder.feed_nonblocking(&pool, &remainder);
        }
        conn.session = Some(ConnSession { feeder, task, pool, control, done });
    }

    /// Attaches a connection to a live shared stream: registers its queries
    /// (merging them into the stream's automaton) with an outbox-writing
    /// subscriber sink, and queues the `OK ATTACH` reply *under the stream's
    /// state lock* so no frame can precede it. Returns `false` when the
    /// stream ended before the attach landed — the caller then serves the
    /// connection as a fresh owner.
    fn attach_subscriber(
        &mut self,
        slot: usize,
        request: &crate::wire::HandshakeRequest,
        stream_id: u64,
        control: &Arc<StreamControl>,
    ) -> bool {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return true };
        let outbox = Arc::clone(&conn.outbox);
        let signal = Arc::clone(&conn.signal);
        let done: Arc<Mutex<SinkDone>> = Arc::default();
        let sub = OutboxSubscriber {
            sink: Some(WireSink::new_vectored(
                OutboxWriter { outbox: Arc::clone(&outbox) },
                request.format,
                Box::new(OutboxWriter { outbox: Arc::clone(&outbox) }),
            )),
            outbox: Arc::clone(&outbox),
            done: Arc::clone(&done),
            signal,
            shed_when_full: true,
        };
        // CAST-OK: query count is admission-capped (max_queries) far below
        // 2^32 by the handshake decoder.
        let ids: Vec<u32> = (0..request.queries.len() as u32).collect();
        let reply = HandshakeReply::Attached { stream: stream_id, queries: ids }.encode();
        let mut reply_failed = false;
        let id = match control.attach_with(&request.queries, Box::new(sub), |_| {
            reply_failed = outbox.push(reply.as_bytes()).is_err();
        }) {
            Ok(id) => id,
            Err(AttachError::Ended) => return false,
            Err(e) => {
                self.reject(slot, &crate::serve::attach_reject_message(&e));
                return true;
            }
        };
        if reply_failed {
            let _ = control.detach(id);
            self.abort_conn(slot, "handshake reply failed: outbox closed");
            return true;
        }
        // Subscribers account on the stream's shard — same placement as the
        // owner (the ring is deterministic in the id), so co-subscribers of
        // one stream never scatter across shards.
        let shard = self.shared.place_stream(stream_id);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            let _ = control.detach(id);
            self.shared.shard_closed(shard);
            return true;
        };
        conn.meta = Some(ConnMeta {
            stream_id,
            shard,
            queries: request.queries.clone(),
            format: request.format,
        });
        self.shared.telemetry.handshake_nanos.record_duration(conn.accepted_at.elapsed());
        // Bytes an attacher sends after GO are ignored: the handshake
        // decoder's remainder is discarded with it, and `interest` keeps
        // POLLIN off for the connection's whole life.
        conn.phase = Phase::Streaming;
        conn.subscription = Some(SubscriberConn { control: Arc::clone(control), id, done });
        true
    }

    fn stream_readable(&mut self, slot: usize, buf: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        let Some(session) = conn.session.as_mut() else { return };
        if session.feeder.is_blocked() {
            return; // backpressured: leave the bytes in the kernel buffer
        }
        // A concurrent attach with novel queries scheduled a merged engine:
        // land the swap before the next bytes (or the finish) so it takes
        // effect at the attacher's chunk boundary.
        if let Some(engine) = session.control.take_pending_engine() {
            session.feeder.swap_engine(engine);
        }
        let pool = Arc::clone(&session.pool);
        match conn.stream.read(buf) {
            Ok(0) => {
                // Clean end of stream: flush the splitter tail; the chunk
                // total is announced once the pending queue drains.
                conn.last_progress = Instant::now();
                session.feeder.request_finish();
                session.feeder.pump_nonblocking(&pool);
                conn.phase = Phase::Draining;
                unpublish_stream(&self.shared, conn);
            }
            Ok(n) => {
                conn.last_progress = Instant::now();
                session.feeder.feed_nonblocking(&pool, &buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                // The client's stream died. Drain what was ingested — the
                // matches already in flight still go out — and record the
                // failure, same contract as the blocking mode.
                conn.read_error = Some(e.to_string());
                session.feeder.request_finish();
                session.feeder.pump_nonblocking(&pool);
                conn.phase = Phase::Draining;
                unpublish_stream(&self.shared, conn);
            }
        }
    }

    fn handle_writable(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        match conn.outbox.drain_to(&mut conn.stream) {
            Ok(written) => {
                if written > 0 {
                    conn.last_progress = Instant::now();
                }
                if !conn.outbox.over_cap() {
                    if let Some(session) = &conn.session {
                        if session.task.stalled_on_outbox.swap(false, Ordering::SeqCst) {
                            enqueue_task(&session.task);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                // The client stopped reading for good: latch the error,
                // refuse further frames (they count as drops), and let the
                // session run to completion unobserved.
                if conn.write_error.is_none() {
                    conn.write_error = Some(e.to_string());
                }
                conn.outbox.close_and_clear();
                if let Some(session) = &conn.session {
                    if session.task.stalled_on_outbox.swap(false, Ordering::SeqCst) {
                        enqueue_task(&session.task);
                    }
                }
                // A dead subscriber stops receiving its share of the fan-out
                // right away; `end` (from the detach) sets the done signal,
                // and the cleared outbox lets the sweep close the slot.
                if let Some(sub) = &conn.subscription {
                    let _ = sub.control.detach(sub.id);
                    conn.phase = Phase::Draining;
                }
            }
        }
    }

    /// Sends a structured `ERR` and schedules the close behind it.
    fn reject(&mut self, slot: usize, message: &str) {
        // RELAXED-OK: monotonic stat counter; orders nothing.
        self.shared.handshake_rejects.fetch_add(1, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        let _ = conn.outbox.push(HandshakeReply::Rejected(message.to_string()).encode().as_bytes());
        conn.phase = Phase::Rejecting;
    }

    /// Times out handshakes that outlived their deadline.
    fn expire_handshakes(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else { continue };
            if let Phase::Handshaking { deadline: Some(deadline), .. } = &conn.phase {
                if *deadline <= now {
                    self.reject(slot, "handshake timed out");
                }
            }
        }
    }

    /// Times out post-handshake connections whose socket made no progress
    /// for the configured [`crate::serve::TcpServerBuilder::idle_timeout`].
    ///
    /// This is the liveness backstop the handshake deadline does not cover:
    /// a dead-but-open client (NAT-idled, no FIN ever delivered) in
    /// `Streaming` would otherwise hold its session, its admission-gate
    /// credit and its retained windows forever. Expiry poisons *that
    /// session only* — the joiner finalizes with the error in its report,
    /// the sweep closes the socket, and the gate credit comes back.
    fn expire_idle(&mut self) {
        let Some(idle) = self.shared.config.idle_timeout else { return };
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else { continue };
            // A *pipeline-side* stall is not client death: while the
            // session has chunks the server still owes work on — pending in
            // a blocked feeder, or submitted but not yet folded — no socket
            // progress proves nothing about the client. Its bytes may sit
            // unread in the kernel buffer (POLLIN interest is off while the
            // feeder is blocked) and its frames have simply not been
            // produced yet behind a busy shard. Restart the clock so the
            // deadline measures from the moment the pipeline catches up.
            //
            // The discriminator is the outbox: a backed-up outbox means the
            // *client* is not draining its frames — that is exactly the
            // dead-but-open shape this timeout exists to reclaim, so there
            // the clock keeps running regardless of pipeline state.
            let pipeline_busy = conn.session.as_ref().is_some_and(|s| {
                let counters = &s.task.core.counters;
                s.feeder.is_blocked()
                    // Acquire pairs with the Release fetch_adds in the
                    // feeder/joiner: the liveness verdict (bill the stall to
                    // the server, not the client) must see a submission no
                    // later than the pipeline state behind it (upgraded from
                    // Relaxed in the PR-8 concurrency audit).
                    || counters.chunks_submitted.load(Ordering::Acquire)
                        > counters.chunks_joined.load(Ordering::Acquire)
            });
            if pipeline_busy && !conn.outbox.over_cap() {
                conn.last_progress = now;
                continue;
            }
            if !conn.idle_eligible() || now.saturating_duration_since(conn.last_progress) < idle {
                continue;
            }
            let reason = crate::serve::idle_timeout_error(idle);
            if let Some(session) = &conn.session {
                // Order matters: discard the queued frames (a dead client
                // will never read them) *before* poisoning, and unpark a
                // fold parked on the now-cleared outbox — with the outbox
                // empty, POLLOUT disarms and nothing else would ever
                // re-enqueue it to observe the poison and finalize.
                conn.outbox.close_and_clear();
                session.task.core.poison(reason.clone());
                if session.task.stalled_on_outbox.swap(false, Ordering::SeqCst) {
                    enqueue_task(&session.task);
                }
                conn.read_error.get_or_insert(reason);
                conn.phase = Phase::Draining;
                unpublish_stream(&self.shared, conn);
            } else if let Some(sub) = &conn.subscription {
                // A subscriber with queued frames nobody drained: the
                // dead-but-open shape. Detaching it ends only this
                // subscriber — the shared stream keeps serving everyone
                // else.
                conn.outbox.close_and_clear();
                let _ = sub.control.detach(sub.id);
                conn.write_error.get_or_insert(reason);
                conn.phase = Phase::Draining;
            } else {
                // A rejecting connection that never read its ERR line.
                self.close_conn(slot, false);
            }
        }
    }

    /// Post-dispatch pass: resume pumped feeders, notice finished joiners,
    /// close connections that drained.
    fn sweep(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else { continue };
            if let Some(session) = conn.session.as_mut() {
                if conn.signal.feed_ready.swap(false, Ordering::AcqRel) {
                    let pool = Arc::clone(&session.pool);
                    session.feeder.pump_nonblocking(&pool);
                }
                if conn.signal.done.load(Ordering::Acquire)
                    && matches!(conn.phase, Phase::Streaming)
                {
                    // The session ended under the client (a worker panic
                    // poisoned it): stop reading, flush what's queued.
                    conn.phase = Phase::Draining;
                    unpublish_stream(&self.shared, conn);
                }
            } else if conn.subscription.is_some()
                && conn.signal.done.load(Ordering::Acquire)
                && matches!(conn.phase, Phase::Streaming)
            {
                // The shared stream this connection subscribed to ended (its
                // sink's `end` set the signal): flush the queued tail, then
                // close.
                conn.phase = Phase::Draining;
            }
            match conn.phase {
                Phase::Draining
                    if conn.signal.done.load(Ordering::Acquire) && conn.outbox.is_empty() =>
                {
                    // Half-close so the client's frame reader sees EOF even
                    // if it keeps its write half open.
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    self.close_conn(slot, true);
                }
                Phase::Rejecting if conn.outbox.is_empty() => {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    self.close_conn(slot, false);
                }
                _ => {}
            }
        }
    }

    /// Tears a connection down on an unrecoverable local error (not a
    /// protocol rejection): the session, if any, is poisoned and reported.
    fn abort_conn(&mut self, slot: usize, reason: &str) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { return };
        if let Some(session) = &conn.session {
            // Same ordering discipline as `expire_idle`: clear first, then
            // poison and unpark, so a fold parked on the outbox cannot stay
            // parked forever once POLLOUT disarms.
            conn.outbox.close_and_clear();
            session.task.core.poison(reason.to_string());
            if session.task.stalled_on_outbox.swap(false, Ordering::SeqCst) {
                enqueue_task(&session.task);
            }
            conn.write_error.get_or_insert_with(|| reason.to_string());
            conn.phase = Phase::Draining;
            unpublish_stream(&self.shared, conn);
        } else if let Some(sub) = &conn.subscription {
            conn.outbox.close_and_clear();
            let _ = sub.control.detach(sub.id);
            conn.write_error.get_or_insert_with(|| reason.to_string());
            conn.phase = Phase::Draining;
        } else {
            // RELAXED-OK: monotonic stat counter; orders nothing.
            self.shared.handshake_rejects.fetch_add(1, Ordering::Relaxed);
            self.close_conn(slot, false);
        }
    }

    /// Unregisters the connection, records its report (post-handshake
    /// connections only), and returns the admission slot.
    fn close_conn(&mut self, slot: usize, record: bool) {
        let Some(mut conn) = self.conns[slot].take() else { return };
        self.free.push(slot);
        unpublish_stream(&self.shared, &mut conn);
        if let Some(meta) = conn.meta.take() {
            if record {
                let (report, frames, bytes_out, sink_error) =
                    match (conn.session.take(), conn.subscription.take()) {
                        (Some(session), _) => {
                            // The owner's frame accounting was harvested by its
                            // subscriber sink's `end` when the stream finalized
                            // (`finish_stream` runs under the task lock taken
                            // here, so the hand-off is complete).
                            let mut inner = lock_recover(&session.task.inner).0;
                            let report = inner.report.take();
                            drop(inner);
                            let mut done = lock_recover(&session.done).0;
                            let sink_error = done.write_error.take().map(|e| e.to_string());
                            (report, done.frames, done.bytes_out, sink_error)
                        }
                        (None, Some(sub)) => {
                            // No-op when the stream (or a delivery failure)
                            // already detached this subscriber; otherwise the
                            // client hung up first and this ends it.
                            let _ = sub.control.detach(sub.id);
                            let mut done = lock_recover(&sub.done).0;
                            let sink_error = done.write_error.take().map(|e| e.to_string());
                            // The subscriber's report becomes the connection's
                            // session report: its local per-query counts, its
                            // delivered/dropped totals, its (or the stream's)
                            // terminal error — the same synthesis as the
                            // blocking mode.
                            let report = done.report.take().map(|r| SessionReport {
                                stats: RuntimeStats {
                                    matches: r.delivered,
                                    dropped_matches: r.dropped,
                                    ..RuntimeStats::default()
                                },
                                match_counts: r.match_counts,
                                submatch_counts: Vec::new(),
                                error: r.error,
                            });
                            (report, done.frames, done.bytes_out, sink_error)
                        }
                        (None, None) => (None, 0, 0, None),
                    };
                // `record` balances the shard placement accounting.
                self.shared.record(ConnectionReport {
                    peer: conn.peer,
                    stream_id: meta.stream_id,
                    shard: meta.shard,
                    queries: meta.queries,
                    format: meta.format,
                    frames,
                    bytes_out,
                    report,
                    write_error: conn.write_error.take().or(sink_error),
                    read_error: conn.read_error.take(),
                });
            } else {
                // Placed but closed without a report (e.g. the outbox died
                // before the reply could be queued): still release the
                // shard's live-session accounting.
                self.shared.shard_closed(meta.shard);
            }
        }
        drop(conn);
        self.r.counters.fd_unregistered();
        // RELAXED-OK: live gauge; readers tolerate skew.
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        self.shared.gate.release();
        // A freed admission slot re-arms the listener, which lives on
        // ingest thread 0.
        if self.idx != 0 {
            self.r.wakes[0].wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_wakes_and_drains() {
        let wake = WakeFd::new().expect("wake fd");
        let mut fds = [PollFd { fd: wake.raw_fd(), events: POLLIN, revents: 0 }];
        // Nothing pending: a zero-timeout poll reports no readiness.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        wake.wake();
        wake.wake(); // coalesces, never blocks
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        wake.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained fd is quiet");
        // And it can wake again after a drain.
        wake.wake();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
    }

    #[test]
    fn wakefd_crosses_threads() {
        let wake = Arc::new(WakeFd::new().expect("wake fd"));
        let remote = Arc::clone(&wake);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            remote.wake();
        });
        let mut fds = [PollFd { fd: wake.raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 5000).unwrap(), 1, "woken from another thread");
        handle.join().unwrap();
    }

    #[test]
    fn outbox_caps_and_latches() {
        let counters = Arc::new(ReactorCounters::default());
        let telemetry = Arc::new(ServeTelemetry::default());
        let outbox = OutboxShared::new(16, Arc::clone(&counters), telemetry);
        assert!(outbox.is_empty());
        assert!(!outbox.over_cap());
        outbox.push(b"0123456789abcdef").unwrap();
        assert!(outbox.over_cap(), "cap reached at exactly cap bytes");
        assert_eq!(outbox.len(), 16);
        assert_eq!(counters.snapshot().peak_outbox_bytes, 16);
        // A latched close discards buffered bytes and refuses more.
        outbox.close_and_clear();
        assert!(outbox.is_empty());
        let err = outbox.push(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // The peak survives for the stats snapshot.
        assert_eq!(counters.snapshot().peak_outbox_bytes, 16);
    }

    fn test_outbox(cap: usize) -> (Arc<OutboxShared>, Arc<ServeTelemetry>) {
        let telemetry = Arc::new(ServeTelemetry::default());
        let outbox =
            OutboxShared::new(cap, Arc::new(ReactorCounters::default()), Arc::clone(&telemetry));
        (outbox, telemetry)
    }

    /// `count` consecutive windows of `size` bytes each, distinct fills.
    fn test_windows(count: usize, size: usize) -> Vec<ppt_xmlstream::SharedWindow> {
        (0..count)
            .map(|i| {
                let fill = [b'a', b'b', b'c', b'd'][i % 4];
                ppt_xmlstream::SharedWindow::new(i * size, vec![fill; size])
            })
            .collect()
    }

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (server, client)
    }

    /// Satellite bugfix regression: a borrowed payload's bytes must count
    /// against `max_outbox_bytes` — with a stalled reader, MiB payloads trip
    /// the cap even though the *copied* header traffic is tiny.
    #[test]
    fn borrowed_payload_bytes_count_against_cap() {
        let (outbox, telemetry) = test_outbox(1024);
        let windows = test_windows(16, 64 << 10); // 1 MiB borrowed
        let total = 16 * (64 << 10);
        let payload = PayloadRef::new(windows, 0..total);
        outbox
            .push_frame(FrameRef { head: b"HEAD:", payload: Some(payload), tail: b":TAIL\n" })
            .unwrap();
        assert_eq!(outbox.len(), total + 11, "borrowed bytes are queued bytes");
        assert!(outbox.over_cap(), "stalled reader with a MiB payload trips a 1 KiB cap");
        assert_eq!(telemetry.bytes_copied.get(), 11, "only head+tail were copied");
        assert_eq!(telemetry.bytes_borrowed.get(), total as u64);
        assert_eq!(outbox.borrowed_segments(), 1);
    }

    /// A short write can land mid-iovec (even mid-slice); the cursor must
    /// resume exactly where the socket stopped, and the bytes on the wire
    /// must be the frame verbatim.
    #[test]
    fn vectored_drain_resumes_after_short_write() {
        let (outbox, _) = test_outbox(usize::MAX);
        let windows = test_windows(256, 64 << 10); // 16 MiB: far past any socket buffer
        let total = 256 * (64 << 10);
        let payload = PayloadRef::new(windows, 0..total);
        let mut expected = b"HEAD:".to_vec();
        expected.extend_from_slice(&payload.to_vec());
        expected.extend_from_slice(b":TAIL\n");
        outbox
            .push_frame(FrameRef { head: b"HEAD:", payload: Some(payload), tail: b":TAIL\n" })
            .unwrap();

        let (mut server, mut client) = socket_pair();
        server.set_nonblocking(true).unwrap();
        client.set_nonblocking(true).unwrap();
        let first = outbox.drain_to(&mut server).unwrap();
        assert!(first > 0 && first < expected.len(), "16 MiB cannot drain in one writev batch");
        assert!(!outbox.is_empty(), "cursor left mid-frame");

        let mut received = Vec::with_capacity(expected.len());
        let mut buf = vec![0u8; 256 << 10];
        let mut spins = 0u32;
        while received.len() < expected.len() {
            if !outbox.is_empty() {
                outbox.drain_to(&mut server).unwrap();
            }
            match client.read(&mut buf) {
                Ok(0) => panic!("server closed early"),
                Ok(n) => {
                    received.extend_from_slice(&buf[..n]);
                    spins = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    spins += 1;
                    assert!(spins < 100_000, "drain/read loop wedged");
                    std::thread::yield_now();
                }
                Err(e) => panic!("client read failed: {e}"),
            }
        }
        assert!(outbox.is_empty());
        assert_eq!(received.len(), expected.len());
        assert!(received == expected, "resumed drain corrupted the byte stream");
    }

    /// A window stays alive while *any* queued frame borrows it and is
    /// released the moment the last borrowing frame fully drains.
    #[test]
    fn window_freed_after_last_borrowing_frame_drains() {
        let (outbox, _) = test_outbox(usize::MAX);
        let shared = test_windows(256, 64 << 10); // w[0] is borrowed twice
        let small = PayloadRef::new(vec![shared[0].clone()], 0..(64 << 10));
        let big_total = 256 * (64 << 10);
        let big = PayloadRef::new(shared.clone(), 0..big_total);
        let probe = shared[0].clone();
        drop(shared);
        // probe + small + big hold w[0]:
        assert_eq!(probe.strong_count(), 3);
        outbox.push_frame(FrameRef { head: b"1:", payload: Some(small), tail: b"\n" }).unwrap();
        outbox.push_frame(FrameRef { head: b"2:", payload: Some(big), tail: b"\n" }).unwrap();
        assert_eq!(outbox.borrowed_segments(), 2);

        let (mut server, mut client) = socket_pair();
        server.set_nonblocking(true).unwrap();
        client.set_nonblocking(true).unwrap();
        // The 16 MiB second frame cannot fit in kernel socket buffers, so at
        // some point between drains the queue must hold exactly one Borrowed
        // segment: the small frame's borrow already released, the big
        // frame's still pinning the window. Assert that intermediate state
        // is observed — that is "freed only after the *last* borrowing frame
        // drains" made concrete.
        let mut saw_one_borrow_left = false;
        let total = (2 + (64 << 10) + 1) + (2 + big_total + 1);
        let mut drained = 0usize;
        let mut buf = vec![0u8; 256 << 10];
        let mut spins = 0u32;
        while drained < total {
            if !outbox.is_empty() {
                outbox.drain_to(&mut server).unwrap();
            }
            if outbox.borrowed_segments() == 1 && !outbox.is_empty() {
                assert_eq!(probe.strong_count(), 2, "first borrow freed, second still held");
                saw_one_borrow_left = true;
            }
            match client.read(&mut buf) {
                Ok(0) => panic!("server closed early"),
                Ok(n) => {
                    drained += n;
                    spins = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    spins += 1;
                    assert!(spins < 100_000, "drain/read loop wedged");
                    std::thread::yield_now();
                }
                Err(e) => panic!("client read failed: {e}"),
            }
        }
        assert!(saw_one_borrow_left, "never observed the one-borrow-left state");
        assert!(outbox.is_empty());
        assert_eq!(outbox.borrowed_segments(), 0);
        assert_eq!(probe.strong_count(), 1, "last borrowing frame drained: window released");
    }

    /// A latched close (dead socket, poisoned session) must drop every
    /// borrowed payload immediately — a dead connection cannot keep pinning
    /// retention windows.
    #[test]
    fn close_and_clear_releases_borrowed_windows() {
        let (outbox, _) = test_outbox(usize::MAX);
        let windows = test_windows(4, 4096);
        let probe = windows[0].clone();
        let payload = PayloadRef::new(windows, 0..4 * 4096);
        outbox.push_frame(FrameRef { head: b"H", payload: Some(payload), tail: b"\n" }).unwrap();
        assert_eq!(probe.strong_count(), 2);
        assert_eq!(outbox.borrowed_segments(), 1);
        outbox.close_and_clear();
        assert!(outbox.is_empty());
        assert_eq!(outbox.borrowed_segments(), 0);
        assert_eq!(probe.strong_count(), 1, "close released the borrowed window");
        let err = outbox.push(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    /// The interest function is the POLLOUT flip the tests care about: a
    /// non-empty outbox arms POLLOUT, a drained one disarms it, and a
    /// backpressured feeder drops POLLIN.
    #[test]
    fn interest_follows_outbox_and_feeder_state() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, peer) = listener.accept().unwrap();
        let counters = Arc::new(ReactorCounters::default());
        let telemetry = Arc::new(ServeTelemetry::default());
        let outbox = OutboxShared::new(64, Arc::clone(&counters), Arc::clone(&telemetry));
        let wake = Arc::new(WakeFd::new().unwrap());
        let mut conn = Conn {
            stream: server_side,
            peer,
            phase: Phase::Handshaking { decoder: HandshakeDecoder::new(), deadline: None },
            outbox: Arc::clone(&outbox),
            signal: Arc::new(ConnSignal {
                feed_ready: AtomicBool::new(false),
                done: AtomicBool::new(false),
                wake,
            }),
            session: None,
            subscription: None,
            hub_published: None,
            meta: None,
            read_error: None,
            write_error: None,
            last_progress: Instant::now(),
            accepted_at: Instant::now(),
        };
        assert_eq!(conn.interest(), POLLIN, "handshake listens only");

        conn.phase = Phase::Streaming;
        assert_eq!(conn.interest(), POLLIN, "empty outbox: no POLLOUT");
        outbox.push(b"frame").unwrap();
        assert_eq!(conn.interest(), POLLIN | POLLOUT, "queued bytes arm POLLOUT");

        conn.phase = Phase::Draining;
        assert_eq!(conn.interest(), POLLOUT, "draining only flushes");
        let mut sink = std::io::sink();
        let _ = sink.write(b"");
        // Drain the outbox through the real socket: POLLOUT disarms, and
        // the written-byte count is the progress signal.
        let mut stream = conn.stream.try_clone().unwrap();
        assert_eq!(outbox.drain_to(&mut stream).unwrap(), 5);
        assert!(outbox.is_empty());
        assert_eq!(conn.interest(), 0, "drained outbox leaves the poll set");
        drop(client);
    }
}
