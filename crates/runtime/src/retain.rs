//! The window-retention ring: bounded payload memory for match
//! materialization.
//!
//! The pipeline normally drops a window once its chunks are transduced — the
//! joiner only ever sees state mappings and offsets. Serving *payloads*
//! (the matched element bytes) needs the window bytes to still exist when a
//! match is emitted, which can be long after the window flowed past: an
//! element opened in window 3 may close in window 40, and a predicated match
//! is only emitted when its anchor scope closes.
//!
//! [`RetentionRing`] keeps recent windows alive by holding a refcount on
//! each [`SharedWindow`] the feeder emits (clone-on-retain — no byte is ever
//! copied). Two forces bound its memory:
//!
//! * the **resolve frontier** — after every fold the joiner releases windows
//!   that lie entirely below the earliest offset any unresolved or buffered
//!   match could still need (see `joiner_loop`); on streams whose matches
//!   resolve promptly the ring holds only a handful of windows regardless of
//!   the budget; and
//! * the **byte budget** — a hard cap for adversarial streams (one element
//!   spanning gigabytes would otherwise pin every window): when retained
//!   bytes exceed the budget the oldest windows are evicted anyway, and any
//!   match whose span falls in an evicted window is delivered without its
//!   payload (a *payload miss*, counted in the session stats).
//!
//! The ring never evicts the newest window, so a single window larger than
//! the whole budget still serves in-window spans; retained bytes are bounded
//! by `max(budget, largest window)`.
//!
//! # Borrow-aware frontier and the zero-copy handoff
//!
//! Since the vectored-egress PR, delivery *borrows* instead of copying:
//! [`RetentionRing::collect`] hands refcounted [`SharedWindow`] clones to a
//! [`crate::PayloadRef`], which rides a frame into the reactor's outbox and
//! is dropped only when the socket has accepted the frame's last byte. Two
//! consequences for the memory story:
//!
//! * **The resolve frontier stays correct as-is.** The frontier reasons
//!   about which *matches* may still materialize; once a match is delivered
//!   its payload's liveness is carried by the `PayloadRef`'s own refcounts,
//!   not by ring membership. `release_below` dropping the ring's clone of a
//!   window does not free bytes some in-flight frame still borrows — the
//!   `Arc` does the right thing — and conversely a drained frame never
//!   resurrects an evicted range ([`RetentionRing::collect`] misses stay
//!   misses).
//! * **Borrowed bytes are bounded by the outbox, not the ring.** The ring
//!   budget bounds what the *ring* pins; bytes pinned by queued frames are
//!   bounded separately by `max_outbox_bytes`, whose accounting includes
//!   borrowed payload bytes precisely so a stalled reader cannot extend a
//!   session's memory past `ring budget + outbox cap`. A dead connection
//!   releases all of its borrows at once when the reactor clears its outbox.

use ppt_xmlstream::SharedWindow;
use std::collections::VecDeque;
use std::ops::Range;

/// Eviction accounting returned by [`RetentionRing::push`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Evicted {
    /// Windows evicted by the byte budget.
    pub windows: u64,
    /// Bytes those windows covered.
    pub bytes: u64,
}

/// A bounded ring of retained stream windows, ordered and contiguous.
#[derive(Debug)]
pub(crate) struct RetentionRing {
    budget: usize,
    windows: VecDeque<SharedWindow>,
    retained: usize,
}

impl RetentionRing {
    /// An empty ring with the given byte budget (clamped to ≥ 1).
    pub fn new(budget: usize) -> RetentionRing {
        RetentionRing { budget: budget.max(1), windows: VecDeque::new(), retained: 0 }
    }

    /// Bytes currently retained.
    pub fn retained_bytes(&self) -> usize {
        self.retained
    }

    /// Windows currently retained.
    #[cfg(test)]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Retains `window` (refcount bump), evicting the oldest windows while
    /// the budget is exceeded — but never the window just pushed.
    pub fn push(&mut self, window: SharedWindow) -> Evicted {
        debug_assert!(
            self.windows.back().map(|w| w.end() == window.base()).unwrap_or(true),
            "windows must be pushed in stream order with no gaps"
        );
        self.retained += window.len();
        self.windows.push_back(window);
        let mut evicted = Evicted::default();
        while self.retained > self.budget && self.windows.len() > 1 {
            // UNWRAP-OK: the loop condition guarantees `windows.len() > 1`.
            let old = self.windows.pop_front().expect("len > 1");
            self.retained -= old.len();
            evicted.windows += 1;
            evicted.bytes += old.len() as u64;
        }
        evicted
    }

    /// Drops windows lying entirely below `frontier` — every span that could
    /// still be materialized starts at or past it. Not counted as evictions:
    /// these windows can no longer be needed. Returns the bytes released so
    /// the caller can sample occupancy only when it actually moved (the
    /// joiner records the drain side of the occupancy histogram this way).
    pub fn release_below(&mut self, frontier: usize) -> usize {
        let mut released = 0usize;
        while let Some(front) = self.windows.front() {
            if front.end() <= frontier {
                self.retained -= front.len();
                released += front.len();
                self.windows.pop_front();
            } else {
                break;
            }
        }
        released
    }

    /// Clones the windows overlapping `range` (absolute stream offsets) —
    /// refcount bumps only, no byte is copied, so this is safe to call with
    /// the ring lock held. `None` when any part of the range was evicted (or
    /// never retained) — a partial payload is worse than no payload.
    pub fn collect(&self, range: Range<usize>) -> Option<Vec<SharedWindow>> {
        if range.start >= range.end {
            return Some(Vec::new());
        }
        let front = self.windows.front()?;
        if range.start < front.base() || range.end > self.windows.back()?.end() {
            return None;
        }
        let first = self.windows.partition_point(|w| w.end() <= range.start);
        let overlap: Vec<SharedWindow> =
            self.windows.iter().skip(first).take_while(|w| w.base() < range.end).cloned().collect();
        Some(overlap)
    }

    /// Copies the bytes of `range` out of the retained windows (see
    /// [`RetentionRing::collect`] + [`assemble`] for the two-phase form the
    /// delivery path uses to keep the copy outside the ring lock).
    #[cfg(test)]
    pub fn extract(&self, range: Range<usize>) -> Option<Vec<u8>> {
        self.collect(range.clone()).map(|ws| assemble(&ws, range))
    }
}

/// Concatenates the bytes of `range` out of contiguous overlapping windows
/// (as returned by [`RetentionRing::collect`]).
pub(crate) fn assemble(windows: &[SharedWindow], range: Range<usize>) -> Vec<u8> {
    let mut out = Vec::with_capacity(range.end.saturating_sub(range.start));
    for w in windows {
        out.extend_from_slice(w.slice_abs(range.clone()));
    }
    debug_assert_eq!(out.len(), range.len(), "retained windows are contiguous");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(base: usize, len: usize) -> SharedWindow {
        let bytes: Vec<u8> = (0..len).map(|i| ((base + i) % 251) as u8).collect();
        SharedWindow::new(base, bytes)
    }

    #[test]
    fn extract_straddles_window_boundaries() {
        let mut ring = RetentionRing::new(1 << 20);
        ring.push(window(0, 10));
        ring.push(window(10, 10));
        ring.push(window(20, 5));
        let got = ring.extract(7..23).unwrap();
        let expected: Vec<u8> = (7..23).map(|i| (i % 251) as u8).collect();
        assert_eq!(got, expected);
        assert_eq!(ring.extract(0..25).unwrap().len(), 25);
        assert_eq!(ring.extract(12..12).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn budget_evicts_oldest_first_and_misses_are_reported() {
        let mut ring = RetentionRing::new(25);
        assert_eq!(ring.push(window(0, 10)), Evicted::default());
        assert_eq!(ring.push(window(10, 10)), Evicted::default());
        // 30 bytes retained > 25: the oldest window goes.
        assert_eq!(ring.push(window(20, 10)), Evicted { windows: 1, bytes: 10 });
        assert_eq!(ring.retained_bytes(), 20);
        assert!(ring.extract(5..15).is_none(), "evicted range must miss");
        assert!(ring.extract(0..30).is_none());
        assert!(ring.extract(10..30).is_some());
    }

    #[test]
    fn oversized_window_is_kept_alone() {
        let mut ring = RetentionRing::new(8);
        ring.push(window(0, 4));
        let ev = ring.push(window(4, 100));
        assert_eq!(ev, Evicted { windows: 1, bytes: 4 });
        assert_eq!(ring.window_count(), 1);
        assert!(ring.extract(4..104).is_some(), "the newest window always serves");
        // The next push evicts the oversized one.
        let ev = ring.push(window(104, 4));
        assert_eq!(ev, Evicted { windows: 1, bytes: 100 });
        assert!(ring.retained_bytes() <= 8);
    }

    #[test]
    fn release_below_drops_resolved_windows_without_eviction_accounting() {
        let mut ring = RetentionRing::new(1 << 20);
        ring.push(window(0, 10));
        ring.push(window(10, 10));
        ring.push(window(20, 10));
        ring.release_below(15); // window 0..10 is fully resolved
        assert_eq!(ring.window_count(), 2);
        assert_eq!(ring.retained_bytes(), 20);
        ring.release_below(30);
        assert_eq!(ring.window_count(), 0);
        assert!(ring.extract(20..21).is_none());
    }
}
