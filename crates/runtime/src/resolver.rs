//! Streaming span resolution: turning the joiner's per-chunk drains into a
//! position-ordered stream of *open* and *close* events.
//!
//! The batch pipeline resolves cross-chunk element spans at the very end of
//! the run ([`ppt_core::parallel`]'s ladder sweep). Online emission cannot
//! wait for the end of an unbounded stream, so [`SpanResolver`] runs the same
//! sweep incrementally: every fold contributes its newly-final matches (ends
//! already resolved when the element closed inside its own chunk) and its
//! rebased close-ladder events (closes of elements opened in earlier chunks),
//! and the resolver emits
//!
//! * [`SpanEvent::Open`] when a match's opening tag position is reached, and
//! * [`SpanEvent::Close`] when its end offset becomes known,
//!
//! in strictly non-decreasing position order. Matches whose element is still
//! open stay pending; their depths form a stack (an unresolved inner element
//! implies an unresolved outer one), so a ladder event at absolute depth `d`
//! closes exactly the pending matches deeper than `d` — the identical
//! invariant the batch sweep relies on.

use ppt_core::parallel::ResolvedMatch;

/// An element-lifecycle event derived from the folded prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// A sub-query match whose opening tag was reached. `end` may still be
    /// [`usize::MAX`] if the element has not closed yet.
    Open(ResolvedMatch),
    /// The same match once its end offset is known. Never emitted when span
    /// resolution is disabled.
    Close(ResolvedMatch),
}

impl SpanEvent {
    /// The match the event is about.
    pub fn matched(&self) -> &ResolvedMatch {
        match self {
            SpanEvent::Open(m) | SpanEvent::Close(m) => m,
        }
    }
}

enum Pending {
    Open(ResolvedMatch),
    CloseKnown(ResolvedMatch),
    Ladder(i64),
}

/// Incremental span resolver; one per session.
#[derive(Debug)]
pub struct SpanResolver {
    resolve_spans: bool,
    /// Matches whose element has not closed yet, in arrival (position) order;
    /// depths are non-decreasing.
    pending: Vec<ResolvedMatch>,
}

impl SpanResolver {
    /// Creates a resolver. With `resolve_spans == false` every match is
    /// emitted as an [`SpanEvent::Open`] immediately and no close events
    /// exist (mirroring the batch engine's behaviour).
    pub fn new(resolve_spans: bool) -> SpanResolver {
        SpanResolver { resolve_spans, pending: Vec::new() }
    }

    /// Number of matches whose element is still open.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Earliest opening-tag offset among matches whose element has not
    /// closed yet (`None` when nothing is pending). Pending matches arrive
    /// in position order, so this is the head of the stack — the retention
    /// ring must keep every window at or past this offset.
    pub fn min_pending_pos(&self) -> Option<usize> {
        self.pending.first().map(|m| m.pos)
    }

    /// Feeds one fold's newly-final matches (document order) and rebased
    /// ladder events, appending the resulting span events to `out`.
    pub fn feed(
        &mut self,
        matches: Vec<ResolvedMatch>,
        ladder: &[(usize, i64)],
        out: &mut Vec<SpanEvent>,
    ) {
        if !self.resolve_spans {
            out.extend(matches.into_iter().map(SpanEvent::Open));
            return;
        }
        // Build this fold's event batch: opens at the match position, known
        // closes at the in-chunk end, ladder events at the close position.
        // Sort by (position, closes-before-opens); the sort is stable so
        // duplicate matches of one element stay adjacent.
        let mut batch: Vec<(usize, u8, Pending)> =
            Vec::with_capacity(matches.len() * 2 + ladder.len());
        for m in matches {
            batch.push((m.pos, 1, Pending::Open(m)));
            if m.end != usize::MAX {
                batch.push((m.end, 0, Pending::CloseKnown(m)));
            }
        }
        for &(pos, depth_after) in ladder {
            batch.push((pos, 0, Pending::Ladder(depth_after)));
        }
        batch.sort_by_key(|&(pos, kind, _)| (pos, kind));

        for (pos, _, ev) in batch {
            match ev {
                Pending::Open(m) => {
                    out.push(SpanEvent::Open(m));
                    if m.end == usize::MAX {
                        self.pending.push(m);
                    }
                }
                Pending::CloseKnown(m) => out.push(SpanEvent::Close(m)),
                Pending::Ladder(depth_after) => {
                    while let Some(last) = self.pending.last() {
                        if (last.depth as i64) > depth_after {
                            // UNWRAP-OK: `last()` on the line above proved
                            // the stack is non-empty.
                            let mut m = self.pending.pop().expect("non-empty");
                            m.end = pos;
                            out.push(SpanEvent::Close(m));
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Ends the stream: elements that never closed get `end = total_len`,
    /// exactly as the batch sweep caps them. Closes are emitted innermost
    /// first.
    pub fn finish(&mut self, total_len: usize, out: &mut Vec<SpanEvent>) {
        while let Some(mut m) = self.pending.pop() {
            m.end = total_len;
            out.push(SpanEvent::Close(m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pos: usize, end: usize, depth: u32, subquery: u32) -> ResolvedMatch {
        ResolvedMatch { pos, end, depth, subquery }
    }

    fn closes(events: &[SpanEvent]) -> Vec<(usize, usize)> {
        events
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Close(m) => Some((m.pos, m.end)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_chunk_closes_pass_through_in_order() {
        let mut r = SpanResolver::new(true);
        let mut out = Vec::new();
        r.feed(vec![m(0, 30, 1, 0), m(5, 12, 2, 0)], &[], &mut out);
        // Opens at 0 and 5; closes at 12 (inner) then 30 (outer).
        assert_eq!(closes(&out), vec![(5, 12), (0, 30)]);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn ladder_events_close_pending_matches_across_feeds() {
        let mut r = SpanResolver::new(true);
        let mut out = Vec::new();
        // Chunk 1: both elements stay open.
        r.feed(vec![m(0, usize::MAX, 1, 0), m(3, usize::MAX, 2, 0)], &[], &mut out);
        assert_eq!(r.pending_len(), 2);
        assert!(closes(&out).is_empty());
        // Chunk 2: the depth-2 element closes at 20 (back to depth 1), the
        // depth-1 element closes at 27 (back to depth 0).
        out.clear();
        r.feed(Vec::new(), &[(20, 1), (27, 0)], &mut out);
        assert_eq!(closes(&out), vec![(3, 20), (0, 27)]);
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn one_ladder_event_closes_all_deeper_pending() {
        let mut r = SpanResolver::new(true);
        let mut out = Vec::new();
        r.feed(
            vec![m(0, usize::MAX, 1, 0), m(3, usize::MAX, 2, 0), m(6, usize::MAX, 3, 0)],
            &[],
            &mut out,
        );
        out.clear();
        // A close ladder dropping straight to depth 1 closes depths 3 and 2
        // but not 1. (In real streams each close is its own event; the sweep
        // must still handle the aggregate case.)
        r.feed(Vec::new(), &[(40, 1)], &mut out);
        assert_eq!(closes(&out), vec![(6, 40), (3, 40)]);
        assert_eq!(r.pending_len(), 1);
    }

    #[test]
    fn finish_caps_unclosed_elements() {
        let mut r = SpanResolver::new(true);
        let mut out = Vec::new();
        r.feed(vec![m(0, usize::MAX, 1, 0), m(7, usize::MAX, 2, 1)], &[], &mut out);
        out.clear();
        r.finish(99, &mut out);
        assert_eq!(closes(&out), vec![(7, 99), (0, 99)]);
    }

    #[test]
    fn disabled_span_resolution_only_opens() {
        let mut r = SpanResolver::new(false);
        let mut out = Vec::new();
        r.feed(vec![m(0, usize::MAX, 1, 0)], &[(5, 0)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], SpanEvent::Open(_)));
        r.finish(10, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicate_matches_of_one_element_stay_adjacent() {
        let mut r = SpanResolver::new(true);
        let mut out = Vec::new();
        // Two sub-queries matching the same element (same pos/end/depth).
        r.feed(vec![m(4, 19, 2, 0), m(4, 19, 2, 1), m(8, 12, 3, 0)], &[], &mut out);
        let c = closes(&out);
        assert_eq!(c, vec![(8, 12), (4, 19), (4, 19)]);
    }
}
