//! Match delivery: the [`MatchSink`] callback interface, the payload-carrying
//! [`PayloadSink`] variant, and ready-made sinks.
//!
//! The joiner stage calls the sink *synchronously*: a sink that blocks (a
//! full channel, a slow socket) stalls the joiner, which stops returning
//! in-flight credits, which stalls the splitter, which stops reading the
//! source — backpressure propagates all the way to the input with bounded
//! buffering at every stage.

use crate::pool::SessionCore;
use ppt_xmlstream::SharedWindow;
use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// One match of a user query, emitted while the stream is still flowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineMatch {
    /// Index of the query (in the order queries were added to the engine).
    pub query: usize,
    /// Byte offset of the matched element's opening tag.
    pub start: usize,
    /// Byte offset just past the matched element's closing tag
    /// ([`usize::MAX`] when span resolution is disabled).
    pub end: usize,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
}

/// Receives matches from a session's joiner stage.
///
/// Matches of span-resolved sessions are emitted the moment their element
/// closes (predicated queries: the moment their anchor scope closes), so
/// emission order follows element *close* order, not open order — an outer
/// element arrives after everything it contains. Collect and sort by `start`
/// when document order matters.
pub trait MatchSink: Send {
    /// Called once per query match. Returns `true` when the match was
    /// delivered; `false` when the sink discarded it (a hung-up receiver, a
    /// dead connection) — the session keeps running but the match is counted
    /// in [`crate::RuntimeStats::dropped_matches`].
    fn on_match(&mut self, m: OnlineMatch) -> bool;
}

impl<F: FnMut(OnlineMatch) + Send> MatchSink for F {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self(m);
        true
    }
}

/// A sink that appends every match to a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Every emitted match, in emission order.
    pub matches: Vec<OnlineMatch>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Groups the collected matches per query (`query_count` vectors), each
    /// sorted into document order.
    pub fn per_query(&self, query_count: usize) -> Vec<Vec<OnlineMatch>> {
        let mut out: Vec<Vec<OnlineMatch>> = vec![Vec::new(); query_count];
        for m in &self.matches {
            if let Some(v) = out.get_mut(m.query) {
                v.push(*m);
            }
        }
        for v in &mut out {
            v.sort_by_key(|m| m.start);
        }
        out
    }
}

impl MatchSink for CollectSink {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self.matches.push(m);
        true
    }
}

/// A sink that forwards matches into a bounded channel (used by the iterator
/// API). A send on a full channel blocks — that is the backpressure path. If
/// the receiver is gone the match is dropped so the pipeline can drain and
/// shut down instead of wedging.
#[derive(Debug)]
pub(crate) struct ChannelSink {
    pub tx: SyncSender<OnlineMatch>,
}

impl MatchSink for ChannelSink {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self.tx.send(m).is_ok()
    }
}

/// An [`OnlineMatch`] together with its materialized element bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedMatch {
    /// Caller-assigned stream id of the session (see
    /// [`crate::SessionOptions::stream_id`]).
    pub stream: u64,
    /// The match itself.
    pub m: OnlineMatch,
    /// The bytes `start..end` of the stream — the matched element, opening
    /// tag through closing tag. `None` when retention is disabled, the span
    /// was evicted from the retention ring before delivery (a *payload
    /// miss*), or span resolution is off (no `end` to slice to).
    pub payload: Option<Vec<u8>>,
}

/// A payload *borrowed* from the retention ring: a run of [`SharedWindow`]
/// clones whose bytes cover `range` (absolute stream offsets).
///
/// Cloning windows bumps refcounts without copying bytes, so a `PayloadRef`
/// keeps its payload alive even after the ring evicts those windows — the
/// bytes are freed when the last holder (ring, in-flight chunk job, or
/// egress frame) drops. This is the zero-copy handoff the vectored egress
/// path rides: the reactor outbox holds the `PayloadRef` until the frame has
/// fully drained to the socket, then drops it, releasing the windows.
#[derive(Debug, Clone)]
pub struct PayloadRef {
    windows: Vec<SharedWindow>,
    range: Range<usize>,
}

impl PayloadRef {
    pub(crate) fn new(windows: Vec<SharedWindow>, range: Range<usize>) -> PayloadRef {
        PayloadRef { windows, range }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// `true` when the payload covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The absolute stream range the payload covers.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// The payload as contiguous byte slices, in stream order — one per
    /// overlapping window, zero-length overlaps skipped. Concatenated they
    /// are exactly the `range` bytes; each is a candidate iovec entry.
    pub fn slices(&self) -> impl Iterator<Item = &[u8]> {
        let range = self.range.clone();
        self.windows.iter().map(move |w| w.slice_abs(range.clone())).filter(|s| !s.is_empty())
    }

    /// Assembles the payload into one owned buffer (the copying path).
    pub fn to_vec(&self) -> Vec<u8> {
        crate::retain::assemble(&self.windows, self.range.clone())
    }
}

/// An [`OnlineMatch`] whose payload is still *borrowed* from retained
/// windows — the zero-copy precursor of [`MaterializedMatch`].
#[derive(Debug, Clone)]
pub struct BorrowedMatch {
    /// Stream id of the session (see [`crate::SessionOptions::stream_id`]).
    pub stream: u64,
    /// The match itself.
    pub m: OnlineMatch,
    /// The borrowed payload; `None` under the same conditions as
    /// [`MaterializedMatch::payload`].
    pub payload: Option<PayloadRef>,
}

impl BorrowedMatch {
    /// Copies the borrowed payload into an owned [`MaterializedMatch`],
    /// releasing the window refcounts.
    pub fn materialize(self) -> MaterializedMatch {
        let BorrowedMatch { stream, m, payload } = self;
        MaterializedMatch { stream, m, payload: payload.map(|p| p.to_vec()) }
    }
}

/// Receives materialized matches (offsets + payload bytes) from a session
/// whose retention ring is enabled. The return contract matches
/// [`MatchSink::on_match`].
pub trait PayloadSink: Send {
    /// Called once per query match. `false` = discarded, counted as dropped.
    fn on_match(&mut self, m: MaterializedMatch) -> bool;

    /// Zero-copy delivery: the payload arrives as a [`PayloadRef`] borrowing
    /// retained windows instead of an owned copy. The default materializes
    /// (one copy) and delegates to [`PayloadSink::on_match`], so ordinary
    /// in-process sinks are unaffected; vectored egress sinks override this
    /// to hand the borrowed windows down to the outbox.
    fn on_match_borrowed(&mut self, m: BorrowedMatch) -> bool {
        self.on_match(m.materialize())
    }
}

impl<F: FnMut(MaterializedMatch) + Send> PayloadSink for F {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        self(m);
        true
    }
}

impl PayloadSink for Box<dyn PayloadSink> {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        (**self).on_match(m)
    }

    fn on_match_borrowed(&mut self, m: BorrowedMatch) -> bool {
        (**self).on_match_borrowed(m)
    }
}

impl PayloadSink for &mut dyn PayloadSink {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        (**self).on_match(m)
    }

    fn on_match_borrowed(&mut self, m: BorrowedMatch) -> bool {
        (**self).on_match_borrowed(m)
    }
}

/// A sink that appends every materialized match to a vector.
#[derive(Debug, Default)]
pub struct CollectPayloadSink {
    /// Every emitted match, in emission order.
    pub matches: Vec<MaterializedMatch>,
}

impl CollectPayloadSink {
    /// Creates an empty collector.
    pub fn new() -> CollectPayloadSink {
        CollectPayloadSink::default()
    }
}

impl PayloadSink for CollectPayloadSink {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        self.matches.push(m);
        true
    }
}

/// The joiner-side adapter that turns offset matches into materialized
/// matches: it slices the payload out of the session's retention ring and
/// forwards to a [`PayloadSink`]. `S` is the sink handle — borrowed for the
/// reader-driven entry points, owned (boxed or concrete, as the reactor's
/// outbox sink is) for push-style sessions.
pub(crate) struct Materializer<S> {
    pub core: Arc<SessionCore>,
    pub inner: S,
}

/// Slices one match's payload out of the ring (refcounts only, no copy) and
/// delivers it. Whether the payload bytes are ever copied is now the sink's
/// call: [`PayloadSink::on_match_borrowed`] either materializes (default) or
/// forwards the borrowed windows to a vectored egress queue.
fn deliver(core: &SessionCore, inner: &mut dyn PayloadSink, m: OnlineMatch) -> bool {
    let payload = match (&core.ring, m.end) {
        // No end offset to slice to (span resolution off): nothing to
        // extract — not a miss, there never was a payload to serve.
        (Some(_), usize::MAX) | (None, _) => None,
        (Some(ring), end) => {
            // Take refcounts under the lock, touch the bytes outside it: the
            // feeder contends on this lock every window push, and a payload
            // can be megabytes.
            let (guard, poisoned) = crate::pool::lock_recover(ring);
            if poisoned {
                // A panic under the ring lock is this session's failure: the
                // match still goes out (without payload) so the client sees
                // the span, and the session is poisoned so it winds down
                // instead of panicking every thread that touches the ring.
                drop(guard);
                core.poison("retention ring lock poisoned".to_string());
                None
            } else {
                let windows = guard.collect(m.start..end);
                drop(guard);
                match windows {
                    Some(windows) => Some(PayloadRef::new(windows, m.start..end)),
                    None => {
                        // RELAXED-OK: monotonic stat counter; orders nothing.
                        core.counters.payload_misses.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }
        }
    };
    inner.on_match_borrowed(BorrowedMatch { stream: core.stream_id, m, payload })
}

impl<S: PayloadSink> MatchSink for Materializer<S> {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        deliver(&self.core, &mut self.inner, m)
    }
}
