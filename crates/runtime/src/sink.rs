//! Match delivery: the [`MatchSink`] callback interface and ready-made sinks.
//!
//! The joiner stage calls the sink *synchronously*: a sink that blocks (a
//! full channel, a slow socket) stalls the joiner, which stops returning
//! in-flight credits, which stalls the splitter, which stops reading the
//! source — backpressure propagates all the way to the input with bounded
//! buffering at every stage.

use std::sync::mpsc::SyncSender;

/// One match of a user query, emitted while the stream is still flowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineMatch {
    /// Index of the query (in the order queries were added to the engine).
    pub query: usize,
    /// Byte offset of the matched element's opening tag.
    pub start: usize,
    /// Byte offset just past the matched element's closing tag
    /// ([`usize::MAX`] when span resolution is disabled).
    pub end: usize,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
}

/// Receives matches from a session's joiner stage.
///
/// Matches of span-resolved sessions are emitted the moment their element
/// closes (predicated queries: the moment their anchor scope closes), so
/// emission order follows element *close* order, not open order — an outer
/// element arrives after everything it contains. Collect and sort by `start`
/// when document order matters.
pub trait MatchSink: Send {
    /// Called once per query match.
    fn on_match(&mut self, m: OnlineMatch);
}

impl<F: FnMut(OnlineMatch) + Send> MatchSink for F {
    fn on_match(&mut self, m: OnlineMatch) {
        self(m)
    }
}

/// A sink that appends every match to a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Every emitted match, in emission order.
    pub matches: Vec<OnlineMatch>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Groups the collected matches per query (`query_count` vectors), each
    /// sorted into document order.
    pub fn per_query(&self, query_count: usize) -> Vec<Vec<OnlineMatch>> {
        let mut out: Vec<Vec<OnlineMatch>> = vec![Vec::new(); query_count];
        for m in &self.matches {
            if let Some(v) = out.get_mut(m.query) {
                v.push(*m);
            }
        }
        for v in &mut out {
            v.sort_by_key(|m| m.start);
        }
        out
    }
}

impl MatchSink for CollectSink {
    fn on_match(&mut self, m: OnlineMatch) {
        self.matches.push(m);
    }
}

/// A sink that forwards matches into a bounded channel (used by the iterator
/// API). A send on a full channel blocks — that is the backpressure path. If
/// the receiver is gone the match is dropped so the pipeline can drain and
/// shut down instead of wedging.
#[derive(Debug)]
pub(crate) struct ChannelSink {
    pub tx: SyncSender<OnlineMatch>,
}

impl MatchSink for ChannelSink {
    fn on_match(&mut self, m: OnlineMatch) {
        let _ = self.tx.send(m);
    }
}
