//! Match delivery: the [`MatchSink`] callback interface, the payload-carrying
//! [`PayloadSink`] variant, and ready-made sinks.
//!
//! The joiner stage calls the sink *synchronously*: a sink that blocks (a
//! full channel, a slow socket) stalls the joiner, which stops returning
//! in-flight credits, which stalls the splitter, which stops reading the
//! source — backpressure propagates all the way to the input with bounded
//! buffering at every stage.

use crate::pool::SessionCore;
use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// One match of a user query, emitted while the stream is still flowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineMatch {
    /// Index of the query (in the order queries were added to the engine).
    pub query: usize,
    /// Byte offset of the matched element's opening tag.
    pub start: usize,
    /// Byte offset just past the matched element's closing tag
    /// ([`usize::MAX`] when span resolution is disabled).
    pub end: usize,
    /// Depth of the matched element (root = 1).
    pub depth: u32,
}

/// Receives matches from a session's joiner stage.
///
/// Matches of span-resolved sessions are emitted the moment their element
/// closes (predicated queries: the moment their anchor scope closes), so
/// emission order follows element *close* order, not open order — an outer
/// element arrives after everything it contains. Collect and sort by `start`
/// when document order matters.
pub trait MatchSink: Send {
    /// Called once per query match. Returns `true` when the match was
    /// delivered; `false` when the sink discarded it (a hung-up receiver, a
    /// dead connection) — the session keeps running but the match is counted
    /// in [`crate::RuntimeStats::dropped_matches`].
    fn on_match(&mut self, m: OnlineMatch) -> bool;
}

impl<F: FnMut(OnlineMatch) + Send> MatchSink for F {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self(m);
        true
    }
}

/// A sink that appends every match to a vector.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Every emitted match, in emission order.
    pub matches: Vec<OnlineMatch>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Groups the collected matches per query (`query_count` vectors), each
    /// sorted into document order.
    pub fn per_query(&self, query_count: usize) -> Vec<Vec<OnlineMatch>> {
        let mut out: Vec<Vec<OnlineMatch>> = vec![Vec::new(); query_count];
        for m in &self.matches {
            if let Some(v) = out.get_mut(m.query) {
                v.push(*m);
            }
        }
        for v in &mut out {
            v.sort_by_key(|m| m.start);
        }
        out
    }
}

impl MatchSink for CollectSink {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self.matches.push(m);
        true
    }
}

/// A sink that forwards matches into a bounded channel (used by the iterator
/// API). A send on a full channel blocks — that is the backpressure path. If
/// the receiver is gone the match is dropped so the pipeline can drain and
/// shut down instead of wedging.
#[derive(Debug)]
pub(crate) struct ChannelSink {
    pub tx: SyncSender<OnlineMatch>,
}

impl MatchSink for ChannelSink {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        self.tx.send(m).is_ok()
    }
}

/// An [`OnlineMatch`] together with its materialized element bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedMatch {
    /// Caller-assigned stream id of the session (see
    /// [`crate::SessionOptions::stream_id`]).
    pub stream: u64,
    /// The match itself.
    pub m: OnlineMatch,
    /// The bytes `start..end` of the stream — the matched element, opening
    /// tag through closing tag. `None` when retention is disabled, the span
    /// was evicted from the retention ring before delivery (a *payload
    /// miss*), or span resolution is off (no `end` to slice to).
    pub payload: Option<Vec<u8>>,
}

/// Receives materialized matches (offsets + payload bytes) from a session
/// whose retention ring is enabled. The return contract matches
/// [`MatchSink::on_match`].
pub trait PayloadSink: Send {
    /// Called once per query match. `false` = discarded, counted as dropped.
    fn on_match(&mut self, m: MaterializedMatch) -> bool;
}

impl<F: FnMut(MaterializedMatch) + Send> PayloadSink for F {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        self(m);
        true
    }
}

impl PayloadSink for Box<dyn PayloadSink> {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        (**self).on_match(m)
    }
}

impl PayloadSink for &mut dyn PayloadSink {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        (**self).on_match(m)
    }
}

/// A sink that appends every materialized match to a vector.
#[derive(Debug, Default)]
pub struct CollectPayloadSink {
    /// Every emitted match, in emission order.
    pub matches: Vec<MaterializedMatch>,
}

impl CollectPayloadSink {
    /// Creates an empty collector.
    pub fn new() -> CollectPayloadSink {
        CollectPayloadSink::default()
    }
}

impl PayloadSink for CollectPayloadSink {
    fn on_match(&mut self, m: MaterializedMatch) -> bool {
        self.matches.push(m);
        true
    }
}

/// The joiner-side adapter that turns offset matches into materialized
/// matches: it slices the payload out of the session's retention ring and
/// forwards to a [`PayloadSink`]. `S` is the sink handle — borrowed for the
/// reader-driven entry points, owned (boxed or concrete, as the reactor's
/// outbox sink is) for push-style sessions.
pub(crate) struct Materializer<S> {
    pub core: Arc<SessionCore>,
    pub inner: S,
}

/// Materializes one match and delivers it.
fn deliver(core: &SessionCore, inner: &mut dyn PayloadSink, m: OnlineMatch) -> bool {
    let payload = match (&core.ring, m.end) {
        // No end offset to slice to (span resolution off): nothing to
        // extract — not a miss, there never was a payload to serve.
        (Some(_), usize::MAX) | (None, _) => None,
        (Some(ring), end) => {
            // Take refcounts under the lock, copy the bytes outside it: the
            // feeder contends on this lock every window push, and a payload
            // can be megabytes.
            let (guard, poisoned) = crate::pool::lock_recover(ring);
            if poisoned {
                // A panic under the ring lock is this session's failure: the
                // match still goes out (without payload) so the client sees
                // the span, and the session is poisoned so it winds down
                // instead of panicking every thread that touches the ring.
                drop(guard);
                core.poison("retention ring lock poisoned".to_string());
                None
            } else {
                let windows = guard.collect(m.start..end);
                drop(guard);
                match windows {
                    Some(windows) => Some(crate::retain::assemble(&windows, m.start..end)),
                    None => {
                        // RELAXED-OK: monotonic stat counter; orders nothing.
                        core.counters.payload_misses.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }
        }
    };
    inner.on_match(MaterializedMatch { stream: core.stream_id, m, payload })
}

impl<S: PayloadSink> MatchSink for Materializer<S> {
    fn on_match(&mut self, m: OnlineMatch) -> bool {
        deliver(&self.core, &mut self.inner, m)
    }
}
